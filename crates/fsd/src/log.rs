//! The FSD log: a circular physical redo log divided into thirds.
//!
//! # Record format (§5.3)
//!
//! "Each log entry is comprised of a header page, a blank page, a copy of
//! the header page, the data pages being logged, an end page, copies of
//! the data pages being logged, and a copy of the end page. The same data
//! is never written to adjacent pages."
//!
//! ```text
//! offset:   0   1     2    3 .. 3+n-1   3+n   4+n .. 3+2n   4+2n
//! content:  H  blank  H'   D₁ .. Dₙ      E     D₁' .. Dₙ'     E'
//! ```
//!
//! A record with `n` data pages occupies `2n + 5` sectors — the paper's
//! arithmetic exactly: one logged page is a 7-sector record, 14 pages a
//! 33-sector record, 39 pages the observed 83-sector maximum.
//!
//! Failure of the write at any point is detectable: the end pages must
//! match the header (sequence number, boot count, page count, checksum),
//! and any single or double damaged sector is correctable from its copy
//! because copies are never adjacent to their originals.
//!
//! # Thirds (§5.3)
//!
//! "The log is divided into thirds... When the current log write is about
//! to enter a new third... Any pages logged in this new third, but not
//! logged in a later third, are written to the file name table by the
//! logging code... This simple algorithm averages 5/6ths of the log in
//! use." A pointer to the first valid record in the oldest third lives in
//! page zero of the log region, replicated in page two.

use crate::error::FsdError;
use crate::spare::{self, SpareMap};
use crate::Result;
use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy};
use cedar_disk::{SectorAddr, SimDisk, SECTOR_BYTES};
use cedar_vol::codec::{fnv1a, Reader, Writer};
use std::collections::VecDeque;

/// First data offset inside the log region (0 = meta A, 1 = blank,
/// 2 = meta B).
pub const DATA_START: u32 = 3;

/// Hard cap on data pages per record (bounded by header capacity).
pub const MAX_IMAGES_HARD: usize = 48;

const HDR_MAGIC: u32 = 0xF5D_0106;
const END_MAGIC: u32 = 0xF5D_E0D5;
const META_MAGIC: u32 = 0xF5D_3E7A;

/// Where a logged sector image is (re)written during recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageTarget {
    /// Sector `sector` of name-table logical page `page` — recovery
    /// writes it to *both* name-table copies.
    NtSector {
        /// Logical name-table page.
        page: u32,
        /// Sector index within the page.
        sector: u32,
    },
    /// A leader page at an absolute sector address.
    Leader {
        /// The leader's sector.
        addr: SectorAddr,
    },
    /// Sector `index` of the VAM save area — recovery writes it to both
    /// save copies. Only produced when the §5.3 VAM-logging extension is
    /// enabled ([`crate::FsdConfig::log_vam`]).
    VamSector {
        /// Sector index within the save area.
        index: u32,
    },
}

impl PageTarget {
    /// Checks that the decoded target addresses a sector this volume
    /// actually has. A target is four bytes read off a possibly-corrupt
    /// log sector; without this check a wild `page` panics in
    /// `nt_a_sector`'s range assert and a wild `addr` steers a redo write
    /// outside the data area — during the one phase that must not fail.
    pub fn validate(&self, layout: &crate::layout::FsdLayout) -> Result<()> {
        let ok = match self {
            Self::NtSector { page, sector } => {
                *page < layout.nt_pages && *sector < crate::NT_PAGE_SECTORS
            }
            Self::Leader { addr } => !layout.is_system(*addr) && *addr < layout.total_sectors,
            Self::VamSector { index } => *index < layout.vam_sectors,
        };
        if ok {
            Ok(())
        } else {
            Err(FsdError::Check(format!(
                "log record targets an impossible sector: {self:?}"
            )))
        }
    }
}

/// A decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Sequence number (consecutive along the chain).
    pub seq: u64,
    /// Boot count when the record was written.
    pub boot_count: u32,
    /// `true` on the last record of a group commit. A force larger than
    /// one record spans several; recovery drops a trailing group whose
    /// terminator never landed, keeping every force atomic.
    pub group_end: bool,
    /// The logged sector images.
    pub images: Vec<(PageTarget, Vec<u8>)>,
}

/// The replicated log meta page: where recovery starts reading.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogMeta {
    /// Offset (within the log region) of the first valid record.
    pub oldest_offset: u32,
    /// Sequence number of that record.
    pub oldest_seq: u64,
    /// Boot count of the epoch that wrote the log.
    pub boot_count: u32,
}

impl LogMeta {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(META_MAGIC)
            .u32(self.oldest_offset)
            .u64(self.oldest_seq)
            .u32(self.boot_count);
        let mut b = w.into_bytes();
        b.resize(SECTOR_BYTES, 0);
        b
    }

    fn decode(bytes: &[u8]) -> std::result::Result<Self, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != META_MAGIC {
            return Err("bad log meta magic".into());
        }
        Ok(Self {
            oldest_offset: r.u32()?,
            oldest_seq: r.u64()?,
            boot_count: r.u32()?,
        })
    }

    /// Checks that the decoded scan start lies inside the log's data
    /// area. The magic guards against reading a non-meta page, not
    /// against a corrupted offset field on a genuine one: an offset past
    /// the region would otherwise seed the record scan (and its `2n + 5`
    /// stride arithmetic) with garbage.
    pub fn validate(&self, log_size: u32) -> Result<()> {
        if self.oldest_offset >= DATA_START && self.oldest_offset < log_size {
            Ok(())
        } else {
            Err(FsdError::Check(format!(
                "log meta oldest_offset {} outside data area {}..{}",
                self.oldest_offset, DATA_START, log_size
            )))
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct LiveRecord {
    offset: u32,
    seq: u64,
}

/// The in-memory state of the running log.
#[derive(Debug)]
pub struct Log {
    /// First sector of the log region on disk.
    start: SectorAddr,
    /// Total sectors in the region (meta + data).
    size: u32,
    boot_count: u32,
    write_pos: u32,
    next_seq: u64,
    current_third: u8,
    live: VecDeque<LiveRecord>,
    oldest: (u32, u64),
    max_images: usize,
    policy: IoPolicy,
}

impl Log {
    /// Creates a fresh, empty log (used at format time and after boot-time
    /// redo empties the log). Call [`Self::write_meta`] afterwards to
    /// persist the pointer. Fails if the region cannot hold even a
    /// one-page record per third.
    pub fn fresh(start: SectorAddr, size: u32, boot_count: u32) -> Result<Self> {
        let third_len = size.saturating_sub(DATA_START) / 3;
        let max_images = MAX_IMAGES_HARD.min(((third_len.saturating_sub(5)) / 2) as usize);
        if max_images < 1 {
            return Err(FsdError::Check(format!(
                "log region too small: {size} sectors"
            )));
        }
        Ok(Self {
            start,
            size,
            boot_count,
            write_pos: DATA_START,
            next_seq: 1,
            current_third: 0,
            live: VecDeque::new(),
            oldest: (DATA_START, 1),
            max_images,
            policy: IoPolicy::default(),
        })
    }

    /// Sets the I/O scheduling policy used for record and meta writes.
    pub fn set_policy(&mut self, policy: IoPolicy) {
        self.policy = policy;
    }

    /// Largest number of images a single record may carry on this log.
    pub fn max_images(&self) -> usize {
        self.max_images
    }

    /// Boot count of the epoch writing this log (stamped into every
    /// record; the replication tap re-encodes shipped records with it).
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// Sequence number the next append will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sector images that fit into one third of the log as a single
    /// record chain (each image costs two sectors plus five of record
    /// overhead).
    pub fn third_capacity_images(&self) -> usize {
        ((self.third_len().saturating_sub(5)) / 2) as usize
    }

    /// Number of live (replayable) records.
    pub fn live_records(&self) -> usize {
        self.live.len()
    }

    /// Log-region offset where the next record will start (fault-injection
    /// campaigns aim media faults at upcoming log writes with this).
    pub fn next_record_offset(&self) -> u32 {
        self.write_pos
    }

    /// Sectors of log data area currently holding live records
    /// (for the 5/6-utilization measurement).
    pub fn live_span_sectors(&self) -> u32 {
        match (self.live.front(), self.live.back()) {
            (Some(f), Some(_)) => {
                if self.write_pos >= f.offset {
                    self.write_pos - f.offset
                } else {
                    (self.size - f.offset) + (self.write_pos - DATA_START)
                }
            }
            _ => 0,
        }
    }

    /// Total data-area sectors.
    pub fn data_sectors(&self) -> u32 {
        self.size - DATA_START
    }

    fn third_len(&self) -> u32 {
        (self.size - DATA_START) / 3
    }

    fn third_of(&self, offset: u32) -> u8 {
        let t = offset.saturating_sub(DATA_START) / self.third_len().max(1);
        u8::try_from(t).unwrap_or(2).min(2)
    }

    /// Writes the replicated meta pages (offsets 0 and 2 of the region).
    /// Both copies go out in one window (they are identical, so their
    /// relative order is immaterial); a sector that fails is rewritten
    /// and, if it fails again, remapped through `spare`.
    pub fn write_meta(&self, disk: &mut SimDisk, spare: &mut SpareMap) -> Result<()> {
        let meta = LogMeta {
            oldest_offset: self.oldest.0,
            oldest_seq: self.oldest.1,
            boot_count: self.boot_count,
        };
        let bytes = meta.encode();
        spare::scrub_batch(
            disk,
            self.policy,
            spare,
            vec![(self.start, bytes.clone()), (self.start + 2, bytes)],
        )
    }

    /// Reads the meta page, falling back to the replica on damage — and
    /// *scrubbing* the failed copy from the survivor's bytes on the way,
    /// so a second media fault cannot strand the volume with a single
    /// copy. A copy whose rewrite also fails is remapped through `spare`.
    pub fn read_meta(
        disk: &mut SimDisk,
        policy: IoPolicy,
        spare: &mut SpareMap,
        log_start: SectorAddr,
    ) -> Result<LogMeta> {
        let mut good: Option<(LogMeta, Vec<u8>)> = None;
        let mut damaged: Vec<SectorAddr> = Vec::new();
        let mut stale: Vec<SectorAddr> = Vec::new();
        for addr in [log_start, log_start + 2] {
            let (bytes, mask) = spare
                .read_allow_damage(disk, addr, 1)
                .map_err(FsdError::Disk)?;
            if mask[0] {
                damaged.push(addr);
                continue;
            }
            match LogMeta::decode(&bytes) {
                Ok(meta) => {
                    if good.is_none() {
                        good = Some((meta, bytes));
                    }
                }
                Err(_) => stale.push(addr),
            }
        }
        let Some((meta, bytes)) = good else {
            return Err(FsdError::Check("both log meta copies unreadable".into()));
        };
        if !damaged.is_empty() || !stale.is_empty() {
            for &addr in &damaged {
                spare.note_damaged(addr);
            }
            let writes = damaged
                .iter()
                .chain(&stale)
                .map(|&addr| (addr, bytes.clone()))
                .collect();
            if let Err(e) = spare::scrub_batch(disk, policy, spare, writes) {
                if e.is_crash() {
                    return Err(e);
                }
                // The scrub could not stick (spare slots exhausted): the
                // surviving copy still serves this boot.
            }
        }
        Ok(meta)
    }

    /// Appends one record. `flush` is called once for each third the
    /// record *enters* (reclaiming it), before the record is written — the
    /// volume uses it to write home every page whose only log copy lives
    /// in that third.
    ///
    /// Returns `(seq, third)` where `third` is the third the record starts
    /// in (the page-tracking tag).
    pub fn append(
        &mut self,
        disk: &mut SimDisk,
        spare: &mut SpareMap,
        images: &[(PageTarget, Vec<u8>)],
        group_end: bool,
        mut flush: impl FnMut(&mut SimDisk, &mut SpareMap, u8) -> Result<()>,
    ) -> Result<(u64, u8)> {
        let n = images.len();
        if n == 0 || n > self.max_images {
            return Err(FsdError::Check(format!(
                "record of {n} images (this log takes 1..={})",
                self.max_images
            )));
        }
        let len = 2 * n as u32 + 5;
        let mut pos = self.write_pos;
        if pos + len > self.size {
            pos = DATA_START;
        }
        let t_start = self.third_of(pos);
        let t_end = self.third_of(pos + len - 1);
        let mut entered = Vec::new();
        if t_start != self.current_third {
            entered.push(t_start);
        }
        if t_end != t_start {
            entered.push(t_end);
        }
        for &t in &entered {
            flush(disk, spare, t)?;
            // Drop live records in the reclaimed third.
            while let Some(front) = self.live.front() {
                if self.third_of(front.offset) == t {
                    self.live.pop_front();
                } else {
                    break;
                }
            }
            self.oldest = self
                .live
                .front()
                .map(|r| (r.offset, r.seq))
                .unwrap_or((pos, self.next_seq));
            self.write_meta(disk, spare)?;
            self.current_third = t;
        }

        let seq = self.next_seq;
        let bytes = encode_record(images, seq, self.boot_count, group_end)?;
        debug_assert_eq!(bytes.len(), len as usize * SECTOR_BYTES);
        // "Data spread over the disk can be logically and atomically
        // updated with a single disk write to the log." The record goes
        // out as two barrier-separated windows: headers and both data
        // copies first, then the end pages. Recovery accepts a record
        // only if an end page is valid, so the barrier guarantees that
        // acceptance implies every data sector (or its copy) is durable —
        // the commit record semantics of §5.3, independent of how the
        // scheduler reorders within each window.
        let n = n as u32;
        let at = |sector: u32| self.start + pos + sector;
        let sector_range =
            |lo: u32, hi: u32| &bytes[lo as usize * SECTOR_BYTES..hi as usize * SECTOR_BYTES];
        // Media faults inside the record are retried by rewriting the
        // whole record — every sector is exclusively owned by it, so the
        // rewrite is idempotent — escalating a twice-failed sector into a
        // spare-region remap. The barrier holds in every round: the end
        // pages only ever go out in a window after the headers and data
        // landed, so a crash mid-retry still cannot yield an accepted
        // record with missing data.
        let mut done = false;
        for _ in 0..spare::MAX_ROUNDS {
            let mut batch = IoBatch::new();
            let mut tags = Vec::new();
            // Window 1: H, blank, H', D₁..Dₙ (contiguous) and D₁'..Dₙ'.
            tags.extend(spare.push_write(&mut batch, at(0), sector_range(0, 3 + n)));
            tags.extend(spare.push_write(&mut batch, at(4 + n), sector_range(4 + n, 4 + 2 * n)));
            batch.barrier();
            // Window 2: the commit record — E and its copy E'.
            tags.extend(spare.push_write(&mut batch, at(3 + n), sector_range(3 + n, 4 + n)));
            tags.extend(spare.push_write(
                &mut batch,
                at(4 + 2 * n),
                sector_range(4 + 2 * n, 5 + 2 * n),
            ));
            let results = sched::execute_partial(disk, self.policy, &batch)?;
            if !spare.absorb(&results, &tags)? {
                done = true;
                break;
            }
        }
        if !done {
            return Err(FsdError::Check(
                "media-fault retry limit exceeded on log append".into(),
            ));
        }
        self.next_seq += 1;
        self.live.push_back(LiveRecord { offset: pos, seq });
        if self.live.len() == 1 {
            self.oldest = (pos, seq);
        }
        self.write_pos = pos + len;
        Ok((seq, t_start))
    }
}

/// Encodes a record into its `2n + 5` sector on-disk form. Fails on an
/// oversized record or an image that is not exactly one sector.
pub fn encode_record(
    images: &[(PageTarget, Vec<u8>)],
    seq: u64,
    boot_count: u32,
    group_end: bool,
) -> Result<Vec<u8>> {
    let n = images.len();
    let n16 = u16::try_from(n)
        .ok()
        .filter(|_| n <= MAX_IMAGES_HARD)
        .ok_or_else(|| FsdError::Check(format!("record of {n} images exceeds the hard cap")))?;
    let mut data = Vec::with_capacity(n * SECTOR_BYTES);
    for (_, img) in images {
        if img.len() != SECTOR_BYTES {
            return Err(FsdError::Check(format!(
                "logged image must be one sector, got {} bytes",
                img.len()
            )));
        }
        data.extend_from_slice(img);
    }
    let checksum = fnv1a(&data);

    let mut header = Writer::new();
    header
        .u32(HDR_MAGIC)
        .u64(seq)
        .u32(boot_count)
        .u8(u8::from(group_end))
        .u16(n16);
    for (t, _) in images {
        match t {
            PageTarget::NtSector { page, sector } => {
                header.u8(0).u32(*page).u32(*sector);
            }
            PageTarget::Leader { addr } => {
                header.u8(1).u32(*addr).u32(0);
            }
            PageTarget::VamSector { index } => {
                header.u8(2).u32(*index).u32(0);
            }
        }
    }
    let mut header = header.into_bytes();
    debug_assert!(header.len() <= SECTOR_BYTES, "header overflow");
    header.resize(SECTOR_BYTES, 0);

    let mut end = Writer::new();
    end.u32(END_MAGIC)
        .u64(seq)
        .u32(boot_count)
        .u16(n16)
        .u64(checksum);
    let mut end = end.into_bytes();
    end.resize(SECTOR_BYTES, 0);

    let mut out = Vec::with_capacity((2 * n + 5) * SECTOR_BYTES);
    out.extend_from_slice(&header); // H
    out.extend_from_slice(&[0u8; SECTOR_BYTES]); // blank
    out.extend_from_slice(&header); // H'
    out.extend_from_slice(&data); // D₁..Dₙ
    out.extend_from_slice(&end); // E
    out.extend_from_slice(&data); // D₁'..Dₙ'
    out.extend_from_slice(&end); // E'
    Ok(out)
}

/// A record decoded from its sealed `2n + 5` sector byte form — the
/// replica side of log shipping uses this to turn a shipped record back
/// into `(target, image)` pairs for continuous redo.
#[derive(Clone, Debug)]
pub struct DecodedRecord {
    /// Record sequence number.
    pub seq: u64,
    /// Boot count of the writing epoch.
    pub boot_count: u32,
    /// Whether this record closes its commit group.
    pub group_end: bool,
    /// The logged sector images, in append order.
    pub images: Vec<(PageTarget, Vec<u8>)>,
}

/// Decodes one sealed record from the exact bytes [`encode_record`]
/// produced, verifying both header copies, the end-sector checksum, and
/// the `2n + 5` framing. This is the replica's decode path: the record
/// arrived over a link, not from the log region, so there is no damage
/// mask — any mismatch is a transport-level corruption and an error.
pub fn decode_record_bytes(bytes: &[u8]) -> Result<DecodedRecord> {
    let fail = |m: &str| FsdError::Check(format!("shipped record rejected: {m}"));
    if !bytes.len().is_multiple_of(SECTOR_BYTES) || bytes.len() < 5 * SECTOR_BYTES {
        return Err(fail("not a whole 2n+5 sector record"));
    }
    let sector = |i: usize| &bytes[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES];
    let hdr = decode_header(sector(0)).map_err(|e| fail(&e))?;
    let n = hdr.targets.len();
    if bytes.len() != (2 * n + 5) * SECTOR_BYTES {
        return Err(fail("length disagrees with header page count"));
    }
    if sector(2) != sector(0) {
        return Err(fail("header copies disagree"));
    }
    let data = &bytes[3 * SECTOR_BYTES..(3 + n) * SECTOR_BYTES];
    let end = decode_end(sector(3 + n)).map_err(|e| fail(&e))?;
    if end.seq != hdr.seq || end.boot_count != hdr.boot_count || end.n != n {
        return Err(fail("end sector disagrees with header"));
    }
    if fnv1a(data) != end.checksum {
        return Err(fail("image checksum mismatch"));
    }
    let images = hdr
        .targets
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, data[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES].to_vec()))
        .collect();
    Ok(DecodedRecord {
        seq: hdr.seq,
        boot_count: hdr.boot_count,
        group_end: hdr.group_end,
        images,
    })
}

struct DecodedHeader {
    seq: u64,
    boot_count: u32,
    group_end: bool,
    targets: Vec<PageTarget>,
}

fn decode_header(bytes: &[u8]) -> std::result::Result<DecodedHeader, String> {
    let mut r = Reader::new(bytes);
    if r.u32()? != HDR_MAGIC {
        return Err("bad header magic".into());
    }
    let seq = r.u64()?;
    let boot_count = r.u32()?;
    let group_end = r.u8()? != 0;
    let n = r.u16()? as usize;
    if n > MAX_IMAGES_HARD {
        return Err("impossible page count".into());
    }
    let mut targets = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = r.u8()?;
        let a = r.u32()?;
        let b = r.u32()?;
        targets.push(match kind {
            0 => PageTarget::NtSector { page: a, sector: b },
            1 => PageTarget::Leader { addr: a },
            2 => PageTarget::VamSector { index: a },
            k => return Err(format!("bad target kind {k}")),
        });
    }
    Ok(DecodedHeader {
        seq,
        boot_count,
        group_end,
        targets,
    })
}

struct DecodedEnd {
    seq: u64,
    boot_count: u32,
    n: usize,
    checksum: u64,
}

fn decode_end(bytes: &[u8]) -> std::result::Result<DecodedEnd, String> {
    let mut r = Reader::new(bytes);
    if r.u32()? != END_MAGIC {
        return Err("bad end magic".into());
    }
    Ok(DecodedEnd {
        seq: r.u64()?,
        boot_count: r.u32()?,
        n: r.u16()? as usize,
        checksum: r.u64()?,
    })
}

/// Read-ahead buffer for the recovery scan: instead of issuing one small
/// read per record probe, the log region is pulled in track-sized chunks,
/// batched and coalesced through the scheduler, and probes are then
/// served from memory. Chunks load lazily, so the scan still reads only
/// as far as the live chain reaches (plus one chunk of slack).
struct ScanBuffer {
    log_start: SectorAddr,
    log_size: u32,
    chunk: u32,
    data: Vec<u8>,
    mask: Vec<bool>,
    loaded: Vec<bool>,
}

impl ScanBuffer {
    fn new(disk: &SimDisk, log_start: SectorAddr, log_size: u32) -> Self {
        let chunk = disk.geometry().sectors_per_track.max(1);
        let chunks = log_size.div_ceil(chunk) as usize;
        Self {
            log_start,
            log_size,
            chunk,
            data: vec![0u8; log_size as usize * SECTOR_BYTES],
            mask: vec![false; log_size as usize],
            loaded: vec![false; chunks],
        }
    }

    /// Loads every not-yet-resident chunk covering `offset..offset + n`
    /// in one batched submission (adjacent chunks coalesce into single
    /// transfers). Chunk reads split wherever the remap table makes the
    /// physical run discontiguous, so a remapped log sector is read from
    /// its spare-region home.
    fn ensure(&mut self, disk: &mut SimDisk, spare: &SpareMap, offset: u32, n: u32) -> Result<()> {
        let lo = offset / self.chunk;
        let hi = (offset + n - 1) / self.chunk;
        let mut batch = IoBatch::new();
        let mut pending: Vec<(u32, usize)> = Vec::new();
        let mut chunks: Vec<u32> = Vec::new();
        for c in lo..=hi {
            if self.loaded[c as usize] {
                continue;
            }
            let s = c * self.chunk;
            let e = (s + self.chunk).min(self.log_size);
            let mut i = s;
            while i < e {
                let phys = spare.translate(self.log_start + i);
                let mut len = 1u32;
                while i + len < e && spare.translate(self.log_start + i + len) == phys + len {
                    len += 1;
                }
                let idx = batch.push(IoOp::ReadAllowDamage {
                    start: phys,
                    n: len as usize,
                });
                pending.push((i, idx));
                i += len;
            }
            chunks.push(c);
        }
        if batch.is_empty() {
            return Ok(());
        }
        let mut out = sched::execute(disk, IoPolicy::Cscan, &batch)?;
        for (s, idx) in pending.into_iter().rev() {
            let (bytes, dmg) = std::mem::replace(&mut out[idx], cedar_disk::IoOutput::Done)
                .into_data_mask()
                .ok_or_else(|| FsdError::Check("scheduler returned a non-data output".into()))?;
            // The transfer length came back from the I/O layer; a short or
            // oversized chunk would slice out of bounds below.
            if bytes.len() != dmg.len() * SECTOR_BYTES
                || dmg.len() > self.mask.len().saturating_sub(s as usize)
            {
                return Err(FsdError::Check(
                    "log scan returned a malformed chunk".into(),
                ));
            }
            let s = s as usize;
            self.data[s * SECTOR_BYTES..s * SECTOR_BYTES + bytes.len()].copy_from_slice(&bytes);
            self.mask[s..s + dmg.len()].copy_from_slice(&dmg);
        }
        for c in chunks {
            self.loaded[c as usize] = true;
        }
        Ok(())
    }

    /// Reads `n` sectors at `offset` (within the log region), with the
    /// same damage semantics as `SimDisk::read_allow_damage`.
    fn read(
        &mut self,
        disk: &mut SimDisk,
        spare: &SpareMap,
        offset: u32,
        n: u32,
    ) -> Result<(Vec<u8>, Vec<bool>)> {
        self.ensure(disk, spare, offset, n)?;
        let s = offset as usize;
        let e = s + n as usize;
        Ok((
            self.data[s * SECTOR_BYTES..e * SECTOR_BYTES].to_vec(),
            self.mask[s..e].to_vec(),
        ))
    }
}

/// Attempts to decode the record at `offset`; returns the record and its
/// sector length, or `None` if no valid record with sequence `expected`
/// starts there (end of log, torn write, or unrecoverable damage).
fn read_record_at(
    disk: &mut SimDisk,
    spare: &SpareMap,
    buf: &mut ScanBuffer,
    log_size: u32,
    offset: u32,
    expected_seq: u64,
) -> Result<Option<(LogRecord, u32)>> {
    if offset > log_size.saturating_sub(5) {
        return Ok(None);
    }
    // Header pair: H at +0, H' at +2 (never both lost under the 1–2
    // consecutive sector failure model).
    let (head_bytes, head_mask) = buf.read(disk, spare, offset, 3)?;
    let header = [0usize, 2]
        .iter()
        .find_map(|&i| {
            if head_mask[i] {
                return None;
            }
            decode_header(&head_bytes[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES]).ok()
        })
        .filter(|h| h.seq == expected_seq);
    let Some(header) = header else {
        return Ok(None);
    };
    // Bounded by decode_header's MAX_IMAGES_HARD check.
    let n = u32::try_from(header.targets.len()).unwrap_or(u32::MAX);
    let len = 2 * n + 5;
    if offset + len > log_size {
        return Ok(None);
    }
    // Body: D₁..Dₙ, E, D₁'..Dₙ', E'.
    let (body, mask) = buf.read(disk, spare, offset + 3, 2 * n + 2)?;
    let sector = |i: usize| &body[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES];
    let end = [n as usize, (2 * n + 1) as usize]
        .iter()
        .find_map(|&i| {
            if mask[i] {
                return None;
            }
            decode_end(sector(i)).ok()
        })
        .filter(|e| e.seq == header.seq && e.boot_count == header.boot_count && e.n == n as usize);
    let Some(end) = end else {
        return Ok(None); // Torn record: header written, tail missing.
    };
    // Reconstruct each data page from the original or its copy.
    let mut data = Vec::with_capacity(n as usize * SECTOR_BYTES);
    for i in 0..n as usize {
        let orig = i;
        let copy = n as usize + 1 + i;
        if !mask[orig] {
            data.extend_from_slice(sector(orig));
        } else if !mask[copy] {
            data.extend_from_slice(sector(copy));
        } else {
            return Err(FsdError::Check(format!(
                "log record {}: data page {i} and its copy both damaged",
                header.seq
            )));
        }
    }
    if fnv1a(&data) != end.checksum {
        return Ok(None); // Torn mid-record: stale bytes where data should be.
    }
    let images = header
        .targets
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, data[i * SECTOR_BYTES..(i + 1) * SECTOR_BYTES].to_vec()))
        .collect();
    Ok(Some((
        LogRecord {
            seq: header.seq,
            boot_count: header.boot_count,
            group_end: header.group_end,
            images,
        },
        len,
    )))
}

/// Scans the live record chain starting from the meta pointer — the core
/// of crash recovery. Records are returned oldest first.
pub fn scan_records(
    disk: &mut SimDisk,
    log_start: SectorAddr,
    log_size: u32,
    spare: &SpareMap,
    meta: &LogMeta,
) -> Result<Vec<LogRecord>> {
    let mut buf = ScanBuffer::new(disk, log_start, log_size);
    let mut records = Vec::new();
    // The meta page is disk input: a corrupted offset must fail typed
    // here, not seed the record-stride arithmetic below.
    meta.validate(log_size)?;
    let mut pos = meta.oldest_offset;
    let mut expected = meta.oldest_seq;
    loop {
        if pos + 5 > log_size {
            pos = DATA_START;
        }
        match read_record_at(disk, spare, &mut buf, log_size, pos, expected)? {
            Some((rec, len)) => {
                records.push(rec);
                pos += len;
                expected += 1;
            }
            None => {
                // The writer may have wrapped where we did not expect it.
                if pos != DATA_START {
                    if let Some((rec, len)) =
                        read_record_at(disk, spare, &mut buf, log_size, DATA_START, expected)?
                    {
                        records.push(rec);
                        pos = DATA_START + len;
                        expected += 1;
                        continue;
                    }
                }
                break;
            }
        }
    }
    // Atomic group commit: drop a trailing group whose terminator never
    // made it to disk.
    while records.last().is_some_and(|r| !r.group_end) {
        records.pop();
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CrashPlan, DiskGeometry, DiskTiming, SimClock};

    const LOG_START: u32 = 100;
    const LOG_SIZE: u32 = 303; // Thirds of 100 sectors each.

    fn disk() -> SimDisk {
        SimDisk::new(DiskGeometry::TINY, DiskTiming::TINY, SimClock::new())
    }

    fn img(tag: u8) -> Vec<u8> {
        vec![tag; SECTOR_BYTES]
    }

    fn nt(page: u32, sector: u32, tag: u8) -> (PageTarget, Vec<u8>) {
        (PageTarget::NtSector { page, sector }, img(tag))
    }

    fn no_flush(_: &mut SimDisk, _: &mut SpareMap, _: u8) -> Result<()> {
        Ok(())
    }

    #[test]
    fn record_sector_arithmetic_matches_paper() {
        // One data page → 7 sectors; 14 pages → 33; 39 pages → 83 (§5.4).
        for (n, sectors) in [(1usize, 7usize), (14, 33), (39, 83)] {
            let images: Vec<_> = (0..n).map(|i| nt(i as u32, 0, i as u8)).collect();
            let bytes = encode_record(&images, 1, 1, true).unwrap();
            assert_eq!(bytes.len() / SECTOR_BYTES, sectors);
        }
    }

    #[test]
    fn append_then_scan_roundtrip() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        log.append(
            &mut d,
            &mut sp,
            &[nt(5, 0, 0xAA), nt(5, 1, 0xBB)],
            true,
            no_flush,
        )
        .unwrap();
        log.append(
            &mut d,
            &mut sp,
            &[(PageTarget::Leader { addr: 900 }, img(0xCC))],
            true,
            no_flush,
        )
        .unwrap();
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 1);
        assert_eq!(recs[0].images.len(), 2);
        assert_eq!(
            recs[0].images[0].0,
            PageTarget::NtSector { page: 5, sector: 0 }
        );
        assert_eq!(recs[1].images[0].0, PageTarget::Leader { addr: 900 });
        assert_eq!(recs[1].images[0].1, img(0xCC));
    }

    #[test]
    fn empty_log_scans_to_nothing() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        assert!(scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn meta_survives_first_copy_damage() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        d.damage_sector(LOG_START);
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        assert_eq!(meta.oldest_offset, DATA_START);
    }

    #[test]
    fn read_meta_scrubs_damaged_copy_back() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        d.damage_sector(LOG_START);
        Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        // The damaged copy A was rewritten from copy B: both copies now
        // read clean, so a follow-on fault on copy B is survivable.
        assert_eq!(sp.scrubbed, 1);
        let (_, mask) = d.read_allow_damage(LOG_START, 1).unwrap();
        assert_eq!(mask, vec![false]);
    }

    #[test]
    fn both_meta_copies_lost_is_a_check_error() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        d.hard_damage_sector(LOG_START);
        d.hard_damage_sector(LOG_START + 2);
        let err = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap_err();
        assert!(matches!(err, FsdError::Check(_)), "{err}");
    }

    #[test]
    fn append_remaps_grown_log_sector_and_commits() {
        use cedar_disk::FaultPlan;
        let mut d = disk();
        // Spare slots at sectors 10..14; the whole log region remappable.
        let mut sp = SpareMap::new(10, 4, vec![(LOG_START, LOG_START + LOG_SIZE)]);
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        // A grown defect under D₁ of the first record (offset 3 + 3).
        d.set_fault_plan(&FaultPlan::none().with_grown(LOG_START + DATA_START + 3));
        log.append(
            &mut d,
            &mut sp,
            &[nt(1, 0, 0x5A), nt(2, 0, 0x6B)],
            true,
            no_flush,
        )
        .unwrap();
        assert_eq!(sp.remapped, 1);
        // The record replays whole through the remap table.
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].images[0].1, img(0x5A));
    }

    #[test]
    fn append_scrubs_latent_log_sector() {
        use cedar_disk::FaultPlan;
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        // A latent flaw under the end page: discovered by the write,
        // repaired by the rewrite, no remap needed.
        d.set_fault_plan(&FaultPlan::none().with_latent(LOG_START + DATA_START + 5));
        log.append(
            &mut d,
            &mut sp,
            &[nt(1, 0, 0x11), nt(2, 0, 0x22)],
            true,
            no_flush,
        )
        .unwrap();
        assert_eq!(sp.scrubbed, 1);
        assert_eq!(sp.remapped, 0);
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn single_damaged_data_sector_recovered_from_copy() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        log.append(
            &mut d,
            &mut sp,
            &[nt(1, 0, 0x11), nt(2, 0, 0x22)],
            true,
            no_flush,
        )
        .unwrap();
        // Damage the first data original (record at offset 3; D₁ at +3).
        d.damage_sector(LOG_START + DATA_START + 3);
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].images[0].1, img(0x11));
    }

    #[test]
    fn two_adjacent_damaged_sectors_recovered() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        log.append(
            &mut d,
            &mut sp,
            &[nt(1, 0, 0x11), nt(2, 0, 0x22)],
            true,
            no_flush,
        )
        .unwrap();
        // The paper's failure model: two consecutive sectors die. Take out
        // D₂ and E (offsets +4 and +5 of the record at 3).
        d.damage_sector(LOG_START + DATA_START + 4);
        d.damage_sector(LOG_START + DATA_START + 5);
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].images[1].1, img(0x22));
    }

    #[test]
    fn header_damage_recovered_from_copy() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        log.append(&mut d, &mut sp, &[nt(1, 0, 3)], true, no_flush)
            .unwrap();
        d.damage_sector(LOG_START + DATA_START); // H
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        assert_eq!(
            scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn torn_record_write_is_not_replayed() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        log.append(&mut d, &mut sp, &[nt(1, 0, 1)], true, no_flush)
            .unwrap();
        // Second append crashes after 4 sectors (H, blank, H', D₁) — the
        // end page never lands.
        d.schedule_crash(CrashPlan {
            after_sector_writes: 4,
            damaged_tail: 1,
        });
        let err = log
            .append(&mut d, &mut sp, &[nt(2, 0, 2), nt(3, 0, 3)], true, no_flush)
            .unwrap_err();
        assert!(err.is_crash());
        d.reboot();
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert_eq!(recs.len(), 1, "only the first record survives");
        assert_eq!(recs[0].seq, 1);
    }

    #[test]
    fn wraparound_chain_scans_correctly() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        // Each 10-image record is 25 sectors; 300/25 = 12 per lap. Write
        // 30: the log wraps twice.
        for i in 0..30u8 {
            let images: Vec<_> = (0..10).map(|j| nt(j, 0, i)).collect();
            log.append(&mut d, &mut sp, &images, true, no_flush)
                .unwrap();
        }
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        assert!(!recs.is_empty());
        // The chain is consecutive and ends at the newest record.
        for w in recs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(recs.last().unwrap().seq, 30);
        assert_eq!(recs.last().unwrap().images[0].1, img(29));
    }

    #[test]
    fn flush_called_once_per_entered_third() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        let mut entered: Vec<u8> = Vec::new();
        // 25-sector records; third boundaries at offsets 3, 103, 203.
        for i in 0..13u8 {
            let images: Vec<_> = (0..10).map(|j| nt(j, 0, i)).collect();
            log.append(&mut d, &mut sp, &images, true, |_, _, t| {
                entered.push(t);
                Ok(())
            })
            .unwrap();
        }
        // Offsets: 3,28,53,78 (third 0), 103.. (enters 1 — record at 103
        // was already in third 1 after spanning? offsets 3+25k: 103 starts
        // third 1, 203 third 2, 303 wraps → third 0 again.
        assert!(entered.contains(&1));
        assert!(entered.contains(&2));
        assert_eq!(entered.iter().filter(|&&t| t == 1).count(), 1);
    }

    #[test]
    fn log_utilization_approaches_five_sixths() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        let mut samples = Vec::new();
        for i in 0..200u32 {
            let images: Vec<_> = (0..10).map(|j| nt(j, 0, i as u8)).collect();
            log.append(&mut d, &mut sp, &images, true, no_flush)
                .unwrap();
            if i > 50 {
                samples.push(log.live_span_sectors() as f64 / log.data_sectors() as f64);
            }
        }
        let avg = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (0.6..0.95).contains(&avg),
            "steady-state log utilization {avg:.2} should be near 5/6"
        );
    }

    #[test]
    fn stale_records_from_previous_lap_not_replayed() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        log.write_meta(&mut d, &mut sp).unwrap();
        for i in 0..20u8 {
            let images: Vec<_> = (0..10).map(|j| nt(j, 0, i)).collect();
            log.append(&mut d, &mut sp, &images, true, no_flush)
                .unwrap();
        }
        let meta = Log::read_meta(&mut d, IoPolicy::InOrder, &mut sp, LOG_START).unwrap();
        let recs = scan_records(&mut d, LOG_START, LOG_SIZE, &sp, &meta).unwrap();
        // Every replayed record must carry a seq >= the meta pointer's.
        assert!(recs.iter().all(|r| r.seq >= meta.oldest_seq));
        // And the newest record is present.
        assert_eq!(recs.last().unwrap().seq, 20);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut d = disk();
        let mut sp = SpareMap::disabled();
        let mut log = Log::fresh(LOG_START, LOG_SIZE, 1).unwrap();
        let images: Vec<_> = (0..49).map(|j| nt(j, 0, 0)).collect();
        let err = log
            .append(&mut d, &mut sp, &images, true, no_flush)
            .unwrap_err();
        assert!(matches!(err, FsdError::Check(_)), "{err}");
    }

    #[test]
    fn too_small_region_rejected() {
        let err = Log::fresh(LOG_START, DATA_START + 6, 1).unwrap_err();
        assert!(matches!(err, FsdError::Check(_)), "{err}");
    }
}
