//! The FSD volume: format, file operations, and the group-commit engine.
//!
//! The §4 design in action:
//!
//! * **create** finds free pages in the volatile VAM, updates the file
//!   name table *in the cache*, and synchronously writes only the leader
//!   and data pages — typically one combined I/O ("A file create
//!   typically does one I/O synchronously: the combination of the write
//!   of the leader and data pages");
//! * **open** and **list** read the name table through the cache — no
//!   disk I/O once the relevant pages are resident, because every
//!   property lives in the entry (Table 1);
//! * **delete** removes the entry in the cache and parks the file's pages
//!   in the shadow bitmap until the commit makes the delete durable;
//! * the **log force** runs every half second of simulated time ("FSD
//!   forces its log twice a second", §5.4), at operation entry, whenever
//!   the pending set approaches the record size cap, or on client demand.

use crate::cache::{FsdNtStore, NtCache, NtMeta};
use crate::entry::{EntryKind, FileEntry};
use crate::error::FsdError;
use crate::layout::{FsdBootPage, FsdLayout};
use crate::leader::LeaderPage;
use crate::log::{Log, PageTarget};
use crate::spare::{self, SpareMap};
use crate::{Result, NT_PAGE_SECTORS};
use cedar_btree::{BTree, PageId};
use cedar_disk::clock::Micros;
use cedar_disk::sched::IoPolicy;
use cedar_disk::{
    Cpu, CpuModel, DiskStats, SectorAddr, SimClock, SimDisk, SECTOR_BYTES, SECTOR_BYTES_U64,
};
use cedar_vol::{AllocPolicy, Allocator, FileName, Run, RunTable, Vam};
use std::collections::{BTreeSet, HashMap};

/// Most runs a file may occupy: bounded by the name-table entry budget.
pub const MAX_RUNS: usize = 16;

/// Configuration for formatting or booting an FSD volume.
#[derive(Clone, Copy, Debug)]
pub struct FsdConfig {
    /// Name-table pages per copy (0 selects a geometry-scaled default).
    pub nt_pages: u32,
    /// Log region sectors (0 selects a geometry-scaled default).
    pub log_sectors: u32,
    /// CPU cost table.
    pub cpu: CpuModel,
    /// Group-commit force interval in simulated microseconds ("The log is
    /// written (if necessary) every half second", §4).
    pub commit_interval_us: Micros,
    /// Files of at most this many pages allocate in the small area (§5.6).
    pub small_threshold: u32,
    /// Enable the §5.3 VAM-logging extension: changed sectors of the VAM
    /// are logged with every commit, so recovery never needs to
    /// reconstruct the free map from the name table ("VAM logging would
    /// greatly decrease worst case crash recovery time from about twenty
    /// five seconds to about two seconds. VAM logging was not done since
    /// it was a complicated modification" — implemented here as an
    /// optional extension).
    pub log_vam: bool,
    /// Maximum resident name-table pages in the cache (0 = unbounded).
    /// The Dorado's real cache was bounded; the default keeps the whole
    /// table resident, which the benches note where it matters.
    pub cache_pages: usize,
    /// I/O submission policy for multi-sector batch paths (log forces,
    /// home-page writeback, recovery scans). [`IoPolicy::InOrder`] is the
    /// measurement baseline; the default C-SCAN order is what the real
    /// Trident microcode queue approximated.
    pub io_policy: IoPolicy,
    /// Decode/verify workers for the recovery-scan paths (scavenge and
    /// VAM reconstruction). `1` keeps the serial pipeline; larger values
    /// run pFSCK-style parallel checking: the reader stage still owns
    /// the single spindle, but leader decoding, entry verification and
    /// free-map sharding spread across this many CPU workers, charged as
    /// the critical path ([`cedar_disk::Cpu::join_parallel`]).
    pub scavenge_workers: usize,
}

impl Default for FsdConfig {
    fn default() -> Self {
        Self {
            nt_pages: 0,
            log_sectors: 0,
            cpu: CpuModel::DORADO,
            commit_interval_us: 500_000,
            small_threshold: 32,
            log_vam: false,
            cache_pages: 0,
            io_policy: IoPolicy::default(),
            scavenge_workers: 1,
        }
    }
}

/// An open file handle.
#[derive(Clone, Debug)]
pub struct FsdFile {
    /// The file's name and version.
    pub name: FileName,
    /// The full name-table entry (all properties inline).
    pub entry: FileEntry,
    /// Whether the leader page has been verified on this handle yet
    /// (done lazily, piggybacked on the first data access — §5.7).
    leader_verified: bool,
}

impl FsdFile {
    /// File length in pages.
    pub fn pages(&self) -> u32 {
        self.entry.run_table.pages()
    }

    /// File length in bytes.
    pub fn byte_size(&self) -> u64 {
        self.entry.byte_size
    }
}

/// A leader image awaiting its home write.
#[derive(Clone, Debug, Default)]
pub(crate) struct LeaderState {
    /// Image changed since the last force (not yet in the log).
    unlogged: Option<Vec<u8>>,
    /// Image in the log and the third holding it.
    logged: Option<(Vec<u8>, u8)>,
}

/// Group-commit statistics (for the §5.4 measurements).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Log forces that wrote at least one record.
    pub forces: u64,
    /// Records appended.
    pub records: u64,
    /// Data pages (sector images) logged.
    pub images_logged: u64,
    /// Log sectors written (records only, 2n+5 each).
    pub log_sectors_written: u64,
    /// Name-table pages written home at third entries.
    pub third_flush_pages: u64,
    /// Largest record appended, in sectors (the paper observed 83).
    pub max_record_sectors: u64,
}

/// Builds the borrowed name-table store from disjoint volume fields.
macro_rules! nt_store {
    ($self:ident) => {
        FsdNtStore {
            disk: &mut $self.disk,
            cpu: &$self.cpu,
            layout: &$self.layout,
            policy: $self.io_policy,
            spare: &mut $self.spare,
            cache: &mut $self.cache,
            pending: &mut $self.pending_pages,
        }
    };
}

/// A mounted FSD volume.
pub struct FsdVolume {
    pub(crate) disk: SimDisk,
    pub(crate) cpu: Cpu,
    pub(crate) layout: FsdLayout,
    pub(crate) boot: FsdBootPage,
    pub(crate) tree: BTree,
    pub(crate) cache: NtCache,
    pub(crate) pending_pages: BTreeSet<PageId>,
    pub(crate) leaders: HashMap<u32, LeaderStateOpaque>,
    pub(crate) log: Log,
    pub(crate) vam: Vam,
    pub(crate) alloc: Allocator,
    pub(crate) uid_counter: u32,
    pub(crate) last_force: Micros,
    pub(crate) commit_interval: Micros,
    pub(crate) vam_hint_on_disk: bool,
    pub(crate) commit_stats: CommitStats,
    /// VAM bytes as of the last force (Some ⇔ VAM logging enabled).
    pub(crate) vam_baseline: Option<Vec<u8>>,
    /// Logged VAM sectors awaiting their home writes: index → (image,
    /// log third).
    pub(crate) vam_home: HashMap<u32, (Vec<u8>, u8)>,
    /// Submission order for batched I/O (log forces, home writeback).
    pub(crate) io_policy: IoPolicy,
    /// Bad-sector remap table (persisted on the boot page) plus the
    /// strike ledger deciding when a flaky sector gets remapped.
    pub(crate) spare: SpareMap,
    /// Replication tap: when present, every successful [`Self::force`]
    /// seals one [`crate::repl::ReplFrame`] (re-encoded commit records
    /// plus the data-area writes drained from the disk write journal)
    /// for the shipper to stream to a replica.
    pub(crate) repl: Option<crate::repl::ReplTap>,
}

/// Crate-private alias so `recovery.rs` can construct the volume without
/// exporting [`LeaderState`].
pub(crate) type LeaderStateOpaque = LeaderState;

impl FsdVolume {
    // ----- lifecycle -----------------------------------------------------------

    /// Formats a blank disk as an FSD volume.
    pub fn format(disk: SimDisk, config: FsdConfig) -> Result<FsdVolume> {
        let layout = FsdLayout::compute(disk.geometry(), config.nt_pages, config.log_sectors);
        let cpu = Cpu::new(disk.clock(), config.cpu);

        let mut vam = Vam::new_all_allocated(layout.total_sectors);
        vam.free_run(Run::new(
            layout.small_start,
            layout.nt_a_start - layout.small_start,
        ));
        vam.free_run(Run::new(
            layout.central_end,
            layout.total_sectors - layout.central_end,
        ));

        let (dlo, dhi) = layout.data_area();
        let mut vol = FsdVolume {
            log: Log::fresh(layout.log_start, layout.log_sectors, 1)?,
            alloc: Allocator::new(
                AllocPolicy::SplitAreas {
                    small_threshold: config.small_threshold,
                },
                dlo,
                dhi,
            ),
            disk,
            cpu,
            layout,
            boot: FsdBootPage {
                boot_count: 1,
                vam_valid: false,
                vam_logged: config.log_vam,
                spare_map: Vec::new(),
            },
            tree: BTree::open(0),
            cache: NtCache::with_capacity(config.cache_pages),
            pending_pages: BTreeSet::new(),
            leaders: HashMap::new(),
            vam,
            uid_counter: 0,
            last_force: 0,
            commit_interval: config.commit_interval_us,
            vam_hint_on_disk: false,
            commit_stats: CommitStats::default(),
            vam_baseline: None,
            vam_home: HashMap::new(),
            io_policy: config.io_policy,
            spare: SpareMap::for_layout(&layout),
            repl: None,
        };
        vol.log.set_policy(config.io_policy);
        {
            let FsdVolume {
                ref mut log,
                ref mut disk,
                ref mut spare,
                ..
            } = vol;
            log.write_meta(disk, spare)?;
        }

        // Seed the meta page and the empty tree — in cache only.
        {
            let mut store = nt_store!(vol);
            store.write_meta(&NtMeta::new(vol.layout.nt_pages))?;
            vol.tree = BTree::create(&mut store)?;
        }
        vol.update_meta_root()?;

        // Make the fresh volume fully durable: log it, write it home, save
        // the VAM, stamp the boot pages.
        vol.force()?;
        vol.sync_home_all()?;
        vol.save_vam_and_mark_valid()?;
        if config.log_vam {
            vol.vam_baseline = Some(vol.padded_vam_bytes());
        }
        Ok(vol)
    }

    /// Controlled shutdown (§5.5): force the log, write all logged pages
    /// home, save the VAM and mark it valid.
    pub fn shutdown(&mut self) -> Result<()> {
        self.force()?;
        self.sync_home_all()?;
        self.save_vam_and_mark_valid()
    }

    // ----- accessors -----------------------------------------------------------

    /// The underlying disk (stats, fault injection).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Disk statistics so far.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// Media-fault repair counters since mount: sectors scrubbed (a
    /// damaged replica rewritten in place from its survivor) and sectors
    /// remapped into the spare region.
    pub fn media_stats(&self) -> (u64, u64) {
        (self.spare.scrubbed, self.spare.remapped)
    }

    /// The persistent bad-sector remap table (logical home → spare slot).
    pub fn spare_entries(&self) -> &[(SectorAddr, SectorAddr)] {
        self.spare.entries()
    }

    /// Absolute sector where the next log record will start. Fault
    /// campaigns use this to aim media faults at the upcoming force.
    pub fn next_log_sector(&self) -> SectorAddr {
        self.layout.log_start + self.log.next_record_offset()
    }

    /// The simulation clock.
    pub fn clock(&self) -> SimClock {
        self.disk.clock()
    }

    /// The CPU charger.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The volume layout.
    pub fn layout(&self) -> &FsdLayout {
        &self.layout
    }

    /// Group-commit statistics.
    pub fn commit_stats(&self) -> CommitStats {
        self.commit_stats
    }

    /// Replaces the commit-daemon interval. A scheduler layered above the
    /// volume (see [`crate::sched::CommitScheduler`]) sets this to
    /// `Micros::MAX` to take ownership of all forcing.
    pub fn set_commit_interval(&mut self, us: Micros) {
        self.commit_interval = us;
    }

    /// Conservative upper bound on the sector images the next force will
    /// log: every sector of every dirty name-table page plus every staged
    /// leader. The true record is usually smaller (only *changed* sectors
    /// are logged), so callers use this for backpressure, never capacity.
    pub fn pending_meta_images(&self) -> usize {
        self.pending_pages.len() * NT_PAGE_SECTORS as usize
            + self
                .leaders
                .values()
                .filter(|ls| ls.unlogged.is_some())
                .count()
    }

    /// Images that fit in one log third — the natural batch bound: a
    /// force near this size spans a whole third and triggers immediate
    /// reclamation ("the log is forced long before [overflow]", §5.3).
    pub fn log_third_capacity_images(&self) -> usize {
        self.log.third_capacity_images()
    }

    /// Free data sectors (excluding shadow-held pages).
    pub fn free_sectors(&self) -> u32 {
        self.vam.free_count()
    }

    /// Sectors freed by uncommitted deletes, waiting in the shadow bitmap
    /// for the next commit (§5.5).
    pub fn shadow_sectors(&self) -> u32 {
        self.vam.shadow_count()
    }

    /// Consumes the volume, returning the disk (crash simulation).
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// Checks the name-table invariants.
    pub fn verify(&mut self) -> Result<()> {
        let tree = self.tree;
        let mut store = nt_store!(self);
        tree.check_invariants(&mut store)?;
        Ok(())
    }

    // ----- replication tap ------------------------------------------------------

    /// Enables the replication tap: from now on every successful
    /// [`Self::force`] seals one [`crate::repl::ReplFrame`] carrying the
    /// commit's sealed log records plus the unlogged data-area writes
    /// mirrored from the disk write journal. Frames accumulate until
    /// [`Self::take_repl_frames`] drains them.
    pub fn enable_repl_tap(&mut self) {
        self.disk.enable_write_journal();
        // Anything already in the journal predates the replica's seed
        // image and must not ship twice.
        self.disk.drain_write_journal();
        self.repl = Some(crate::repl::ReplTap::new());
    }

    /// Whether the replication tap is on.
    pub fn repl_tap_enabled(&self) -> bool {
        self.repl.is_some()
    }

    /// Drains the frames sealed since the last call (oldest first).
    pub fn take_repl_frames(&mut self) -> Vec<crate::repl::ReplFrame> {
        match self.repl.as_mut() {
            Some(tap) => std::mem::take(&mut tap.frames),
            None => Vec::new(),
        }
    }

    /// Seals a record-less frame from whatever the write journal holds
    /// (data writes between commits, shutdown home-write residue). No-op
    /// when the tap is off or nothing was written.
    pub fn seal_repl_data_frame(&mut self) {
        self.seal_repl_frame(Vec::new(), 0, 0);
    }

    /// Seals one frame: `records` are this commit's sealed record bytes,
    /// `data` is everything the write journal accumulated since the last
    /// seal, minus log-region writes (the replica keeps its own log; the
    /// records already carry the commit). Addresses in the journal are
    /// physical, so a remapped log sector is recognized by reverse
    /// translation through the remap table.
    fn seal_repl_frame(&mut self, records: Vec<Vec<u8>>, first_seq: u64, last_seq: u64) {
        if self.repl.is_none() {
            return;
        }
        let entries = self.disk.drain_write_journal();
        let log_lo = self.layout.log_start;
        let log_hi = self.layout.log_start + self.layout.log_sectors;
        let remap = self.spare.entries().to_vec();
        let data: Vec<crate::repl::DataWrite> = entries
            .into_iter()
            .filter(|e| {
                let logical = remap
                    .iter()
                    .find(|&&(_, phys)| phys == e.addr)
                    .map(|&(l, _)| l)
                    .unwrap_or(e.addr);
                !(log_lo..log_hi).contains(&logical)
            })
            .map(|e| crate::repl::DataWrite {
                addr: e.addr,
                data: e.data,
                label: e.label,
            })
            .collect();
        let Some(tap) = self.repl.as_mut() else {
            return;
        };
        if records.is_empty() && data.is_empty() {
            return;
        }
        let frame = crate::repl::ReplFrame {
            id: tap.next_frame,
            first_seq,
            last_seq,
            records,
            data,
            spare: remap,
        };
        tap.next_frame += 1;
        tap.frames.push(frame);
    }

    // ----- group commit ---------------------------------------------------------

    /// Advances simulated time (an idle workstation) and lets the
    /// half-second commit daemon run.
    pub fn advance_time(&mut self, us: Micros) -> Result<()> {
        self.clock().advance(us);
        self.maybe_force()
    }

    /// Forces the log if the commit interval has elapsed — called at the
    /// top of every operation, standing in for the daemon.
    fn maybe_force(&mut self) -> Result<()> {
        if self.clock().now().saturating_sub(self.last_force) >= self.commit_interval {
            self.force()?;
        }
        Ok(())
    }

    /// Group commit (§5.4): logs every changed name-table sector and
    /// pending leader image accumulated since the last force, then
    /// releases shadow-freed pages. Clients may call this to make recent
    /// operations durable immediately.
    pub fn force(&mut self) -> Result<()> {
        self.last_force = self.clock().now();

        // Collect changed sector images: diff each dirty page against its
        // baseline so a page dirtied fifty times still logs once.
        let mut images: Vec<(PageTarget, Vec<u8>)> = Vec::new();
        let mut logged_pages: Vec<(PageId, bool)> = Vec::new();
        for &id in &self.pending_pages {
            let Some(p) = self.cache.pages.get(&id) else {
                continue;
            };
            let mut changed_sectors = 0usize;
            for s in 0..NT_PAGE_SECTORS as usize {
                let range = s * SECTOR_BYTES..(s + 1) * SECTOR_BYTES;
                let changed = match &p.baseline {
                    None => true,
                    Some(base) => p.image[range.clone()] != base[range.clone()],
                };
                if changed {
                    images.push((
                        PageTarget::NtSector {
                            page: id,
                            sector: s as u32,
                        },
                        p.image[range].to_vec(),
                    ));
                    changed_sectors += 1;
                }
            }
            if changed_sectors > 0 {
                logged_pages.push((id, changed_sectors == NT_PAGE_SECTORS as usize));
            }
        }
        let mut logged_leaders: Vec<u32> = Vec::new();
        for (&addr, ls) in &mut self.leaders {
            if let Some(img) = ls.unlogged.take() {
                images.push((PageTarget::Leader { addr }, img));
                logged_leaders.push(addr);
            }
        }
        self.pending_pages.clear();

        // §5.3 extension: log the changed sectors of the VAM alongside
        // the metadata. Shadow frees commit first so the logged image is
        // the post-commit free map.
        let mut logged_vam: Vec<u32> = Vec::new();
        if self.vam_baseline.is_some() {
            self.vam.commit_shadow();
            let current = self.padded_vam_bytes();
            let Some(baseline) = self.vam_baseline.as_ref() else {
                return Err(FsdError::Check(
                    "VAM baseline missing under VAM logging".to_string(),
                ));
            };
            for i in 0..self.layout.vam_sectors {
                let range = i as usize * SECTOR_BYTES..(i as usize + 1) * SECTOR_BYTES;
                if current[range.clone()] != baseline[range.clone()] {
                    images.push((PageTarget::VamSector { index: i }, current[range].to_vec()));
                    logged_vam.push(i);
                }
            }
            self.vam_baseline = Some(current);
        }

        if images.is_empty() {
            // Nothing differs from the last committed state (e.g. a
            // create and delete of the same file cancelled out), so any
            // shadow frees are trivially durable. Data-page writes are
            // synchronous and never logged, so they may still need a
            // (record-less) replication frame.
            self.vam.commit_shadow();
            self.seal_repl_data_frame();
            return Ok(());
        }
        self.cpu.sectors(images.len() as u64);

        // Append in record-sized chunks, remembering each image's third.
        let max = self.log.max_images();
        let policy = self.io_policy;
        let mut thirds: HashMap<usize, u8> = HashMap::new(); // image index → third
        let mut repl_records: Vec<Vec<u8>> = Vec::new();
        let mut repl_seqs: Option<(u64, u64)> = None;
        let mut base = 0usize;
        while base < images.len() {
            let chunk = &images[base..(base + max).min(images.len())];
            let FsdVolume {
                ref mut log,
                ref mut disk,
                ref mut cache,
                ref mut leaders,
                ref layout,
                ref mut commit_stats,
                ref mut spare,
                ..
            } = *self;
            let FsdVolume {
                ref mut vam_home, ..
            } = *self;
            let _ = &vam_home;
            let is_last = base + chunk.len() >= images.len();
            let (seq, third) = log.append(disk, spare, chunk, is_last, |disk, spare, t| {
                flush_third(
                    disk,
                    layout,
                    cache,
                    leaders,
                    vam_home,
                    spare,
                    t,
                    commit_stats,
                    policy,
                )
            })?;
            if self.repl.is_some() {
                // Re-encode the exact sealed bytes the append just wrote:
                // the replication stream ships records in their on-disk
                // form, so the replica decodes with the same checks as
                // boot-time recovery.
                repl_records.push(crate::log::encode_record(
                    chunk,
                    seq,
                    self.log.boot_count(),
                    is_last,
                )?);
                let (first, _) = repl_seqs.unwrap_or((seq, seq));
                repl_seqs = Some((first, seq));
            }
            for i in base..base + chunk.len() {
                thirds.insert(i, third);
            }
            self.commit_stats.records += 1;
            self.commit_stats.images_logged += chunk.len() as u64;
            let sectors = 2 * chunk.len() as u64 + 5;
            self.commit_stats.log_sectors_written += sectors;
            self.commit_stats.max_record_sectors =
                self.commit_stats.max_record_sectors.max(sectors);
            base += chunk.len();
        }
        self.commit_stats.forces += 1;

        // Mark the logged state.
        let third_of_image = |want: &PageTarget, images: &[(PageTarget, Vec<u8>)]| {
            images
                .iter()
                .position(|(t, _)| t == want)
                .and_then(|i| thirds.get(&i).copied())
        };
        for (id, full) in logged_pages {
            // The page's newest images are in the chunk holding its last
            // sector; conservatively use its *first* image's third (the
            // earliest to be reclaimed).
            let t = third_of_image(
                &PageTarget::NtSector {
                    page: id,
                    sector: 0,
                },
                &images,
            )
            .or_else(|| {
                (0..NT_PAGE_SECTORS).find_map(|s| {
                    third_of_image(
                        &PageTarget::NtSector {
                            page: id,
                            sector: s,
                        },
                        &images,
                    )
                })
            });
            if let Some(p) = self.cache.pages.get_mut(&id) {
                p.baseline = Some(p.image.clone());
                // A partial log (some sectors unchanged this force) leaves
                // the newest image of the quiet sectors riding an *older*
                // third — a continuously-hot page (the allocation bitmap,
                // whose write frontier only advances) would otherwise keep
                // its tag on the newest third forever, never get flushed
                // by the reclaim sweep, and lose its quiet sectors once
                // the log lapped them. Keep the older tag in that case so
                // the full baseline goes home before that third reclaims;
                // advance it only when the whole page was logged or the
                // home copy is current.
                if full || p.last_logged_third.is_none() {
                    p.last_logged_third = t;
                }
                p.needs_home = true;
            }
        }
        for addr in logged_leaders {
            let t = third_of_image(&PageTarget::Leader { addr }, &images).unwrap_or(0);
            if let Some(ls) = self.leaders.get_mut(&addr) {
                let img = images
                    .iter()
                    .find(|(tg, _)| *tg == PageTarget::Leader { addr })
                    .map(|(_, i)| i.clone())
                    .ok_or_else(|| {
                        FsdError::Check(format!(
                            "logged leader {addr} has no image in the commit record"
                        ))
                    })?;
                ls.logged = Some((img, t));
            }
        }
        for index in logged_vam {
            let t = third_of_image(&PageTarget::VamSector { index }, &images).unwrap_or(0);
            let img = images
                .iter()
                .find(|(tg, _)| *tg == PageTarget::VamSector { index })
                .map(|(_, i)| i.clone())
                .ok_or_else(|| {
                    FsdError::Check(format!(
                        "logged VAM sector {index} has no image in the commit record"
                    ))
                })?;
            self.vam_home.insert(index, (img, t));
        }

        // The commit is durable: shadow-freed pages become allocatable
        // (§5.5).
        self.vam.commit_shadow();

        // Any sector remapped during this force must reach the boot page
        // before the remapped data matters to a reboot.
        if self.spare.take_dirty() {
            self.write_boot_pages()?;
        }

        // The commit is on disk: seal it (plus the interval's data-area
        // writes) as one replication frame.
        let (first_seq, last_seq) = repl_seqs.unwrap_or((0, 0));
        self.seal_repl_frame(repl_records, first_seq, last_seq);
        Ok(())
    }

    /// Writes home every page and leader with logged-but-unwritten state
    /// (controlled shutdown, and after format). All home writes go to
    /// disjoint sectors, so they form one scheduler window: sorted,
    /// coalesced, swept in C-SCAN order.
    pub(crate) fn sync_home_all(&mut self) -> Result<()> {
        // Collect in logical order — both replicas of a page together,
        // pages by id, then leaders, then VAM sectors. That is the
        // submission order the naive in-order policy executes (exactly
        // the old synchronous loop); the C-SCAN policy re-sorts it.
        let mut writes: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut ids: Vec<PageId> = self.cache.pages.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let Some(p) = self.cache.pages.get_mut(&id) else {
                continue;
            };
            if p.needs_home {
                let Some(img) = p.baseline.as_ref() else {
                    return Err(FsdError::Check(format!(
                        "page {id} needs a home write but has no baseline image"
                    )));
                };
                writes.push((self.layout.nt_a_sector(id), img.clone()));
                writes.push((self.layout.nt_b_sector(id), img.clone()));
                p.needs_home = false;
            }
            p.last_logged_third = None;
        }
        let mut addrs: Vec<u32> = self.leaders.keys().copied().collect();
        addrs.sort_unstable();
        for addr in addrs {
            if let Some(ls) = self.leaders.get_mut(&addr) {
                if let Some((img, _)) = ls.logged.take() {
                    writes.push((addr, img));
                }
            }
        }
        self.leaders
            .retain(|_, ls| ls.unlogged.is_some() || ls.logged.is_some());
        let mut indexes: Vec<u32> = self.vam_home.keys().copied().collect();
        indexes.sort_unstable();
        for index in indexes {
            if let Some((img, _)) = self.vam_home.remove(&index) {
                writes.push((self.layout.vam_a + index, img.clone()));
                writes.push((self.layout.vam_b + index, img));
            }
        }
        spare::write_home_batch(&mut self.disk, self.io_policy, &mut self.spare, writes)?;
        if self.spare.take_dirty() {
            self.write_boot_pages()?;
        }
        Ok(())
    }

    /// The VAM serialized and padded to the save area's sector count.
    pub(crate) fn padded_vam_bytes(&self) -> Vec<u8> {
        let mut bytes = self.vam.to_bytes();
        bytes.resize(self.layout.vam_sectors as usize * SECTOR_BYTES, 0);
        bytes
    }

    pub(crate) fn save_vam_and_mark_valid(&mut self) -> Result<()> {
        // Both save-area copies in one window (at most one can be torn by
        // a crash; the boot pages marking them valid follow in a separate
        // submission, so validity never precedes durability).
        let bytes = self.padded_vam_bytes();
        spare::write_home_batch(
            &mut self.disk,
            self.io_policy,
            &mut self.spare,
            vec![
                (self.layout.vam_a, bytes.clone()),
                (self.layout.vam_b, bytes.clone()),
            ],
        )?;
        self.boot.vam_valid = true;
        self.write_boot_pages()?;
        self.vam_hint_on_disk = true;
        if self.vam_baseline.is_some() {
            self.vam_baseline = Some(bytes);
            self.vam_home.clear();
        }
        Ok(())
    }

    pub(crate) fn write_boot_pages(&mut self) -> Result<()> {
        self.boot.spare_map = self.spare.entries().to_vec();
        self.spare.take_dirty();
        crate::layout::write_replicas(
            &mut self.disk,
            self.io_policy,
            self.layout.boot_a,
            self.layout.boot_b,
            self.boot.encode(),
        )
    }

    fn invalidate_vam_hint(&mut self) -> Result<()> {
        // Under VAM logging the save area is a redo-patched base image:
        // it never goes stale, so there is nothing to invalidate.
        if self.vam_baseline.is_some() {
            return Ok(());
        }
        if self.vam_hint_on_disk {
            self.boot.vam_valid = false;
            self.write_boot_pages()?;
            self.vam_hint_on_disk = false;
        }
        Ok(())
    }

    // ----- internals -------------------------------------------------------------

    fn next_uid(&mut self) -> u64 {
        self.uid_counter += 1;
        ((self.boot.boot_count as u64) << 32) | self.uid_counter as u64
    }

    /// Keeps the meta page's root pointer in step with the tree (a
    /// cache-only write, committed with everything else).
    pub(crate) fn update_meta_root(&mut self) -> Result<()> {
        let root = self.tree.root();
        let mut store = nt_store!(self);
        let mut raw = store
            .read_through(0)
            .map_err(cedar_btree::BTreeError::Store)?;
        // The root lives at a fixed offset in page 0; patching it in
        // place leaves the (possibly multi-page) bitmap untouched.
        if NtMeta::decode_root(&raw).map_err(FsdError::Check)? != root {
            raw[4..8].copy_from_slice(&root.to_le_bytes());
            use cedar_btree::PageStore;
            store
                .write_page(0, &raw)
                .map_err(cedar_btree::BTreeError::Store)?;
        }
        Ok(())
    }

    fn resolve(&mut self, name: &str, version: Option<u32>) -> Result<FileName> {
        match version {
            Some(v) => FileName::new(name, v).map_err(FsdError::BadName),
            None => {
                let v = self.max_version(name)?;
                if v == 0 {
                    return Err(FsdError::NotFound(name.to_string()));
                }
                FileName::new(name, v).map_err(FsdError::BadName)
            }
        }
    }

    /// Highest existing version of `name` (0 if none).
    pub fn max_version(&mut self, name: &str) -> Result<u32> {
        let (lo, hi) = FileName::versions_range(name);
        let mut last: Option<Vec<u8>> = None;
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, _| {
                last = Some(k.to_vec());
                true
            })?;
        }
        match last {
            Some(k) => Ok(FileName::from_key(&k).map_err(FsdError::Check)?.version),
            None => Ok(0),
        }
    }

    fn get_entry(&mut self, fname: &FileName) -> Result<FileEntry> {
        let tree = self.tree;
        let got = {
            let mut store = nt_store!(self);
            tree.get(&mut store, &fname.to_key())?
        };
        let raw = got.ok_or_else(|| FsdError::NotFound(fname.to_string()))?;
        self.cpu.entries(1);
        FileEntry::decode(&raw)
    }

    pub(crate) fn put_entry(&mut self, fname: &FileName, entry: &FileEntry) -> Result<()> {
        let mut tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.insert(&mut store, &fname.to_key(), &entry.encode())?;
        }
        self.tree = tree;
        self.cpu.entries(1);
        self.update_meta_root()
    }

    /// Force early if the pending set is approaching a log third ("the
    /// log is forced long before" overflow, §5.3). The threshold scales
    /// with the log: a bigger log absorbs bigger batches, exactly the
    /// §5.4 "bigger log … improves these factors" lever.
    fn force_if_bulky(&mut self) -> Result<()> {
        if self.pending_meta_images() >= self.bulky_threshold() {
            self.force()?;
        }
        Ok(())
    }

    /// Pending-image level at which the volume forces on its own:
    /// three-quarters of a log third (conservatively estimated images
    /// stay well inside the third the force lands in).
    pub fn bulky_threshold(&self) -> usize {
        (self.log.third_capacity_images() * 3 / 4).max(2)
    }

    // ----- operations --------------------------------------------------------------

    /// Creates a new version of `name` holding `data`.
    pub fn create(&mut self, name: &str, data: &[u8]) -> Result<FsdFile> {
        self.create_kind(name, data, None)
    }

    /// Creates a cached copy of a remote file (entry kind
    /// `CachedRemote`, carrying a last-used-time — §5.4's example of data
    /// that tolerates lazy update).
    pub fn create_cached(&mut self, name: &str, data: &[u8]) -> Result<FsdFile> {
        let now = self.clock().now();
        self.create_kind(name, data, Some(EntryKind::CachedRemote { last_used: now }))
    }

    fn create_kind(&mut self, name: &str, data: &[u8], kind: Option<EntryKind>) -> Result<FsdFile> {
        self.maybe_force()?;
        self.cpu.op();
        self.invalidate_vam_hint()?;
        FileName::new(name, 1).map_err(FsdError::BadName)?;
        let version = self.max_version(name)? + 1;
        let fname = FileName::new(name, version).map_err(FsdError::BadName)?;
        // A new version inherits the previous newest version's keep count.
        let keep = if version > 1 {
            let prev = FileName::new(name, version - 1).map_err(FsdError::BadName)?;
            self.get_entry(&prev).map(|e| e.keep).unwrap_or(0)
        } else {
            0
        };
        let uid = self.next_uid();
        let data_pages = data.len().div_ceil(SECTOR_BYTES) as u32;

        // Leader + data in one allocation: the leader lands on the sector
        // before data page 0, making the §5.7 piggyback read free.
        let rt_all = self.alloc.allocate(&mut self.vam, 1 + data_pages)?;
        if rt_all.runs().len() > MAX_RUNS {
            for r in rt_all.runs() {
                self.vam.free_run(*r);
            }
            return Err(FsdError::NoSpace);
        }
        self.cancel_stale_leaders(rt_all.runs());
        let first = rt_all.runs()[0];
        let leader_addr = first.start;
        let mut run_table = RunTable::new();
        if first.len > 1 {
            run_table.push(Run::new(first.start + 1, first.len - 1));
        }
        for r in &rt_all.runs()[1..] {
            run_table.push(*r);
        }

        let entry = FileEntry {
            kind: kind.unwrap_or(EntryKind::Local),
            uid,
            keep,
            byte_size: data.len() as u64,
            create_time: self.clock().now(),
            leader_addr,
            run_table,
        };

        // Update the name table — cache only, logged at the next force.
        self.put_entry(&fname, &entry)?;
        self.enforce_keep(name, version, keep)?;

        // The one synchronous I/O: leader + leading data in a single
        // write, remaining extents after.
        let leader = LeaderPage::for_entry(&fname, &entry);
        let mut buf = leader.encode();
        let first_data = ((first.len - 1) as usize * SECTOR_BYTES).min(data.len());
        let mut chunk = data[..first_data].to_vec();
        chunk.resize((first.len - 1) as usize * SECTOR_BYTES, 0);
        buf.extend_from_slice(&chunk);
        self.disk.write(first.start, &buf)?;
        self.cpu.sectors(1 + data_pages as u64);
        let mut offset = first_data;
        for run in &rt_all.runs()[1..] {
            let want = (data.len() - offset).min(run.len as usize * SECTOR_BYTES);
            let mut chunk = data[offset..offset + want].to_vec();
            chunk.resize(run.len as usize * SECTOR_BYTES, 0);
            self.disk.write(run.start, &chunk)?;
            offset += want;
        }

        self.force_if_bulky()?;
        Ok(FsdFile {
            name: fname,
            entry,
            leader_verified: true, // We just wrote it.
        })
    }

    /// Sets the keep count on every version of `name`: the number of old
    /// versions retained when new ones are created ("Both systems support
    /// versions for files", §5.3; the keep field appears in every Table 1
    /// entry). A keep of zero retains all versions.
    pub fn set_keep(&mut self, name: &str, keep: u32) -> Result<()> {
        self.maybe_force()?;
        self.cpu.op();
        let (lo, hi) = FileName::versions_range(name);
        let mut versions: Vec<FileName> = Vec::new();
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, _| {
                if let Ok(f) = FileName::from_key(k) {
                    versions.push(f);
                }
                true
            })?;
        }
        let newest = match versions.last() {
            Some(f) => f.version,
            None => return Err(FsdError::NotFound(name.to_string())),
        };
        for fname in versions {
            let mut entry = self.get_entry(&fname)?;
            entry.keep = keep;
            self.put_entry(&fname, &entry)?;
        }
        self.enforce_keep(name, newest, keep)?;
        self.force_if_bulky()?;
        Ok(())
    }

    /// Prunes versions older than the keep window ending at `newest`.
    fn enforce_keep(&mut self, name: &str, newest: u32, keep: u32) -> Result<()> {
        if keep == 0 || newest <= keep {
            return Ok(());
        }
        let (lo, hi) = FileName::versions_range(name);
        let mut stale: Vec<FileName> = Vec::new();
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, _| {
                if let Ok(f) = FileName::from_key(k) {
                    if f.version + keep <= newest {
                        stale.push(f);
                    }
                }
                true
            })?;
        }
        for fname in stale {
            self.delete(&fname.name, Some(fname.version))?;
        }
        Ok(())
    }

    /// Creates a symbolic link to a remote file.
    pub fn create_symlink(&mut self, name: &str, target: &str) -> Result<FsdFile> {
        self.maybe_force()?;
        self.cpu.op();
        FileName::new(name, 1).map_err(FsdError::BadName)?;
        let version = self.max_version(name)? + 1;
        let fname = FileName::new(name, version).map_err(FsdError::BadName)?;
        let entry = FileEntry {
            kind: EntryKind::SymLink {
                target: target.to_string(),
            },
            uid: self.next_uid(),
            keep: 0,
            byte_size: 0,
            create_time: self.clock().now(),
            leader_addr: 0,
            run_table: RunTable::new(),
        };
        self.put_entry(&fname, &entry)?;
        Ok(FsdFile {
            name: fname,
            entry,
            leader_verified: true, // Links have no leader.
        })
    }

    /// Opens the newest (or a specific) version of `name`. Usually does no
    /// I/O (§5.7): the entry carries everything, and the leader check is
    /// deferred to the first data access. Opening a cached remote copy
    /// refreshes its last-used-time — lazily, via the group commit.
    pub fn open(&mut self, name: &str, version: Option<u32>) -> Result<FsdFile> {
        self.maybe_force()?;
        self.cpu.op();
        let fname = self.resolve(name, version)?;
        let mut entry = self.get_entry(&fname)?;
        if let EntryKind::CachedRemote { last_used } = &mut entry.kind {
            *last_used = self.clock().now();
            self.put_entry(&fname, &entry)?;
        }
        Ok(FsdFile {
            name: fname,
            entry,
            leader_verified: false,
        })
    }

    /// Verifies the leader page, piggybacked with the first `extra`
    /// sectors after it when they are wanted anyway (§5.7).
    fn verify_leader(&mut self, file: &FsdFile, extra: usize) -> Result<Vec<u8>> {
        // A leader awaiting its home write is checked from memory.
        let in_memory = self.leaders.get(&file.entry.leader_addr).and_then(|ls| {
            ls.unlogged
                .clone()
                .or_else(|| ls.logged.as_ref().map(|(i, _)| i.clone()))
        });
        if let Some(img) = in_memory {
            let leader = LeaderPage::decode(&img)?;
            leader.verify(&file.name, &file.entry)?;
            if extra == 0 {
                return Ok(Vec::new());
            }
            return Ok(self.disk.read(file.entry.leader_addr + 1, extra)?);
        }
        let raw = self.disk.read(file.entry.leader_addr, 1 + extra)?;
        let leader = LeaderPage::decode(&raw[..SECTOR_BYTES])?;
        leader.verify(&file.name, &file.entry)?;
        Ok(raw[SECTOR_BYTES..].to_vec())
    }

    /// Reads one page of an open file, verifying the leader on the
    /// handle's first access.
    pub fn read_page(&mut self, file: &mut FsdFile, page: u32) -> Result<Vec<u8>> {
        let sector = file
            .entry
            .run_table
            .sector_of(page)
            .ok_or(FsdError::OutOfRange {
                page,
                pages: file.pages(),
            })?;
        self.cpu.sectors(1);
        if !file.leader_verified {
            file.leader_verified = true;
            if sector == file.entry.leader_addr + 1 {
                // The usual case: "the leader page is the previous
                // physical page on the disk" — one combined transfer.
                return self.verify_leader(file, 1);
            }
            self.verify_leader(file, 0)?;
        }
        Ok(self.disk.read(sector, 1)?)
    }

    /// Reads a whole file (one transfer per extent, the first piggybacked
    /// with the leader), truncated to its byte size.
    pub fn read_file(&mut self, file: &mut FsdFile) -> Result<Vec<u8>> {
        if matches!(file.entry.kind, EntryKind::SymLink { .. }) {
            return Err(FsdError::WrongKind("regular file"));
        }
        let mut out = Vec::with_capacity(file.entry.byte_size as usize);
        let runs: Vec<Run> = file.entry.run_table.runs().to_vec();
        for (i, run) in runs.iter().enumerate() {
            if i == 0 && !file.leader_verified && run.start == file.entry.leader_addr + 1 {
                file.leader_verified = true;
                out.extend(self.verify_leader(file, run.len as usize)?);
                continue;
            }
            out.extend(self.disk.read(run.start, run.len as usize)?);
        }
        if !file.leader_verified && file.entry.leader_addr != 0 {
            file.leader_verified = true;
            self.verify_leader(file, 0)?;
        }
        self.cpu.sectors(file.pages() as u64);
        out.truncate(file.entry.byte_size as usize);
        Ok(out)
    }

    /// Reads `count` consecutive logical pages, batching transfers along
    /// physical extents (the streaming read path; Table 5 drives this).
    pub fn read_pages(&mut self, file: &mut FsdFile, page: u32, count: u32) -> Result<Vec<u8>> {
        if page + count > file.pages() {
            return Err(FsdError::OutOfRange {
                page: page + count - 1,
                pages: file.pages(),
            });
        }
        let mut out = Vec::with_capacity(count as usize * SECTOR_BYTES);
        let mut at = page;
        if !file.leader_verified && file.entry.leader_addr != 0 {
            file.leader_verified = true;
            let piggyback = if page == 0 {
                // Piggyback the leader check on the first transfer (§5.7).
                file.entry
                    .run_table
                    .extent_at(page)
                    .filter(|e| e.start == file.entry.leader_addr + 1)
            } else {
                None
            };
            if let Some(extent) = piggyback {
                let take = extent.len.min(count);
                out.extend(self.verify_leader(file, take as usize)?);
                at += take;
            } else {
                self.verify_leader(file, 0)?;
            }
        }
        while at < page + count {
            let extent =
                file.entry.run_table.extent_at(at).ok_or_else(|| {
                    FsdError::Check(format!("page {at} missing from the run table"))
                })?;
            let take = extent.len.min(page + count - at);
            out.extend(self.disk.read(extent.start, take as usize)?);
            at += take;
        }
        self.cpu.sectors(count as u64);
        Ok(out)
    }

    /// Writes `count` consecutive logical pages from `data`, batching
    /// transfers along physical extents.
    pub fn write_pages(&mut self, file: &mut FsdFile, page: u32, data: &[u8]) -> Result<()> {
        assert_eq!(data.len() % SECTOR_BYTES, 0);
        let count = (data.len() / SECTOR_BYTES) as u32;
        if page + count > file.pages() {
            return Err(FsdError::OutOfRange {
                page: page + count - 1,
                pages: file.pages(),
            });
        }
        let mut at = page;
        let mut off = 0usize;
        while at < page + count {
            let extent =
                file.entry.run_table.extent_at(at).ok_or_else(|| {
                    FsdError::Check(format!("page {at} missing from the run table"))
                })?;
            let take = extent.len.min(page + count - at) as usize;
            self.disk
                .write(extent.start, &data[off..off + take * SECTOR_BYTES])?;
            at += take as u32;
            off += take * SECTOR_BYTES;
        }
        self.cpu.sectors(count as u64);
        Ok(())
    }

    /// Overwrites one page of an open file.
    pub fn write_page(&mut self, file: &mut FsdFile, page: u32, data: &[u8]) -> Result<()> {
        assert!(data.len() <= SECTOR_BYTES);
        self.maybe_force()?;
        let sector = file
            .entry
            .run_table
            .sector_of(page)
            .ok_or(FsdError::OutOfRange {
                page,
                pages: file.pages(),
            })?;
        let mut buf = vec![0u8; SECTOR_BYTES];
        buf[..data.len()].copy_from_slice(data);
        self.cpu.sectors(1);
        // Piggyback a pending (already logged) leader home write when the
        // data write passes right by it (§5.3).
        let leader_addr = file.entry.leader_addr;
        if sector == leader_addr + 1 {
            if let Some(ls) = self.leaders.get_mut(&leader_addr) {
                if ls.unlogged.is_none() {
                    if let Some((img, _)) = ls.logged.take() {
                        let mut combined = img;
                        combined.extend_from_slice(&buf);
                        self.disk.write(leader_addr, &combined)?;
                        self.leaders.remove(&leader_addr);
                        file.leader_verified = true;
                        return Ok(());
                    }
                }
            }
        }
        self.disk.write(sector, &buf)?;
        Ok(())
    }

    /// Extends an open file by `add_pages` pages (zero-filled). Metadata
    /// changes are logged; the new leader image is written home lazily.
    pub fn extend(&mut self, file: &mut FsdFile, add_pages: u32) -> Result<()> {
        self.maybe_force()?;
        self.cpu.op();
        self.invalidate_vam_hint()?;
        let mut rt = file.entry.run_table.clone();
        self.alloc.extend(&mut self.vam, &mut rt, add_pages)?;
        if rt.runs().len() > MAX_RUNS {
            // Give back the new pages and refuse.
            for r in rt.truncate(file.entry.run_table.pages()) {
                self.vam.free_run(r);
            }
            return Err(FsdError::NoSpace);
        }
        self.cancel_stale_leaders(rt.runs());
        file.entry.run_table = rt;
        file.entry.byte_size = file.pages() as u64 * SECTOR_BYTES_U64;
        let fname = file.name.clone();
        let entry = file.entry.clone();
        self.put_entry(&fname, &entry)?;
        self.stage_leader(&fname, &entry);
        self.force_if_bulky()?;
        Ok(())
    }

    /// Truncates an open file to `pages` pages. The freed pages go to the
    /// shadow bitmap until the commit (§5.5).
    pub fn truncate(&mut self, file: &mut FsdFile, pages: u32) -> Result<()> {
        self.maybe_force()?;
        self.cpu.op();
        self.invalidate_vam_hint()?;
        let removed = file.entry.run_table.truncate(pages);
        for r in removed {
            self.vam.shadow_free_run(r);
        }
        file.entry.byte_size = file.entry.byte_size.min(pages as u64 * SECTOR_BYTES_U64);
        let fname = file.name.clone();
        let entry = file.entry.clone();
        self.put_entry(&fname, &entry)?;
        self.stage_leader(&fname, &entry);
        Ok(())
    }

    /// Stages a new leader image for lazy (logged, then piggybacked or
    /// third-entry) writing.
    fn stage_leader(&mut self, name: &FileName, entry: &FileEntry) {
        if entry.leader_addr == 0 {
            return;
        }
        let img = LeaderPage::for_entry(name, entry).encode();
        self.leaders.entry(entry.leader_addr).or_default().unlogged = Some(img);
    }

    /// Drops staged leader images that fall inside freshly allocated
    /// runs: those sectors now belong to a new file, so a stale leader
    /// (or delete tombstone) write-back would corrupt its data.
    fn cancel_stale_leaders(&mut self, runs: &[Run]) {
        self.leaders
            .retain(|&addr, _| !runs.iter().any(|r| r.contains(addr)));
    }

    /// Deletes a version of `name` (the newest when `version` is `None`).
    /// Does no synchronous I/O: the entry leaves the cache copy of the
    /// name table and the pages wait in the shadow bitmap (§5.5).
    pub fn delete(&mut self, name: &str, version: Option<u32>) -> Result<()> {
        self.maybe_force()?;
        self.cpu.op();
        self.invalidate_vam_hint()?;
        let fname = self.resolve(name, version)?;
        let entry = self.get_entry(&fname)?;
        let mut tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.delete(&mut store, &fname.to_key())?;
        }
        self.tree = tree;
        self.update_meta_root()?;
        if entry.leader_addr != 0 {
            self.vam.shadow_free_run(Run::new(entry.leader_addr, 1));
            // Stage a tombstone over the old leader so a later scavenge
            // (rebuilding the name table from leader pages) does not
            // resurrect the deleted file. Cancelled if the sector is
            // reallocated before it reaches the disk.
            let img = LeaderPage::tombstone(&fname, &entry).encode();
            self.leaders.entry(entry.leader_addr).or_default().unlogged = Some(img);
        }
        for r in entry.run_table.runs() {
            self.vam.shadow_free_run(*r);
        }
        self.force_if_bulky()?;
        Ok(())
    }

    /// Lists files under a name prefix with all their properties — no
    /// per-file I/O, since everything is in the name table (§5.1).
    pub fn list(&mut self, prefix: &str) -> Result<Vec<(FileName, FileEntry)>> {
        self.maybe_force()?;
        self.cpu.op();
        let (lo, hi) = FileName::prefix_range(prefix);
        let mut raw: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, v| {
                raw.push((k.to_vec(), v.to_vec()));
                true
            })?;
        }
        self.cpu.entries(raw.len() as u64);
        raw.into_iter()
            .map(|(k, v)| {
                Ok((
                    FileName::from_key(&k).map_err(FsdError::Check)?,
                    FileEntry::decode(&v)?,
                ))
            })
            .collect()
    }
}

/// Writes home every page and leader whose only log copy lives in third
/// `t`, which is about to be reclaimed (§5.3). The writes all target
/// disjoint sectors, so the whole flush is one scheduler window.
#[allow(clippy::too_many_arguments)]
fn flush_third(
    disk: &mut SimDisk,
    layout: &FsdLayout,
    cache: &mut NtCache,
    leaders: &mut HashMap<u32, LeaderStateOpaque>,
    vam_home: &mut HashMap<u32, (Vec<u8>, u8)>,
    spare: &mut SpareMap,
    t: u8,
    stats: &mut CommitStats,
    policy: IoPolicy,
) -> Result<()> {
    let mut writes: Vec<(u32, Vec<u8>)> = Vec::new();
    let mut ids: Vec<PageId> = cache.pages.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let Some(p) = cache.pages.get_mut(&id) else {
            continue;
        };
        if p.last_logged_third == Some(t) {
            if p.needs_home {
                // Write the *baseline* (last committed image), never the
                // possibly-uncommitted current image.
                let Some(img) = p.baseline.as_ref() else {
                    return Err(FsdError::Check(format!(
                        "page {id} needs a home write but has no baseline image"
                    )));
                };
                writes.push((layout.nt_a_sector(id), img.clone()));
                writes.push((layout.nt_b_sector(id), img.clone()));
                p.needs_home = false;
                stats.third_flush_pages += 1;
            }
            p.last_logged_third = None;
        }
    }
    let mut addrs: Vec<u32> = leaders.keys().copied().collect();
    addrs.sort_unstable();
    let mut done: Vec<u32> = Vec::new();
    for addr in addrs {
        let Some(ls) = leaders.get_mut(&addr) else {
            continue;
        };
        if let Some((img, third)) = &ls.logged {
            if *third == t {
                writes.push((addr, img.clone()));
                ls.logged = None;
                if ls.unlogged.is_none() {
                    done.push(addr);
                }
            }
        }
    }
    for addr in done {
        leaders.remove(&addr);
    }
    let mut flushable: Vec<u32> = vam_home
        .iter()
        .filter(|(_, (_, third))| *third == t)
        .map(|(&i, _)| i)
        .collect();
    flushable.sort_unstable();
    for index in flushable {
        let Some((img, _)) = vam_home.remove(&index) else {
            return Err(FsdError::Check(format!(
                "VAM home image {index} vanished mid-flush"
            )));
        };
        writes.push((layout.vam_a + index, img.clone()));
        writes.push((layout.vam_b + index, img));
    }
    spare::write_home_batch(disk, policy, spare, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NT_PAGE_BYTES;
    use cedar_btree::PageStore;

    /// Regression: a page that stays hot in one sector while another
    /// sector goes quiet must survive a crash after the log laps. The
    /// per-sector diff in [`FsdVolume::force`] means the quiet sector's
    /// newest image rides an old third; if the page's flush tag advanced
    /// with every partial log, the reclaim sweep would never write it
    /// home and the lap would destroy the only copy. (Observed in the
    /// wild on the allocation bitmap, whose write frontier only moves
    /// forward — crash recovery came back with a weeks-old free map.)
    #[test]
    fn quiet_sector_of_hot_page_survives_log_lap_crash() {
        let config = FsdConfig {
            nt_pages: 16,
            log_sectors: 128,
            cpu: CpuModel::FREE,
            ..FsdConfig::default()
        };
        let mut v = FsdVolume::format(SimDisk::tiny(), config).unwrap();

        // An out-of-tree page: distinctive content in sector 0, a
        // counter in sector 1.
        let page: PageId = 12;
        let mut img = vec![0u8; NT_PAGE_BYTES];
        for (i, b) in img[..SECTOR_BYTES].iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        nt_store!(v).write_page(page, &img).unwrap();
        v.force().unwrap();
        let quiet = img[..SECTOR_BYTES].to_vec();

        // Dirty only sector 1 across enough forces to lap the 128-sector
        // log several times (each force appends one 7-sector record).
        let laps = 60u32;
        for i in 0..laps {
            img[SECTOR_BYTES..SECTOR_BYTES + 4].copy_from_slice(&i.to_le_bytes());
            nt_store!(v).write_page(page, &img).unwrap();
            v.force().unwrap();
        }

        let mut disk = v.into_disk();
        disk.crash_now();
        disk.reboot();
        let (mut v2, _) = FsdVolume::boot(disk, config).unwrap();
        let got = nt_store!(v2).read_through(page).unwrap();
        assert_eq!(
            &got[..SECTOR_BYTES],
            &quiet[..],
            "quiet sector lost across log lap + crash"
        );
        assert_eq!(
            &got[SECTOR_BYTES..SECTOR_BYTES + 4],
            &(laps - 1).to_le_bytes(),
            "hot sector not recovered to the last force"
        );
    }
}
