//! Property test: the parallel scavenger is *observationally identical*
//! to the serial one. For any operation stream, any replica-covered
//! fault plan, and a scavenge-forcing boot (clean shutdown, then both
//! log meta replicas destroyed), booting with one worker and with eight
//! must produce the same summary, the same surviving files with the
//! same contents, and the same free map — only the simulated clock may
//! differ. Parallelism here is a CPU-scheduling choice, never a
//! semantic one.

use cedar_disk::{CpuModel, FaultPlan, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume, RecoveryRung};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config_with(workers: usize) -> FsdConfig {
    FsdConfig {
        nt_pages: 24,
        log_sectors: 160,
        cpu: CpuModel::FREE,
        scavenge_workers: workers,
        ..FsdConfig::default()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Create(u8, Vec<u8>),
    Delete(u8),
    Force,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..16, proptest::collection::vec(any::<u8>(), 0..1500))
            .prop_map(|(n, d)| Op::Create(n, d)),
        2 => (0u8..16).prop_map(Op::Delete),
        1 => Just(Op::Force),
    ]
}

fn name(n: u8) -> String {
    format!("file{n:02}")
}

/// Everything observable about a recovered volume except timing:
/// (name, version) → content, plus the free-sector count.
fn observe(v: &mut FsdVolume) -> (BTreeMap<(String, u32), Vec<u8>>, u32) {
    let mut state = BTreeMap::new();
    for (n, _) in v.list("").unwrap() {
        let mut f = v.open(&n.name, Some(n.version)).unwrap();
        let data = v.read_file(&mut f).unwrap();
        state.insert((n.name.clone(), n.version), data);
    }
    (state, v.free_sectors())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_scavenge_equals_serial(
        ops in proptest::collection::vec(arb_op(), 1..40),
        workers in 2usize..9,
        nt_faults in proptest::collection::vec(any::<u8>(), 0..3),
    ) {
        let mut v = FsdVolume::format(SimDisk::tiny(), config_with(1)).unwrap();
        // Latent flaws on name-table copy A: replica-covered, so the
        // scavenger must salvage identically regardless of worker count.
        let mut plan = FaultPlan::none();
        for &f in &nt_faults {
            plan = plan.with_latent(v.layout().nt_a_sector(u32::from(f) % v.layout().nt_pages));
        }
        v.disk_mut().set_fault_plan(&plan);

        for op in &ops {
            match op {
                Op::Create(n, data) => match v.create(&name(*n), data) {
                    Ok(_) | Err(cedar_fsd::FsdError::NoSpace) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                },
                Op::Delete(n) => match v.delete(&name(*n), None) {
                    Ok(()) | Err(cedar_fsd::FsdError::NotFound(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                },
                Op::Force => v.force().unwrap(),
            }
        }

        // Force the scavenge rung: shut down cleanly, then destroy both
        // log meta replicas so redo has nothing to anchor on.
        v.shutdown().unwrap();
        let (meta_a, meta_b) = (v.layout().log_start, v.layout().log_start + 2);
        let mut serial_disk = v.into_disk();
        serial_disk.damage_sector(meta_a);
        serial_disk.damage_sector(meta_b);
        serial_disk.reboot();
        let mut parallel_disk = serial_disk.clone();
        parallel_disk.reboot();

        let (mut sv, sr) = FsdVolume::boot(serial_disk, config_with(1)).unwrap();
        let (mut pv, pr) = FsdVolume::boot(parallel_disk, config_with(workers)).unwrap();
        prop_assert_eq!(sr.rung, RecoveryRung::Scavenge);
        prop_assert_eq!(pr.rung, RecoveryRung::Scavenge);
        let ss = sr.scavenge.as_ref().expect("serial summary");
        let ps = pr.scavenge.as_ref().expect("parallel summary");
        prop_assert_eq!(ss.leaders_found, ps.leaders_found);
        prop_assert_eq!(ss.files_rebuilt, ps.files_rebuilt);
        prop_assert_eq!(ss.tombstones, ps.tombstones);
        prop_assert_eq!(ss.unreadable_sectors, ps.unreadable_sectors);
        prop_assert_eq!(&ss.losses, &ps.losses);

        sv.verify().unwrap();
        pv.verify().unwrap();
        let (s_state, s_free) = observe(&mut sv);
        let (p_state, p_free) = observe(&mut pv);
        prop_assert_eq!(s_state, p_state);
        prop_assert_eq!(s_free, p_free);
    }
}
