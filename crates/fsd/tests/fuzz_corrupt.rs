//! Corrupted-image property test (§4's robustness claim, pushed past
//! §5.8's failure model): build a live volume, crash or cleanly shut it
//! down, then rot the image out-of-band — byte flips in leader pages,
//! name-table pages, log records, boot/VAM sectors, and label-plane
//! smashes — and boot. Recovery must either land a structurally
//! consistent tree or fail with a typed [`cedar_fsd::FsdError`]; it must
//! never panic, and (because every decoded length is range-checked
//! before it sizes an allocation) never allocate absurdly. When the
//! in-place ladder accepts rotten state, a forced scavenge — which
//! trusts nothing but labels and software-check pages — must still
//! rebuild a verifying tree. Serial and 8-way-parallel scavenges must
//! agree on the outcome.

use cedar_disk::{CpuModel, Label, PageKind, SimDisk};
use cedar_fsd::{FsdConfig, FsdLayout, FsdVolume, RecoveryRung};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config_with(workers: usize) -> FsdConfig {
    FsdConfig {
        nt_pages: 24,
        log_sectors: 160,
        cpu: CpuModel::FREE,
        scavenge_workers: workers,
        ..FsdConfig::default()
    }
}

/// One out-of-band corruption: `(region, sector offset, byte offset,
/// flavor)`. `flavor` picks the xor mask / fake label so shrinking keeps
/// cases minimal.
type Rot = (u8, u16, u16, u8);

/// Sectors in the data area carrying the given label kind — the live
/// structures a blind flip would rarely hit on a mostly-empty volume.
fn live_sectors(disk: &SimDisk, l: &FsdLayout, kind: PageKind) -> Vec<u32> {
    let (start, end) = l.data_area();
    (start..end)
        .filter(|&a| disk.peek_label(a).kind == kind)
        .collect()
}

fn pick(list: &[u32], off: u16) -> Option<u32> {
    if list.is_empty() {
        None
    } else {
        Some(list[usize::from(off) % list.len()])
    }
}

fn apply_rot(disk: &mut SimDisk, l: &FsdLayout, rot: Rot) {
    let (region, off, byteoff, flavor) = rot;
    let xor = flavor | 1; // Never a no-op flip.
    let addr = match region % 7 {
        // Name-table pages: run tables and names rot under intact labels.
        0 => Some(l.nt_a_sector(u32::from(off) % l.nt_pages)),
        // Log records and log meta: redo's own input goes bad.
        1 => Some(l.log_start + u32::from(off) % l.log_sectors),
        // A live leader page: the software-check page itself.
        2 => pick(&live_sectors(disk, l, PageKind::Leader), off),
        // A live data page: committed file content.
        3 => pick(&live_sectors(disk, l, PageKind::Data), off),
        // Boot page A: the spare map and VAM-validity hints.
        4 => Some(l.boot_a),
        // Saved VAM copy A.
        5 => Some(l.vam_a + u32::from(off) % l.vam_sectors),
        // The self-certifying plane itself: a wild label on a live page.
        _ => {
            let kinds = [
                PageKind::Free,
                PageKind::Leader,
                PageKind::Data,
                PageKind::NameTable,
                PageKind::Log,
                PageKind::Boot,
                PageKind::Header,
            ];
            let kind = if flavor % 2 == 0 {
                PageKind::Leader
            } else {
                PageKind::Data
            };
            let fake = kinds[usize::from(flavor) % kinds.len()];
            if let Some(a) = pick(&live_sectors(disk, l, kind), off) {
                let label = Label::new(
                    u64::from(flavor).wrapping_mul(0x9E37),
                    u32::from(byteoff),
                    fake,
                );
                disk.corrupt_label(a, label);
            }
            return;
        }
    };
    if let Some(a) = addr {
        disk.corrupt_byte(a, usize::from(byteoff), xor);
    }
}

/// Listing plus per-file read *outcomes* (content, or "typed error") —
/// reads over rotten sectors may fail, but they must fail typed and
/// identically across worker counts.
type Observed = BTreeMap<(String, u32), Option<Vec<u8>>>;

fn observe(v: &mut FsdVolume) -> Result<(Observed, u32), TestCaseError> {
    let listing = match v.list("") {
        Ok(l) => l,
        Err(e) => return Err(TestCaseError::fail(format!("list after verify: {e}"))),
    };
    let mut state = Observed::new();
    for (n, _) in listing {
        let content = v
            .open(&n.name, Some(n.version))
            .and_then(|mut f| v.read_file(&mut f))
            .ok();
        state.insert((n.name.clone(), n.version), content);
    }
    Ok((state, v.free_sectors()))
}

/// Boots the rotten image and walks the ladder to a verdict:
/// `Ok(Some(state))` — a structurally consistent tree (possibly after a
/// forced scavenge when the in-place rungs accepted or rejected rotten
/// state); `Ok(None)` — recovery refused the image with a typed error
/// end to end. Panics and post-scavenge inconsistency are test failures.
fn recover(disk: &SimDisk, workers: usize) -> Result<Option<(Observed, u32)>, TestCaseError> {
    let mut first = disk.clone();
    first.reboot();
    if let Ok((mut v, _report)) = FsdVolume::boot(first, config_with(workers)) {
        if v.verify().is_ok() {
            return observe(&mut v).map(Some);
        }
        // The fast rungs decoded rotten-but-plausible state (§5.8 calls
        // this the "malicious crash" class); fall through to the rung
        // that rebuilds from labels alone.
    }
    forced_scavenge(disk, workers)
}

/// Destroys both log-meta replicas so redo has nothing to anchor on and
/// the ladder must bottom out in a full scavenge over the rotten image.
/// If the scavenger accepts the volume, the tree it built must verify —
/// it trusted nothing but labels and software-check pages, so rot can
/// cost files (recorded as losses) but never consistency.
fn forced_scavenge(
    disk: &SimDisk,
    workers: usize,
) -> Result<Option<(Observed, u32)>, TestCaseError> {
    let cfg = config_with(workers);
    let meta_a = FsdLayout::compute(disk.geometry(), cfg.nt_pages, cfg.log_sectors).log_start;
    let mut scav = disk.clone();
    scav.damage_sector(meta_a);
    scav.damage_sector(meta_a + 2);
    scav.reboot();
    match FsdVolume::boot(scav, cfg) {
        Ok((mut v, report)) => {
            prop_assert_eq!(report.rung, RecoveryRung::Scavenge);
            if let Err(e) = v.verify() {
                return Err(TestCaseError::fail(format!(
                    "scavenge accepted an inconsistent tree: {e}"
                )));
            }
            observe(&mut v).map(Some)
        }
        // A typed refusal (e.g. both boot pages rotten) is a legitimate
        // end state — the volume is telling the operator it needs help.
        Err(_) => Ok(None),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn corrupted_images_recover_or_fail_typed(
        seeds in proptest::collection::vec((0u8..12, 1usize..900), 1..8),
        rots in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 1..6),
        clean_shutdown in any::<bool>(),
    ) {
        let mut v = FsdVolume::format(SimDisk::tiny(), config_with(1)).unwrap();
        for &(n, len) in &seeds {
            let data = vec![n.wrapping_mul(37); len];
            match v.create(&format!("file{n:02}"), &data) {
                Ok(_) | Err(cedar_fsd::FsdError::NoSpace) => {}
                Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
            }
        }
        v.force().unwrap();
        // Leave an uncommitted tail so the log holds live records.
        match v.create("tail00", &[9u8; 700]) {
            Ok(_) | Err(cedar_fsd::FsdError::NoSpace) => {}
            Err(e) => return Err(TestCaseError::fail(format!("tail create: {e}"))),
        }
        if clean_shutdown {
            v.shutdown().unwrap();
        } else {
            v.disk_mut().crash_now();
        }

        let layout = *v.layout();
        let mut disk = v.into_disk();
        for &rot in &rots {
            apply_rot(&mut disk, &layout, rot);
        }

        // The in-place ladder, serial vs parallel.
        let serial = recover(&disk, 1)?;
        let parallel = recover(&disk, 8)?;
        prop_assert_eq!(serial, parallel);

        // And the bottom rung unconditionally: every rotten image must
        // survive a full scavenge, whatever the fast rungs thought.
        let s_scav = forced_scavenge(&disk, 1)?;
        let p_scav = forced_scavenge(&disk, 8)?;
        prop_assert_eq!(s_scav, p_scav);
    }
}
