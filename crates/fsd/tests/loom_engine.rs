//! Model-checked epoch hand-off for the threaded FSD engine.
//!
//! Built only under `--features loom`, which swaps the engine's
//! `crate::sync` re-exports for the in-tree model checker's shims:
//!
//! ```text
//! cargo test -p cedar-fsd --features loom --test loom_engine
//! ```
//!
//! Each test runs a tiny engine workload under [`loom::Model`], which
//! enumerates thread interleavings (every lock, condvar, atomic, spawn,
//! and join is a scheduling point) depth-first with a preemption bound.
//! The properties checked are the ones a stress test can only sample:
//!
//! * **enqueue → force → publish → wake**: an acknowledged create is
//!   readable by its client and, after join, by everyone — in every
//!   explored schedule, including the ones where the writer wakes
//!   before/after the client parks on its slot.
//! * **shutdown drain**: shutdown completes queued work, never
//!   deadlocks against the writer, and hands back a volume holding
//!   every acknowledged file.
//! * **poison on crash**: a disk power-fail during a force poisons the
//!   engine (later submissions fail fast) in every schedule, and
//!   shutdown still returns the volume.
//!
//! The schedule caps below bound CI time; the model prints a note when
//! a cap truncates exploration rather than silently passing.

#![cfg(feature = "loom")]

use cedar_disk::{CpuModel, CrashPlan, SimDisk};
use cedar_fsd::engine::{EngineConfig, FsdEngine};
use cedar_fsd::volume::FsdVolume;
use cedar_fsd::FsdConfig;
use cedar_vol::fs::{FileSystem, FsBackend};
use std::sync::Arc;

fn small_vol() -> FsdVolume {
    FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Small shard/batch bounds keep per-schedule work low; pacing must be
/// off so wall-clock time is never a scheduling concern.
fn small_cfg() -> EngineConfig {
    EngineConfig {
        max_batch_ops: 4,
        shards: 1,
        cache_entries_per_shard: 8,
        pace_scale: None,
    }
}

#[test]
fn epoch_handoff_acknowledged_create_is_readable() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let e = Arc::new(FsdEngine::start(small_vol(), small_cfg()).unwrap());
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            // Acknowledge means the epoch forced: the write must be
            // readable by its own submitter immediately (read-your-
            // writes through the published COW index).
            e2.create("a", b"payload").unwrap();
            assert_eq!(e2.read("a").unwrap(), b"payload");
        });
        client.join().unwrap();
        // After the client joined, the publish must be visible to any
        // other thread too.
        assert_eq!(e.read("a").unwrap(), b"payload");
        let mut vol = FsdEngine::shutdown_arc(e).unwrap();
        assert_eq!(FsBackend::read(&mut vol, "a").unwrap(), b"payload");
    });
}

#[test]
fn two_clients_epochs_merge_without_loss() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let e = Arc::new(FsdEngine::start(small_vol(), small_cfg()).unwrap());
        let hs: Vec<_> = [("c0/f", b"zero".as_slice()), ("c1/f", b"one".as_slice())]
            .into_iter()
            .map(|(name, data)| {
                let e = Arc::clone(&e);
                loom::thread::spawn(move || {
                    e.create(name, data).unwrap();
                    assert_eq!(e.read(name).unwrap(), data);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        // Whatever order the two epochs committed in, neither write may
        // shadow the other in the published index.
        assert_eq!(e.read("c0/f").unwrap(), b"zero");
        assert_eq!(e.read("c1/f").unwrap(), b"one");
        drop(e);
    });
}

#[test]
fn shutdown_drains_and_returns_every_acknowledged_file() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let e = Arc::new(FsdEngine::start(small_vol(), small_cfg()).unwrap());
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            e2.create("d/x", b"1").unwrap();
            e2.create("d/y", b"22").unwrap();
        });
        client.join().unwrap();
        // Shutdown must drain (both acknowledged creates durable) and
        // must not deadlock against the writer's wake protocol in any
        // schedule.
        let mut vol = FsdEngine::shutdown_arc(e).unwrap();
        assert_eq!(FsBackend::list(&mut vol, "d/").unwrap().len(), 2);
        assert!(vol.verify().is_ok());
    });
}

#[test]
fn crash_during_force_poisons_in_every_schedule() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let mut vol = small_vol();
        // The very next durable sector write power-fails the disk, so
        // the first epoch's force reports the crash.
        vol.disk_mut().schedule_crash(CrashPlan {
            after_sector_writes: 0,
            damaged_tail: 1,
        });
        let e = Arc::new(FsdEngine::start(vol, small_cfg()).unwrap());
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            // The op's epoch never commits: the submitter gets the
            // crash error back, never a false Ok.
            assert!(e2.create("doomed", b"x").is_err());
        });
        client.join().unwrap();
        // The crash must have poisoned the engine — fail-fast, with no
        // schedule where a later submission sneaks through.
        assert!(e.poisoned().is_some());
        assert!(e.create("late", b"y").is_err());
        // The writer reports the error rather than dying: shutdown
        // still hands the volume back.
        assert!(FsdEngine::shutdown_arc(e).is_ok());
    });
}
