//! Property test: for *any* operation stream, *any* crash point, and *any*
//! replica-covered media-fault plan, FSD recovers to a group-commit
//! boundary — the recovered name table equals the model at the last
//! completed force (or the force in flight, if its whole group landed),
//! every surviving version's content is intact, the tree is structurally
//! consistent, and the reconstructed VAM agrees with the name table.
//!
//! The fault plans stick to latent and transient flaws on *replicated or
//! retried* sectors (name-table copy A, log data area, VAM copy A, boot
//! page A): §5.8's failure model says those never cost data, so they must
//! not change which boundary recovery lands on. Grown defects and
//! both-copies-lost cases escalate the recovery ladder and are enumerated
//! systematically by the `fault_campaign` bench instead.

use cedar_disk::{CpuModel, CrashPlan, FaultPlan, IoPolicy, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config_with(io_policy: IoPolicy) -> FsdConfig {
    FsdConfig {
        nt_pages: 24,
        log_sectors: 160,
        cpu: CpuModel::FREE,
        io_policy,
        ..FsdConfig::default()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Create(u8, Vec<u8>),
    Delete(u8),
    Force,
    Idle,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..16, proptest::collection::vec(any::<u8>(), 0..1500))
            .prop_map(|(n, d)| Op::Create(n, d)),
        2 => (0u8..16).prop_map(Op::Delete),
        1 => Just(Op::Force),
        1 => Just(Op::Idle),
    ]
}

/// A media fault aimed at a replica-covered region: `(region, offset,
/// latent)` resolves against the volume layout once it exists. `latent`
/// false means a transient read fault (one extra revolution).
type FaultSpec = (u8, u8, bool);

fn resolve_faults(v: &FsdVolume, specs: &[FaultSpec]) -> FaultPlan {
    let l = *v.layout();
    let mut plan = FaultPlan::none();
    for &(region, offset, latent) in specs {
        let addr = match region % 4 {
            0 => l.nt_a_sector(u32::from(offset) % l.nt_pages),
            1 => l.log_start + 3 + u32::from(offset) % (l.log_sectors - 3),
            2 => l.vam_a + u32::from(offset) % l.vam_sectors,
            _ => l.boot_a,
        };
        plan = if latent {
            plan.with_latent(addr)
        } else {
            plan.with_transient(addr, 1 + offset % 2)
        };
    }
    plan
}

/// name → stack of version contents (bottom = version 1).
type Model = BTreeMap<String, Vec<Vec<u8>>>;

fn name(n: u8) -> String {
    format!("file{n:02}")
}

/// Does the recovered volume exactly match `model` (names, versions,
/// contents)?
fn matches_model(v: &mut FsdVolume, model: &Model) -> bool {
    let listing = match v.list("") {
        Ok(l) => l,
        Err(_) => return false,
    };
    let mut want: Vec<(String, u32)> = Vec::new();
    for (n, stack) in model {
        // Versions are contiguous only if no deletes happened; deletes pop
        // the newest, so versions present are 1..=len after creates-only,
        // but create-after-delete reuses max+1. The model tracks contents
        // only; compare counts and contents newest-down instead of exact
        // version numbers.
        want.push((n.clone(), stack.len() as u32));
    }
    let mut got: BTreeMap<String, u32> = BTreeMap::new();
    for (n, _) in &listing {
        *got.entry(n.name.clone()).or_insert(0) += 1;
    }
    if got.len() != want.len() {
        return false;
    }
    for (n, count) in &want {
        if got.get(n) != Some(count) {
            return false;
        }
    }
    // Contents: walk each name's versions in order and compare.
    for (n, stack) in model {
        let mut versions: Vec<u32> = listing
            .iter()
            .filter(|(ln, _)| &ln.name == n)
            .map(|(ln, _)| ln.version)
            .collect();
        versions.sort_unstable();
        for (i, ver) in versions.iter().enumerate() {
            let mut f = match v.open(n, Some(*ver)) {
                Ok(f) => f,
                Err(_) => return false,
            };
            match v.read_file(&mut f) {
                Ok(got) => {
                    if got != stack[i] {
                        return false;
                    }
                }
                Err(_) => return false,
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn recovery_lands_on_a_commit_boundary(
        ops in proptest::collection::vec(arb_op(), 1..50),
        crash_after in 0u64..300,
        faults in proptest::collection::vec(
            (0u8..4, any::<u8>(), any::<bool>()), 0..4),
    ) {
        // Half the cases crash a C-SCAN-scheduled write stream, half the
        // in-order baseline — recovery must land on a boundary either way.
        let policy = if crash_after % 2 == 0 {
            IoPolicy::Cscan
        } else {
            IoPolicy::InOrder
        };
        let mut v = FsdVolume::format(SimDisk::tiny(), config_with(policy)).unwrap();
        // Media flaws develop under the workload and under recovery; the
        // flags persist across the crash, so whichever path touches the
        // sector first discovers the fault.
        let plan = resolve_faults(&v, &faults);
        v.disk_mut().set_fault_plan(&plan);
        let mut committed: Model = Model::new(); // At the last force.
        let mut previous: Model = Model::new();  // At the force before.
        let mut live: Model = Model::new();      // Uncommitted truth.
        v.disk_mut().schedule_crash(CrashPlan {
            after_sector_writes: crash_after,
            damaged_tail: (crash_after % 3) as u8,
        });

        let mut crashed = false;
        for op in &ops {
            let r = match op {
                Op::Create(n, data) => match v.create(&name(*n), data) {
                    Ok(_) => {
                        live.entry(name(*n)).or_default().push(data.clone());
                        Ok(())
                    }
                    Err(cedar_fsd::FsdError::NoSpace) => Ok(()), // Tiny volume filled up.
                    Err(e) => Err(e),
                },
                Op::Delete(n) => match v.delete(&name(*n), None) {
                    Ok(()) => {
                        let empty = {
                            let stack = live.entry(name(*n)).or_default();
                            stack.pop();
                            stack.is_empty()
                        };
                        if empty {
                            live.remove(&name(*n));
                        }
                        Ok(())
                    }
                    Err(cedar_fsd::FsdError::NotFound(_)) => Ok(()),
                    Err(e) => Err(e),
                },
                Op::Force => v.force().map(|()| {
                    previous = committed.clone();
                    committed = live.clone();
                }),
                Op::Idle => v.advance_time(600_000).map(|()| {
                    previous = committed.clone();
                    committed = live.clone();
                }),
            };
            if let Err(e) = r {
                prop_assert!(e.is_crash(), "non-crash failure: {e}");
                crashed = true;
                break;
            }
        }
        if !crashed {
            v.disk_mut().crash_now();
        }

        let mut disk = v.into_disk();
        disk.reboot();
        let (mut v2, report) = FsdVolume::boot(disk, config_with(policy)).unwrap();
        // The VAM is reconstructed unless the crash beat the very first
        // mutation's hint-invalidation write to the disk — in which case
        // the saved VAM is still accurate and loading it is correct.
        let _ = report;
        v2.verify().unwrap();

        // The recovered state must equal one of: the last commit, the one
        // before (crash tore the in-flight force), or the live state (the
        // in-flight force's whole group landed just before the crash).
        let ok = matches_model(&mut v2, &committed)
            || matches_model(&mut v2, &previous)
            || matches_model(&mut v2, &live);
        prop_assert!(
            ok,
            "recovered state matches no commit boundary; committed={:?} live={:?} recovered={:?}",
            committed.keys().collect::<Vec<_>>(),
            live.keys().collect::<Vec<_>>(),
            v2.list("").unwrap().iter().map(|(n, _)| n.to_string()).collect::<Vec<_>>()
        );

        // The reconstructed VAM agrees with the name table: new files can
        // be created without trampling surviving ones.
        let survivors: Vec<(String, u32)> = v2
            .list("")
            .unwrap()
            .iter()
            .map(|(n, _)| (n.name.clone(), n.version))
            .collect();
        let mut survivor_data: BTreeMap<(String, u32), Vec<u8>> = BTreeMap::new();
        for (n, ver) in &survivors {
            let mut f = v2.open(n, Some(*ver)).unwrap();
            survivor_data.insert((n.clone(), *ver), v2.read_file(&mut f).unwrap());
        }
        let filler = vec![0xEE; 700];
        for i in 0..20 {
            if v2.create(&format!("post{i:02}"), &filler).is_err() {
                break;
            }
        }
        for ((n, ver), want) in &survivor_data {
            let mut f = v2.open(n, Some(*ver)).unwrap();
            prop_assert_eq!(&v2.read_file(&mut f).unwrap(), want);
        }
        v2.verify().unwrap();
    }
}
