//! FSD volume behaviour: the paper's operational claims, tested one by
//! one against the public API.

use cedar_disk::{CpuModel, SimDisk};
use cedar_fsd::{EntryKind, FsdConfig, FsdError, FsdVolume};

fn config() -> FsdConfig {
    FsdConfig {
        nt_pages: 16,
        log_sectors: 128,
        cpu: CpuModel::FREE,
        ..FsdConfig::default()
    }
}

fn tiny() -> FsdVolume {
    FsdVolume::format(SimDisk::tiny(), config()).unwrap()
}

#[test]
fn create_open_read_roundtrip() {
    let mut v = tiny();
    let data = b"hello fsd".to_vec();
    v.create("memo.txt", &data).unwrap();
    let mut f = v.open("memo.txt", None).unwrap();
    assert_eq!(f.name.version, 1);
    assert_eq!(f.byte_size(), data.len() as u64);
    assert_eq!(v.read_file(&mut f).unwrap(), data);
}

#[test]
fn versions_accumulate_and_resolve() {
    let mut v = tiny();
    v.create("f", b"one").unwrap();
    v.create("f", b"two").unwrap();
    let mut newest = v.open("f", None).unwrap();
    assert_eq!(newest.name.version, 2);
    assert_eq!(v.read_file(&mut newest).unwrap(), b"two");
    let mut old = v.open("f", Some(1)).unwrap();
    assert_eq!(v.read_file(&mut old).unwrap(), b"one");
}

#[test]
fn empty_file_has_leader_only() {
    let mut v = tiny();
    v.create("empty", b"").unwrap();
    let mut f = v.open("empty", None).unwrap();
    assert_eq!(f.pages(), 0);
    assert_eq!(v.read_file(&mut f).unwrap(), b"");
    assert_ne!(f.entry.leader_addr, 0);
}

#[test]
fn multi_page_roundtrip_and_page_reads() {
    let mut v = tiny();
    let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    v.create("big", &data).unwrap();
    let mut f = v.open("big", None).unwrap();
    assert_eq!(f.pages(), 6);
    assert_eq!(v.read_file(&mut f).unwrap(), data);
    let p2 = v.read_page(&mut f, 2).unwrap();
    assert_eq!(&p2[..], &data[1024..1536]);
    assert!(matches!(
        v.read_page(&mut f, 6),
        Err(FsdError::OutOfRange { .. })
    ));
}

#[test]
fn create_costs_one_synchronous_io() {
    // "A file create typically does one I/O synchronously: the
    // combination of the write of the leader and data pages." (§4)
    let mut v = tiny();
    v.create("warm", b"w").unwrap(); // Warm the name-table cache.
    let before = v.disk_stats();
    v.create("one-byte", b"x").unwrap();
    let delta = v.disk_stats().since(&before);
    assert_eq!(delta.total_ops(), 1, "{delta:?}");
    assert_eq!(delta.writes, 1);
    assert_eq!(delta.sectors_written, 2); // Leader + one data page.
}

#[test]
fn open_does_no_io() {
    let mut v = tiny();
    v.create("f", b"data").unwrap();
    let before = v.disk_stats();
    v.open("f", None).unwrap();
    let delta = v.disk_stats().since(&before);
    assert_eq!(delta.total_ops(), 0, "{delta:?}");
}

#[test]
fn delete_does_no_synchronous_io() {
    let mut v = tiny();
    v.create("f", &vec![1u8; 2048]).unwrap();
    let before = v.disk_stats();
    v.delete("f", None).unwrap();
    let delta = v.disk_stats().since(&before);
    assert_eq!(delta.total_ops(), 0, "{delta:?}");
    assert!(matches!(v.open("f", None), Err(FsdError::NotFound(_))));
}

#[test]
fn list_needs_no_per_file_io_and_returns_properties() {
    let mut v = tiny();
    for i in 0..20 {
        v.create(&format!("dir/f{i:02}"), &vec![0u8; 512 * (i % 3 + 1)])
            .unwrap();
    }
    let before = v.disk_stats();
    let l = v.list("dir/").unwrap();
    let delta = v.disk_stats().since(&before);
    assert_eq!(l.len(), 20);
    assert_eq!(l[0].1.byte_size, 512);
    assert_eq!(delta.total_ops(), 0, "{delta:?}");
}

#[test]
fn deleted_pages_not_reusable_until_commit() {
    // §5.5: "the pages are not really free until the delete is
    // committed... Pages in deleted files are kept in a shadow bitmap."
    let mut v = tiny();
    v.create("f", &vec![1u8; 4096]).unwrap();
    let free_after_create = v.free_sectors();
    v.delete("f", None).unwrap();
    assert_eq!(v.free_sectors(), free_after_create);
    v.force().unwrap();
    assert_eq!(v.free_sectors(), free_after_create + 9); // Leader + 8 data.
}

#[test]
fn group_commit_batches_many_updates_into_one_force() {
    let mut v = tiny();
    for i in 0..10 {
        v.create(&format!("f{i}"), b"x").unwrap();
    }
    let stats0 = v.commit_stats();
    v.force().unwrap();
    let stats = v.commit_stats();
    assert_eq!(stats.forces - stats0.forces, 1);
    // All ten creates' metadata rode in that one force.
    assert!(stats.images_logged > stats0.images_logged);
}

#[test]
fn commit_daemon_fires_on_interval() {
    let mut v = tiny();
    v.create("f", b"x").unwrap();
    let forces0 = v.commit_stats().forces;
    // Half a second of idle time passes; the next operation triggers the
    // deferred force.
    v.advance_time(600_000).unwrap();
    assert_eq!(v.commit_stats().forces, forces0 + 1);
}

#[test]
fn one_property_update_is_a_seven_sector_record() {
    // §5.4: "If this were the only update during a group commit period,
    // then it would be recorded as a one data page record. This is logged
    // in seven 512 byte sectors."
    let mut v = tiny();
    v.create_cached("[srv]cached.doc", b"remote bytes").unwrap();
    v.force().unwrap();
    let s0 = v.commit_stats();
    // Open updates only the last-used-time in one name-table sector.
    let f = v.open("[srv]cached.doc", None).unwrap();
    assert!(matches!(f.entry.kind, EntryKind::CachedRemote { .. }));
    v.force().unwrap();
    let s1 = v.commit_stats();
    assert_eq!(s1.records - s0.records, 1);
    assert_eq!(s1.images_logged - s0.images_logged, 1);
    assert_eq!(s1.log_sectors_written - s0.log_sectors_written, 7);
}

#[test]
fn leader_verified_on_first_access_piggybacked() {
    let mut v = tiny();
    v.create("f", b"abc").unwrap();
    let mut f = v.open("f", None).unwrap();
    let before = v.disk_stats();
    let data = v.read_page(&mut f, 0).unwrap();
    let delta = v.disk_stats().since(&before);
    assert_eq!(&data[..3], b"abc");
    // Leader + data page 0 in ONE transfer (§5.7).
    assert_eq!(delta.reads, 1);
    assert_eq!(delta.sectors_read, 2);
    // Second read: leader already verified, single sector.
    let before = v.disk_stats();
    v.read_page(&mut f, 0).unwrap();
    assert_eq!(v.disk_stats().since(&before).sectors_read, 1);
}

#[test]
fn corrupted_leader_caught_by_software_check() {
    let mut v = tiny();
    v.create("f", b"abc").unwrap();
    v.shutdown().unwrap();
    let mut f = v.open("f", None).unwrap();
    let leader_addr = f.entry.leader_addr;
    v.disk_mut().wild_write(leader_addr, 0x55);
    assert!(matches!(v.read_page(&mut f, 0), Err(FsdError::Check(_))));
}

#[test]
fn write_page_persists() {
    let mut v = tiny();
    v.create("f", &vec![0u8; 1024]).unwrap();
    let mut f = v.open("f", None).unwrap();
    v.write_page(&mut f, 1, &[9u8; 512]).unwrap();
    assert_eq!(v.read_page(&mut f, 1).unwrap(), vec![9u8; 512]);
}

#[test]
fn extend_and_truncate_roundtrip() {
    let mut v = tiny();
    v.create("f", &vec![7u8; 1024]).unwrap();
    let mut f = v.open("f", None).unwrap();
    v.extend(&mut f, 3).unwrap();
    assert_eq!(f.pages(), 5);
    v.write_page(&mut f, 4, &[3u8; 512]).unwrap();
    assert_eq!(v.read_page(&mut f, 4).unwrap(), vec![3u8; 512]);
    // Reopen: the entry in the name table reflects the extension.
    let f2 = v.open("f", None).unwrap();
    assert_eq!(f2.pages(), 5);
    v.truncate(&mut f, 1).unwrap();
    assert_eq!(f.pages(), 1);
    let f3 = v.open("f", None).unwrap();
    assert_eq!(f3.pages(), 1);
    assert_eq!(f3.byte_size(), 512);
}

#[test]
fn extended_file_leader_still_verifies() {
    let mut v = tiny();
    v.create("f", &vec![7u8; 512]).unwrap();
    let mut f = v.open("f", None).unwrap();
    v.extend(&mut f, 2).unwrap();
    // Fresh handle: leader check must pass against the *new* run table,
    // even before the new leader image reaches the disk.
    let mut f2 = v.open("f", None).unwrap();
    assert_eq!(v.read_page(&mut f2, 0).unwrap(), vec![7u8; 512]);
    // After shutdown the leader is home; verify from disk too.
    v.shutdown().unwrap();
    let mut f3 = v.open("f", None).unwrap();
    assert_eq!(v.read_page(&mut f3, 0).unwrap(), vec![7u8; 512]);
}

#[test]
fn symlink_entries_roundtrip() {
    let mut v = tiny();
    v.create_symlink("link", "[server]<dir>real.file!3")
        .unwrap();
    let f = v.open("link", None).unwrap();
    match &f.entry.kind {
        EntryKind::SymLink { target } => assert_eq!(target, "[server]<dir>real.file!3"),
        k => panic!("wrong kind {k:?}"),
    }
    let mut f = f;
    assert!(matches!(v.read_file(&mut f), Err(FsdError::WrongKind(_))));
}

#[test]
fn survives_clean_shutdown_and_boot() {
    let mut v = tiny();
    v.create("persist", b"forever").unwrap();
    let free = {
        v.force().unwrap();
        v.free_sectors()
    };
    v.shutdown().unwrap();
    let (mut v2, report) = FsdVolume::boot(v.into_disk(), config()).unwrap();
    assert!(!report.vam_reconstructed, "clean shutdown saved the VAM");
    assert_eq!(v2.free_sectors(), free);
    let mut f = v2.open("persist", None).unwrap();
    assert_eq!(v2.read_file(&mut f).unwrap(), b"forever");
    v2.verify().unwrap();
}

#[test]
fn uids_unique_across_boots() {
    let mut v = tiny();
    let f1 = v.create("a", b"1").unwrap();
    v.shutdown().unwrap();
    let (mut v2, _) = FsdVolume::boot(v.into_disk(), config()).unwrap();
    let f2 = v2.create("b", b"2").unwrap();
    assert_ne!(f1.entry.uid, f2.entry.uid);
}

#[test]
fn many_files_split_the_tree_and_survive_reboot() {
    let mut v = tiny();
    for i in 0..120 {
        v.create(&format!("dir/file{i:03}"), &vec![(i % 251) as u8; 512])
            .unwrap();
    }
    v.verify().unwrap();
    v.shutdown().unwrap();
    let (mut v2, _) = FsdVolume::boot(v.into_disk(), config()).unwrap();
    v2.verify().unwrap();
    assert_eq!(v2.list("dir/").unwrap().len(), 120);
    let mut f = v2.open("dir/file077", None).unwrap();
    assert_eq!(v2.read_file(&mut f).unwrap(), vec![77u8; 512]);
}

#[test]
fn nt_page_damage_in_one_copy_is_transparent() {
    let mut v = tiny();
    for i in 0..40 {
        v.create(&format!("f{i:02}"), b"x").unwrap();
    }
    v.shutdown().unwrap();
    let mut disk = v.into_disk();
    // Damage several sectors of name-table copy A.
    let layout = cedar_fsd::FsdLayout::compute(disk.geometry(), 16, 128);
    for p in 0..4 {
        disk.damage_sector(layout.nt_a_sector(p));
    }
    let (mut v2, _) = FsdVolume::boot(disk, config()).unwrap();
    v2.verify().unwrap();
    assert_eq!(v2.list("").unwrap().len(), 40);
}

#[test]
fn boot_page_damage_falls_back_to_replica() {
    let mut v = tiny();
    v.create("f", b"x").unwrap();
    v.shutdown().unwrap();
    let mut disk = v.into_disk();
    disk.damage_sector(0); // Boot copy A.
    let (mut v2, _) = FsdVolume::boot(disk, config()).unwrap();
    assert!(v2.open("f", None).is_ok());
}

#[test]
fn vam_save_damage_falls_back_to_replica() {
    let mut v = tiny();
    v.create("f", &vec![1u8; 1024]).unwrap();
    v.shutdown().unwrap();
    let free = v.free_sectors();
    let layout = *v.layout();
    let mut disk = v.into_disk();
    disk.damage_sector(layout.vam_a);
    let (v2, report) = FsdVolume::boot(disk, config()).unwrap();
    assert!(!report.vam_reconstructed);
    assert_eq!(v2.free_sectors(), free);
}

#[test]
fn keep_prunes_old_versions_on_create() {
    let mut v = tiny();
    v.create("doc", b"v1").unwrap();
    v.set_keep("doc", 2).unwrap();
    for i in 2..=6 {
        v.create("doc", format!("v{i}").as_bytes()).unwrap();
    }
    // Keep = 2: only versions 5 and 6 remain.
    let versions: Vec<u32> = v
        .list("doc")
        .unwrap()
        .into_iter()
        .map(|(n, _)| n.version)
        .collect();
    assert_eq!(versions, vec![5, 6]);
    assert!(v.open("doc", Some(4)).is_err());
    let mut newest = v.open("doc", None).unwrap();
    assert_eq!(v.read_file(&mut newest).unwrap(), b"v6");
    // The pruned versions' pages come back after the commit.
    let free_before = v.free_sectors();
    v.force().unwrap();
    assert!(v.free_sectors() >= free_before);
    v.verify().unwrap();
}

#[test]
fn keep_zero_retains_all_versions() {
    let mut v = tiny();
    for i in 1..=5 {
        v.create("doc", format!("v{i}").as_bytes()).unwrap();
    }
    assert_eq!(v.list("doc").unwrap().len(), 5);
}

#[test]
fn keep_is_inherited_by_new_versions() {
    let mut v = tiny();
    v.create("doc", b"v1").unwrap();
    v.set_keep("doc", 1).unwrap();
    v.create("doc", b"v2").unwrap();
    let newest = v.open("doc", None).unwrap();
    assert_eq!(newest.entry.keep, 1);
    assert_eq!(v.list("doc").unwrap().len(), 1, "only the newest survives");
}

#[test]
fn set_keep_on_missing_file_errors() {
    let mut v = tiny();
    assert!(matches!(v.set_keep("ghost", 3), Err(FsdError::NotFound(_))));
}

#[test]
fn bounded_cache_evicts_clean_pages_and_stays_correct() {
    let mut v = FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            cache_pages: 6,
            ..FsdConfig::default()
        },
    )
    .unwrap();
    for i in 0..120 {
        v.create(&format!("dir/file{i:03}"), &vec![(i % 251) as u8; 600])
            .unwrap();
    }
    v.force().unwrap();
    // Everything is still reachable and correct through the tiny cache.
    v.verify().unwrap();
    for i in (0..120).step_by(7) {
        let mut f = v.open(&format!("dir/file{i:03}"), None).unwrap();
        assert_eq!(v.read_file(&mut f).unwrap(), vec![(i % 251) as u8; 600]);
    }
    // Unpin everything (write homes), then trigger an eviction sweep:
    // the cache shrinks to capacity and re-reads cost I/O again.
    v.shutdown().unwrap();
    v.create("dir/trigger", b"x").unwrap();
    let before = v.disk_stats();
    v.list("dir/").unwrap();
    assert!(
        v.disk_stats().since(&before).reads > 0,
        "a 6-page cache cannot hold the whole name table"
    );
    // ...and crash recovery still works with a bounded cache.
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (mut v2, _) = FsdVolume::boot(
        d,
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            cache_pages: 6,
            ..FsdConfig::default()
        },
    )
    .unwrap();
    v2.verify().unwrap();
    assert_eq!(v2.list("dir/").unwrap().len(), 120);
}

#[test]
fn bounded_cache_never_evicts_dirty_pages() {
    let mut v = FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            cache_pages: 4,
            // Never auto-force: dirty pages must survive in the cache.
            commit_interval_us: u64::MAX / 2,
            ..FsdConfig::default()
        },
    )
    .unwrap();
    for i in 0..60 {
        v.create(&format!("f{i:02}"), b"pin me").unwrap();
    }
    // Nothing forced yet: all updates still uncommitted, yet intact.
    for i in 0..60 {
        let mut f = v.open(&format!("f{i:02}"), None).unwrap();
        assert_eq!(v.read_file(&mut f).unwrap(), b"pin me");
    }
    v.force().unwrap();
    v.verify().unwrap();
}
