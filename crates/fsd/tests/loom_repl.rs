//! Model-checked log-writer → shipper epoch hand-off (ISSUE 10,
//! satellite 3).
//!
//! Built only under `--features loom` (same harness as
//! `loom_engine.rs`):
//!
//! ```text
//! cargo test -p cedar-fsd --features loom --test loom_repl
//! ```
//!
//! The property under check is the acknowledgement-ordering contract of
//! the replication modes: **a client is never released before the
//! mode's durability point**, in every explored interleaving of the
//! client, the log-writer, and the shipper — including schedules where
//! the shipper runs ahead, lags an entire epoch, or meets a partition
//! mid-force:
//!
//! * **sync hand-off**: when `create` returns `Ok`, the frame carrying
//!   it is already *applied* on the replica (`applied_high` covers it),
//!   in every schedule of the three threads.
//! * **partition during force**: with the link forced down while an
//!   epoch is committing, the client must observe the retryable `Link`
//!   error (never a false `Ok`), and the frame stays queued — healing
//!   and kicking the shipper ships it, in order, in every schedule.
//! * **shutdown drain**: `shutdown_replicated` never deadlocks against
//!   the writer/shipper pair, and the replica it returns has applied
//!   every acknowledged frame.

#![cfg(feature = "loom")]

use cedar_disk::{CpuModel, SimDisk};
use cedar_fsd::engine::{EngineConfig, FsdEngine};
use cedar_fsd::volume::FsdVolume;
use cedar_fsd::{FsdConfig, ReplMode, ShipperConfig};
use cedar_vol::fs::FileSystem;
use std::sync::Arc;

fn small_vol() -> FsdVolume {
    FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

fn small_fsd_cfg() -> FsdConfig {
    FsdConfig {
        nt_pages: 96,
        log_sectors: 256,
        cpu: CpuModel::FREE,
        ..Default::default()
    }
}

fn small_cfg() -> EngineConfig {
    EngineConfig {
        max_batch_ops: 4,
        shards: 1,
        cache_entries_per_shard: 8,
        pace_scale: None,
    }
}

/// A zero-latency, unlimited-bandwidth link so the only variability the
/// model explores is thread scheduling, never simulated time.
fn instant_link(mode: ReplMode) -> ShipperConfig {
    let mut ship = ShipperConfig::for_mode(mode);
    ship.link.latency_us = 0;
    ship.link.bytes_per_sec = 0;
    ship.retry_attempts = 1;
    ship.backoff_us = 1;
    ship
}

#[test]
fn sync_ack_never_precedes_replica_apply() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let e = Arc::new(
            FsdEngine::start_replicated(
                small_vol(),
                small_cfg(),
                small_fsd_cfg(),
                instant_link(ReplMode::Sync),
            )
            .unwrap(),
        );
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            e2.create("a", b"payload").unwrap();
            // The ack ordering under test: Ok from a sync-mode create
            // means the shipper has applied the frame — at this very
            // point, not merely eventually.
            let h = e2.repl_handle().unwrap();
            assert!(
                h.applied_high() >= h.enqueued_high(),
                "sync mode acked before the replica applied"
            );
        });
        client.join().unwrap();
        let e = Arc::try_unwrap(e).ok().unwrap();
        let (_vol, replica) = e.shutdown_replicated().unwrap();
        assert_eq!(replica.buffered(), 0);
        assert!(replica.stats().frames_applied >= 1);
    });
}

#[test]
fn semi_sync_ack_never_precedes_replica_receive() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 300,
    }
    .check(|| {
        let e = Arc::new(
            FsdEngine::start_replicated(
                small_vol(),
                small_cfg(),
                small_fsd_cfg(),
                instant_link(ReplMode::SemiSync),
            )
            .unwrap(),
        );
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            e2.create("s", b"payload").unwrap();
            let h = e2.repl_handle().unwrap();
            assert!(
                h.shipped_high() >= h.enqueued_high(),
                "semi-sync mode acked before the replica received"
            );
        });
        client.join().unwrap();
        let e = Arc::try_unwrap(e).ok().unwrap();
        let (_vol, replica) = e.shutdown_replicated().unwrap();
        // Shutdown drain: received implies applied by the time the
        // replica is handed back.
        assert_eq!(replica.buffered(), 0);
    });
}

#[test]
fn partition_during_force_fails_client_then_heals_in_order() {
    loom::Model {
        preemption_bound: 2,
        max_schedules: 200,
    }
    .check(|| {
        let e = Arc::new(
            FsdEngine::start_replicated(
                small_vol(),
                small_cfg(),
                small_fsd_cfg(),
                instant_link(ReplMode::Sync),
            )
            .unwrap(),
        );
        // Partition before the epoch ships: the client's commit is
        // durable on the primary but must NOT be acknowledged.
        e.repl_handle().unwrap().force_down();
        let e2 = Arc::clone(&e);
        let client = loom::thread::spawn(move || {
            let err = e2.create("p", b"x").unwrap_err();
            assert!(err.is_retryable(), "partition must surface retryable");
        });
        client.join().unwrap();
        let h = e.repl_handle().unwrap();
        assert!(h.applied_high() < h.enqueued_high());
        // Heal: the stalled frame ships (strict order) and the next
        // commit acks normally in every schedule.
        h.heal();
        e.create("q", b"y").unwrap();
        let h = e.repl_handle().unwrap();
        assert!(h.applied_high() >= h.enqueued_high());
        let e = Arc::try_unwrap(e).ok().unwrap();
        let (_vol, replica) = e.shutdown_replicated().unwrap();
        assert_eq!(replica.buffered(), 0);
    });
}
