//! Log-shipping replication: mode contracts, partition-tolerant
//! failover, and catch-up resync (ISSUE 10).
//!
//! The deterministic [`ReplSession`] tests pin the per-mode loss bounds
//! by comparing the promoted replica against the set of *acknowledged*
//! commits: sync and semi-sync must lose nothing acknowledged, async may
//! lose at most `max_lag_frames` commits. The threaded tests drive the
//! same protocol through [`FsdEngine::start_replicated`], including a
//! link failure surfacing as a retryable error on the client and a heal
//! that resumes shipping without losing frame order.

use cedar_disk::{CpuModel, LinkPlan, SimDisk};
use cedar_fsd::{
    EngineConfig, FsdConfig, FsdEngine, FsdVolume, ReplMode, ReplSession, ReplSessionConfig,
    ResyncKind, ShipperConfig,
};
use cedar_vol::fs::{CedarFsError, FileSystem};

fn config() -> FsdConfig {
    FsdConfig {
        nt_pages: 16,
        log_sectors: 128,
        cpu: CpuModel::FREE,
        ..FsdConfig::default()
    }
}

fn fresh() -> FsdVolume {
    FsdVolume::format(SimDisk::tiny(), config()).unwrap()
}

fn session(mode: ReplMode) -> ReplSession {
    ReplSession::new(fresh(), config(), ReplSessionConfig::for_mode(mode)).unwrap()
}

/// Creates `name` with deterministic content and commits it.
fn commit_file(s: &mut ReplSession, name: &str) -> Result<(), CedarFsError> {
    let data = format!("contents of {name}").into_bytes();
    s.primary_mut().create(name, &data).unwrap();
    s.commit()
}

fn assert_has(v: &mut FsdVolume, name: &str) {
    let mut f = v.open(name, None).unwrap();
    let data = v.read_file(&mut f).unwrap();
    assert_eq!(data, format!("contents of {name}").into_bytes(), "{name}");
}

#[test]
fn sync_round_trip_and_failover() {
    let mut s = session(ReplMode::Sync);
    for i in 0..8 {
        commit_file(&mut s, &format!("file-{i}")).unwrap();
    }
    assert_eq!(s.frames_behind(), 0, "sync never runs ahead of the ack");
    assert!(!s.lag_samples().is_empty());
    let out = s.failover().unwrap();
    let mut v = out.volume;
    for i in 0..8 {
        assert_has(&mut v, &format!("file-{i}"));
    }
    v.verify().unwrap();
}

#[test]
fn semi_sync_round_trip_and_failover() {
    let mut s = session(ReplMode::SemiSync);
    for i in 0..6 {
        commit_file(&mut s, &format!("semi-{i}")).unwrap();
    }
    let out = s.failover().unwrap();
    let mut v = out.volume;
    for i in 0..6 {
        assert_has(&mut v, &format!("semi-{i}"));
    }
    v.verify().unwrap();
}

#[test]
fn replication_carries_unlogged_data_pages_and_deletes() {
    // File data never goes through the log (§5.2) — the stream must
    // carry the raw data-area writes, and a later overwrite + delete
    // must land too.
    let mut s = session(ReplMode::Sync);
    commit_file(&mut s, "keep").unwrap();
    commit_file(&mut s, "doomed").unwrap();
    {
        let v = s.primary_mut();
        let mut f = v.open("keep", None).unwrap();
        v.write_page(&mut f, 0, b"rewritten page zero").unwrap();
        v.delete("doomed", None).unwrap();
    }
    s.commit().unwrap();
    let mut v = s.failover().unwrap().volume;
    let mut f = v.open("keep", None).unwrap();
    let page = v.read_page(&mut f, 0).unwrap();
    assert_eq!(&page[..19], b"rewritten page zero");
    assert!(v.open("doomed", None).is_err(), "delete must replicate");
    v.verify().unwrap();
}

#[test]
fn sync_partition_fails_commit_retryably_and_loses_nothing_acked() {
    let mut s = session(ReplMode::Sync);
    commit_file(&mut s, "acked").unwrap();
    s.link_mut().force_down();
    let err = commit_file(&mut s, "unacked").unwrap_err();
    assert!(err.is_retryable(), "link loss must be retryable: {err}");
    assert!(s.frames_behind() > 0);
    // Primary dies while partitioned: the unacknowledged commit is the
    // only casualty.
    let out = s.failover().unwrap();
    let mut v = out.volume;
    assert_has(&mut v, "acked");
    assert!(v.open("unacked", None).is_err());
    v.verify().unwrap();
}

#[test]
fn semi_sync_partition_fails_commit_retryably() {
    let mut s = session(ReplMode::SemiSync);
    commit_file(&mut s, "acked").unwrap();
    s.link_mut().force_down();
    let err = commit_file(&mut s, "unacked").unwrap_err();
    assert!(err.is_retryable());
    let mut v = s.failover().unwrap().volume;
    assert_has(&mut v, "acked");
    assert!(v.open("unacked", None).is_err());
}

#[test]
fn async_loss_is_bounded_by_max_lag_frames() {
    let mut cfg = ReplSessionConfig::for_mode(ReplMode::Async);
    cfg.max_lag_frames = 4;
    let mut s = ReplSession::new(fresh(), config(), cfg).unwrap();
    for i in 0..5 {
        commit_file(&mut s, &format!("before-{i}")).unwrap();
    }
    s.link_mut().force_down();
    // Up to max_lag_frames commits are acknowledged locally while the
    // link is down; the next one would exceed the bound and must fail.
    for i in 0..4 {
        commit_file(&mut s, &format!("lagged-{i}")).unwrap();
    }
    let err = commit_file(&mut s, "over-bound").unwrap_err();
    assert!(err.is_retryable());
    assert!(s.frames_behind() <= 4 + 1, "bound: lag + the failed frame");
    let out = s.failover().unwrap();
    let mut v = out.volume;
    // Everything shipped before the partition survives; the bounded
    // window of acknowledged-but-unshipped commits is the loss.
    for i in 0..5 {
        assert_has(&mut v, &format!("before-{i}"));
    }
    for i in 0..4 {
        assert!(v.open(&format!("lagged-{i}"), None).is_err());
    }
    v.verify().unwrap();
}

#[test]
fn resync_cursor_replay_after_partition() {
    let mut cfg = ReplSessionConfig::for_mode(ReplMode::Async);
    cfg.max_lag_frames = 16;
    cfg.retain_frames = 64;
    let mut s = ReplSession::new(fresh(), config(), cfg).unwrap();
    commit_file(&mut s, "pre").unwrap();
    s.link_mut().force_down();
    for i in 0..3 {
        commit_file(&mut s, &format!("during-{i}")).unwrap();
    }
    assert!(!s.needs_full_transfer());
    let out = s.resync().unwrap();
    assert_eq!(out.kind, ResyncKind::CursorReplay);
    assert_eq!(out.frames, 3);
    assert_eq!(s.frames_behind(), 0);
    commit_file(&mut s, "post").unwrap();
    let mut v = s.failover().unwrap().volume;
    for name in ["pre", "during-0", "during-1", "during-2", "post"] {
        assert_has(&mut v, name);
    }
    v.verify().unwrap();
}

#[test]
fn resync_falls_back_to_full_transfer_when_log_lapped() {
    let mut cfg = ReplSessionConfig::for_mode(ReplMode::Async);
    cfg.max_lag_frames = 16;
    cfg.retain_frames = 2;
    let mut s = ReplSession::new(fresh(), config(), cfg).unwrap();
    commit_file(&mut s, "pre").unwrap();
    s.link_mut().force_down();
    for i in 0..6 {
        commit_file(&mut s, &format!("during-{i}")).unwrap();
    }
    assert!(
        s.needs_full_transfer(),
        "retention bound of 2 must have evicted past the cursor"
    );
    let out = s.resync().unwrap();
    assert_eq!(out.kind, ResyncKind::FullTransfer);
    assert!(out.sectors > 0);
    assert_eq!(s.frames_behind(), 0);
    assert!(s.replica_stats().full_transfers >= 2, "install + reseed");
    commit_file(&mut s, "post").unwrap();
    let mut v = s.failover().unwrap().volume;
    for name in [
        "pre", "during-0", "during-1", "during-2", "during-3", "during-4", "during-5", "post",
    ] {
        assert_has(&mut v, name);
    }
    v.verify().unwrap();
}

#[test]
fn transient_drop_plan_is_retried_through() {
    let mut cfg = ReplSessionConfig::for_mode(ReplMode::Sync);
    // Drop the first and third sends; retries must carry each frame.
    cfg.link.drop_sends = vec![1, 3];
    let mut s = ReplSession::new(fresh(), config(), cfg).unwrap();
    for i in 0..4 {
        commit_file(&mut s, &format!("drop-{i}")).unwrap();
    }
    assert!(s.link_stats().dropped >= 2);
    let mut v = s.failover().unwrap().volume;
    for i in 0..4 {
        assert_has(&mut v, &format!("drop-{i}"));
    }
}

// ----- threaded engine + shipper ---------------------------------------------

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        max_batch_ops: 8,
        shards: 4,
        ..EngineConfig::default()
    }
}

#[test]
fn engine_replicated_sync_ships_every_ack() {
    let engine = FsdEngine::start_replicated(
        fresh(),
        engine_cfg(),
        config(),
        ShipperConfig::for_mode(ReplMode::Sync),
    )
    .unwrap();
    for i in 0..10 {
        let name = format!("eng-{i}");
        let data = format!("contents of {name}").into_bytes();
        engine.create(&name, &data).unwrap();
    }
    let handle = engine.repl_handle().unwrap();
    // Sync: acknowledged implies applied.
    assert_eq!(handle.applied_high(), handle.enqueued_high());
    let (mut primary, replica) = engine.shutdown_replicated().unwrap();
    primary.verify().unwrap();
    let (mut promoted, _report) = replica.promote().unwrap();
    for i in 0..10 {
        assert_has(&mut promoted, &format!("eng-{i}"));
    }
    promoted.verify().unwrap();
}

#[test]
fn engine_link_failure_is_retryable_and_heals_in_order() {
    let mut ship = ShipperConfig::for_mode(ReplMode::Sync);
    ship.retry_attempts = 1;
    ship.backoff_us = 100;
    let engine = FsdEngine::start_replicated(fresh(), engine_cfg(), config(), ship).unwrap();
    engine.create("before", b"contents of before").unwrap();

    let handle = engine.repl_handle().unwrap();
    handle.force_down();
    let err = engine
        .create("stalled", b"contents of stalled")
        .unwrap_err();
    assert!(err.is_retryable(), "stalled ship must be retryable: {err}");
    assert!(handle.failed().is_some());

    handle.heal();
    // New work after the heal drains the stalled frame first (strict
    // order), then its own.
    engine.create("after", b"contents of after").unwrap();
    assert_eq!(handle.applied_high(), handle.enqueued_high());
    assert!(handle.failed().is_none());

    let (_primary, replica) = engine.shutdown_replicated().unwrap();
    let (mut promoted, _) = replica.promote().unwrap();
    for name in ["before", "stalled", "after"] {
        let mut f = promoted.open(name, None).unwrap();
        let data = promoted.read_file(&mut f).unwrap();
        assert_eq!(data, format!("contents of {name}").into_bytes());
    }
    promoted.verify().unwrap();
}

#[test]
fn engine_async_mode_drains_on_shutdown() {
    let mut ship = ShipperConfig::for_mode(ReplMode::Async);
    ship.link = LinkPlan {
        latency_us: 2_000,
        bytes_per_sec: 1_000_000,
        ..LinkPlan::default()
    };
    let engine = FsdEngine::start_replicated(fresh(), engine_cfg(), config(), ship).unwrap();
    for i in 0..12 {
        let name = format!("async-{i}");
        engine
            .create(&name, format!("contents of {name}").as_bytes())
            .unwrap();
    }
    // Shutdown waits for the writer's drain and then the shipper's:
    // everything enqueued is applied by the time the replica returns.
    let (_primary, replica) = engine.shutdown_replicated().unwrap();
    assert_eq!(replica.buffered(), 0);
    let (mut promoted, _) = replica.promote().unwrap();
    for i in 0..12 {
        assert_has(&mut promoted, &format!("async-{i}"));
    }
    promoted.verify().unwrap();
}
