//! The §5.3 VAM-logging extension: "VAM logging would greatly decrease
//! worst case crash recovery time from about twenty five seconds to
//! about two seconds." The paper left it unimplemented; this crate
//! implements it behind `FsdConfig::log_vam` and these tests hold it to
//! the same crash-consistency bar as the base system.

use cedar_disk::{CpuModel, CrashPlan, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};

fn config(log_vam: bool) -> FsdConfig {
    FsdConfig {
        nt_pages: 24,
        log_sectors: 160,
        cpu: CpuModel::FREE,
        log_vam,
        ..FsdConfig::default()
    }
}

fn tiny(log_vam: bool) -> FsdVolume {
    FsdVolume::format(SimDisk::tiny(), config(log_vam)).unwrap()
}

#[test]
fn recovery_skips_vam_reconstruction() {
    let mut v = tiny(true);
    for i in 0..60 {
        v.create(&format!("f{i:02}"), &vec![1u8; 900]).unwrap();
    }
    v.force().unwrap();
    let free = v.free_sectors();
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (v2, report) = FsdVolume::boot(d, config(true)).unwrap();
    assert!(
        !report.vam_reconstructed,
        "the logged VAM must make reconstruction unnecessary"
    );
    assert_eq!(v2.free_sectors(), free, "the recovered free map is exact");
}

#[test]
fn recovered_vam_agrees_after_deletes() {
    let mut v = tiny(true);
    for i in 0..40 {
        v.create(&format!("f{i:02}"), &vec![1u8; 1500]).unwrap();
    }
    for i in (0..40).step_by(2) {
        v.delete(&format!("f{i:02}"), None).unwrap();
    }
    v.force().unwrap(); // Commits the shadow frees and logs the VAM.
    let free = v.free_sectors();
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (mut v2, report) = FsdVolume::boot(d, config(true)).unwrap();
    assert!(!report.vam_reconstructed);
    assert_eq!(v2.free_sectors(), free);
    // No survivor tramples another: allocate heavily and re-verify.
    for i in 0..30 {
        if v2.create(&format!("new{i:02}"), &vec![9u8; 1200]).is_err() {
            break;
        }
    }
    for i in (1..40).step_by(2) {
        let mut f = v2.open(&format!("f{i:02}"), None).unwrap();
        assert_eq!(v2.read_file(&mut f).unwrap(), vec![1u8; 1500]);
    }
    v2.verify().unwrap();
}

#[test]
fn uncommitted_frees_stay_uncommitted_across_crash() {
    let mut v = tiny(true);
    v.create("victim", &vec![2u8; 2048]).unwrap();
    v.force().unwrap();
    let committed_free = v.free_sectors();
    v.delete("victim", None).unwrap();
    // Crash before the delete commits: the recovered VAM must still hold
    // the victim's pages allocated (the file is back).
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (mut v2, _) = FsdVolume::boot(d, config(true)).unwrap();
    assert_eq!(v2.free_sectors(), committed_free);
    let mut f = v2.open("victim", None).unwrap();
    assert_eq!(v2.read_file(&mut f).unwrap(), vec![2u8; 2048]);
}

#[test]
fn crash_mid_force_keeps_vam_at_previous_commit() {
    let mut v = tiny(true);
    v.create("stable", b"v1").unwrap();
    v.force().unwrap();
    let free = v.free_sectors();
    for i in 0..5 {
        v.create(&format!("burst{i}"), &vec![0u8; 700]).unwrap();
    }
    v.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 3,
        damaged_tail: 1,
    });
    assert!(v.force().is_err());
    let mut d = v.into_disk();
    d.reboot();
    let (v2, report) = FsdVolume::boot(d, config(true)).unwrap();
    assert!(!report.vam_reconstructed);
    assert_eq!(
        v2.free_sectors(),
        free,
        "torn force: the VAM rolls back with the name table"
    );
}

#[test]
fn survives_log_wrap_with_vam_deltas() {
    let mut v = tiny(true);
    for round in 0..60 {
        v.create(&format!("wrap{round:03}"), b"w").unwrap();
        v.force().unwrap();
    }
    let free = v.free_sectors();
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (mut v2, report) = FsdVolume::boot(d, config(true)).unwrap();
    assert!(!report.vam_reconstructed);
    assert_eq!(v2.free_sectors(), free);
    v2.verify().unwrap();
    for round in 0..60 {
        assert!(v2.open(&format!("wrap{round:03}"), None).is_ok());
    }
}

#[test]
fn damaged_save_copy_falls_back_to_replica_then_rebuild() {
    let mut v = tiny(true);
    v.create("f", &vec![1u8; 1024]).unwrap();
    v.force().unwrap();
    let free = v.free_sectors();
    let layout = *v.layout();
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    // One damaged copy: replica serves.
    d.damage_sector(layout.vam_a);
    let (v2, report) = FsdVolume::boot(d.clone(), config(true)).unwrap();
    assert!(!report.vam_reconstructed);
    assert_eq!(v2.free_sectors(), free);
    // Both copies damaged: either the redo sweep repairs the damaged
    // sectors from the logged images, or recovery degrades to
    // reconstruction — the free map is exact either way.
    d.damage_sector(layout.vam_b);
    let (v3, _report) = FsdVolume::boot(d, config(true)).unwrap();
    assert_eq!(v3.free_sectors(), free);
}

#[test]
fn vam_logging_off_still_reconstructs() {
    // Control: the base system without the extension keeps its behaviour.
    let mut v = tiny(false);
    v.create("f", b"x").unwrap();
    v.force().unwrap();
    let mut d = v.into_disk();
    d.crash_now();
    d.reboot();
    let (_, report) = FsdVolume::boot(d, config(false)).unwrap();
    assert!(report.vam_reconstructed);
}
