//! Crash-recovery semantics: after any crash, FSD recovers to the state
//! of the last log force (group-commit boundary). "Loss of up to a half a
//! second is not significant" (§5.4) — but nothing *else* may be lost,
//! and the name table must always be structurally intact.

use cedar_disk::{CpuModel, CrashPlan, IoPolicy, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};

/// The crash-ordering tests run under both submission policies: the
/// scheduled (C-SCAN, the default) log-force/writeback path reorders
/// writes within barrier windows, and recovery must hold regardless.
const POLICIES: [IoPolicy; 2] = [IoPolicy::InOrder, IoPolicy::Cscan];

fn config_with(io_policy: IoPolicy) -> FsdConfig {
    FsdConfig {
        nt_pages: 16,
        log_sectors: 128,
        cpu: CpuModel::FREE,
        io_policy,
        ..FsdConfig::default()
    }
}

fn config() -> FsdConfig {
    config_with(IoPolicy::default())
}

fn tiny_with(io_policy: IoPolicy) -> FsdVolume {
    FsdVolume::format(SimDisk::tiny(), config_with(io_policy)).unwrap()
}

fn tiny() -> FsdVolume {
    tiny_with(IoPolicy::default())
}

/// Crashes the volume immediately and reboots it.
fn crash_and_recover(v: FsdVolume) -> (FsdVolume, cedar_fsd::RecoveryReport) {
    let mut disk = v.into_disk();
    disk.crash_now();
    disk.reboot();
    FsdVolume::boot(disk, config()).unwrap()
}

#[test]
fn forced_create_survives_crash() {
    let mut v = tiny();
    v.create("kept", b"forced data").unwrap();
    v.force().unwrap();
    let (mut v2, report) = crash_and_recover(v);
    assert!(report.records_replayed >= 1);
    assert!(report.vam_reconstructed, "no shutdown → VAM rebuilt");
    let mut f = v2.open("kept", None).unwrap();
    assert_eq!(v2.read_file(&mut f).unwrap(), b"forced data");
    v2.verify().unwrap();
}

#[test]
fn unforced_create_lost_cleanly() {
    let mut v = tiny();
    v.create("durable", b"old").unwrap();
    v.force().unwrap();
    let free_committed = v.free_sectors();
    v.create("ephemeral", b"never committed").unwrap();
    let (mut v2, _) = crash_and_recover(v);
    assert!(v2.open("durable", None).is_ok());
    assert!(v2.open("ephemeral", None).is_err());
    // The uncommitted file's sectors came back: VAM reconstruction sees
    // only the committed name table.
    assert_eq!(v2.free_sectors(), free_committed);
    v2.verify().unwrap();
}

#[test]
fn unforced_delete_resurrects() {
    let mut v = tiny();
    v.create("lazarus", b"alive").unwrap();
    v.force().unwrap();
    v.delete("lazarus", None).unwrap();
    // Crash before the delete commits: the file is still there.
    let (mut v2, _) = crash_and_recover(v);
    let mut f = v2.open("lazarus", None).unwrap();
    assert_eq!(v2.read_file(&mut f).unwrap(), b"alive");
}

#[test]
fn forced_delete_stays_deleted() {
    let mut v = tiny();
    v.create("gone", b"bye").unwrap();
    v.force().unwrap();
    v.delete("gone", None).unwrap();
    v.force().unwrap();
    let (mut v2, _) = crash_and_recover(v);
    assert!(v2.open("gone", None).is_err());
}

#[test]
fn crash_mid_log_force_keeps_previous_commit() {
    for policy in POLICIES {
        let mut v = tiny_with(policy);
        v.create("stable", b"v1").unwrap();
        v.force().unwrap();
        for i in 0..5 {
            v.create(&format!("burst{i}"), b"x").unwrap();
        }
        // The force's log write tears after 3 sectors.
        v.disk_mut().schedule_crash(CrashPlan {
            after_sector_writes: 3,
            damaged_tail: 1,
        });
        let err = v.force().unwrap_err();
        assert!(err.is_crash());
        let mut disk = v.into_disk();
        disk.reboot();
        let (mut v2, _) = FsdVolume::boot(disk, config_with(policy)).unwrap();
        // The torn record is ignored; the earlier commit is intact.
        assert!(v2.open("stable", None).is_ok());
        for i in 0..5 {
            assert!(
                v2.open(&format!("burst{i}"), None).is_err(),
                "burst{i} under {policy:?}"
            );
        }
        v2.verify().unwrap();
    }
}

#[test]
fn multi_page_tree_update_is_atomic_across_crash() {
    // §5.8 error class 1: "multi-page B-tree updates were not atomic" in
    // CFS; logging fixes it. Force a commit whose record spans many page
    // images (splits), then crash at every prefix of the log write.
    for policy in POLICIES {
        for crash_after in [0u64, 1, 2, 5, 9, 14, 20, 33] {
            let mut v = tiny_with(policy);
            for i in 0..60 {
                v.create(&format!("seed{i:02}"), b"s").unwrap();
            }
            v.force().unwrap();
            for i in 0..30 {
                v.create(&format!("burst{i:02}"), b"b").unwrap();
            }
            v.disk_mut().schedule_crash(CrashPlan {
                after_sector_writes: crash_after,
                damaged_tail: 1,
            });
            let _ = v.force(); // May or may not crash depending on record size.
            let mut disk = v.into_disk();
            disk.reboot();
            let (mut v2, _) = FsdVolume::boot(disk, config_with(policy)).unwrap();
            v2.verify().unwrap_or_else(|e| {
                panic!("tree corrupt after crash at {crash_after} under {policy:?}: {e}")
            });
            // All seeds are committed and present.
            for i in 0..60 {
                assert!(
                    v2.open(&format!("seed{i:02}"), None).is_ok(),
                    "seed{i:02} lost, crash at {crash_after} under {policy:?}"
                );
            }
            // The burst is all-or-nothing only per force; individual files may
            // exist iff the record landed. But the tree must be consistent and
            // every present file readable.
            for (name, _) in v2.list("burst").unwrap() {
                let mut f = v2.open(&name.name, Some(name.version)).unwrap();
                assert_eq!(v2.read_file(&mut f).unwrap(), b"b");
            }
        }
    }
}

#[test]
fn crash_during_home_flush_recovers() {
    // Drive the log around its thirds so home flushes happen, crashing
    // during one of them. Under the scheduled policy the flush's writes
    // execute in C-SCAN order, so the crash tears a *reordered* window —
    // recovery must not care.
    for policy in POLICIES {
        let mut v = tiny_with(policy);
        for round in 0..14 {
            for i in 0..8 {
                v.create(&format!("r{round:02}f{i}"), b"data").unwrap();
            }
            v.force().unwrap();
        }
        // Now schedule a crash a few sector-writes into future activity
        // (which will include home flushes at third entries).
        v.disk_mut().schedule_crash(CrashPlan {
            after_sector_writes: 7,
            damaged_tail: 2,
        });
        let mut round = 14;
        loop {
            let mut crashed = false;
            for i in 0..8 {
                if v.create(&format!("r{round:02}f{i}"), b"data").is_err() {
                    crashed = true;
                    break;
                }
            }
            if crashed || v.force().is_err() {
                break;
            }
            round += 1;
            assert!(round < 100, "crash never fired under {policy:?}");
        }
        let mut disk = v.into_disk();
        disk.reboot();
        let (mut v2, _) = FsdVolume::boot(disk, config_with(policy)).unwrap();
        v2.verify().unwrap();
        // Everything committed before round 14 must be present and readable.
        for r in 0..14 {
            for i in 0..8 {
                let name = format!("r{r:02}f{i}");
                let mut f = v2
                    .open(&name, None)
                    .unwrap_or_else(|e| panic!("{name} lost under {policy:?}: {e}"));
                assert_eq!(v2.read_file(&mut f).unwrap(), b"data");
            }
        }
    }
}

#[test]
fn double_crash_during_recovery_is_survivable() {
    // Crash, begin recovery, crash during recovery's redo writes, then
    // recover again: redo is idempotent. `SimDisk` is `Clone`, so the
    // persistent image can be snapshotted the way a power cycle preserves
    // the platters.
    let mut v = tiny();
    for i in 0..20 {
        v.create(&format!("f{i:02}"), b"x").unwrap();
    }
    v.force().unwrap();
    let mut disk = v.into_disk();
    disk.crash_now();
    disk.reboot();
    // Try recovery with a crash at several points into its redo writes;
    // the torn image must recover fully on the next attempt — under
    // either submission policy (redo's home sweep is a scheduled batch).
    for policy in POLICIES {
        for crash_after in [0u64, 1, 3, 5, 10] {
            let mut attempt = disk.clone();
            attempt.schedule_crash(CrashPlan {
                after_sector_writes: crash_after,
                damaged_tail: 1,
            });
            let torn = match FsdVolume::try_boot(attempt, config_with(policy)) {
                // Recovery finished before the crash budget ran out — fine.
                Ok((mut v2, _)) => {
                    v2.verify().unwrap();
                    continue;
                }
                Err((e, torn)) => {
                    assert!(e.is_crash(), "crash at {crash_after} under {policy:?}: {e}");
                    torn
                }
            };
            let mut torn = torn;
            torn.reboot();
            let (mut v3, _) = FsdVolume::boot(torn, config_with(policy)).unwrap();
            v3.verify().unwrap();
            for i in 0..20 {
                assert!(v3.open(&format!("f{i:02}"), None).is_ok());
            }
        }
    }
}

#[test]
fn log_wraps_many_times_and_still_recovers() {
    let mut v = tiny();
    // Enough forced activity to lap the 128-sector log repeatedly.
    for round in 0..60 {
        v.create(&format!("wrap{round:03}"), b"w").unwrap();
        v.force().unwrap();
    }
    let (mut v2, _) = crash_and_recover(v);
    v2.verify().unwrap();
    for round in 0..60 {
        assert!(v2.open(&format!("wrap{round:03}"), None).is_ok(), "{round}");
    }
}

#[test]
fn recovery_is_fast_compared_to_activity() {
    let mut v = tiny();
    for i in 0..100 {
        v.create(&format!("f{i:03}"), &vec![0u8; 1024]).unwrap();
    }
    v.force().unwrap();
    let (_, report) = crash_and_recover(v);
    // §5.9: redo "rarely takes more than two seconds".
    assert!(
        report.redo_us < 2_000_000,
        "redo took {} µs",
        report.redo_us
    );
}
