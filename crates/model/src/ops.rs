//! Operation scripts for CFS and FSD.
//!
//! Each script mirrors the I/O and CPU sequence the corresponding
//! simulated volume performs in the steady state of the paper's
//! benchmarks (warm name-table cache, sequential allocation within one
//! directory) — "Based on the code or documentation, analyze the
//! algorithm to find out where it will do I/O's. If an I/O will be on the
//! same (or nearby) cylinder or if the rotational position of the disk is
//! known, then take this rotational and radial position into account"
//! (§6).

use crate::script::{Script, Step};
use cedar_disk::clock::Micros;
use cedar_disk::{CpuModel, DiskTiming};

/// Everything a script needs to evaluate.
#[derive(Clone, Copy, Debug)]
pub struct ModelParams {
    /// Drive timing.
    pub timing: DiskTiming,
    /// CPU cost table.
    pub cpu: CpuModel,
    /// Cylinders on the volume (for average seeks).
    pub cylinders: u32,
    /// Sectors per cylinder (for track-to-track crossings in long
    /// transfers).
    pub sectors_per_cylinder: u32,
}

impl ModelParams {
    /// The paper's hardware: Trident T-300 class drive, Dorado CPU.
    pub fn dorado_t300() -> Self {
        Self {
            timing: DiskTiming::TRIDENT_T300,
            cpu: CpuModel::DORADO,
            cylinders: 815,
            sectors_per_cylinder: 19 * 38,
        }
    }
}

/// A named prediction.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Operation name (matches the Table 2 row).
    pub name: String,
    /// The script behind the number.
    pub script: Script,
    /// Predicted time.
    pub total_us: Micros,
}

fn predict(params: &ModelParams, script: Script) -> Prediction {
    let total_us = script.total_us(&params.timing, params.cylinders);
    Prediction {
        name: script.name.clone(),
        script,
        total_us,
    }
}

/// CPU for walking `n` B-tree nodes.
fn nodes(cpu: &CpuModel, n: u64) -> Step {
    Step::Cpu(cpu.btree_node_us * n)
}

/// Track-to-track crossings in a transfer of `sectors` sectors.
fn crossings(params: &ModelParams, sectors: u32) -> u32 {
    sectors / params.sectors_per_cylinder
}

/// The steady-state cost of resolving a name (version scan: root + leaf,
/// cached) plus fetching its entry (root + leaf, cached).
fn name_lookup_cpu(cpu: &CpuModel) -> Vec<(String, Step)> {
    vec![
        ("version scan (2 cached nodes)".into(), nodes(cpu, 2)),
        ("entry fetch (2 cached nodes)".into(), nodes(cpu, 2)),
        ("entry decode".into(), Step::Cpu(cpu.entry_us)),
    ]
}

// ----- FSD ---------------------------------------------------------------------

/// Scripts for the FSD operations of Table 2.
pub fn fsd_ops(params: &ModelParams) -> Vec<Prediction> {
    let cpu = &params.cpu;
    let mut out = Vec::new();

    // Small create: metadata entirely in cache; one synchronous write of
    // leader + data page, rotationally unconstrained (average latency),
    // radially adjacent to the previous allocation (no seek).
    let mut s = Script::new("FSD small create")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("tree insert (3 cached nodes)", nodes(cpu, 3))
        .step("entry encode", Step::Cpu(cpu.entry_us))
        .step("copy 2 sectors", Step::Cpu(cpu.per_sector_us * 2));
    let create_cpu =
        cpu.op_overhead_us + 5 * cpu.btree_node_us + cpu.entry_us + cpu.per_sector_us * 2;
    s = s
        .step(
            "write leader+data: rotational join (adjacent to previous create)",
            Step::RotationalJoin {
                cpu_us: create_cpu,
                offset: 0,
            },
        )
        .step("write leader+data: transfer", Step::Transfer(2));
    out.push(predict(params, s));

    // Open: no I/O at all (§5.7).
    let mut s = Script::new("FSD open").step("dispatch", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    out.push(predict(params, s));

    // Open + read first page: the open plus one piggybacked
    // leader-and-data transfer (§5.7: "it usually costs only the transfer
    // time for a page to read the leader page").
    let mut s = Script::new("FSD open + read").step("dispatch", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    s = s
        .step("copy sector", Step::Cpu(cpu.per_sector_us))
        .step("seek to file", Step::ShortSeek)
        .step("latency", Step::Latency)
        .step("leader + page transfer", Step::Transfer(2));
    out.push(predict(params, s));

    // Small delete: cache-only (§4: delete does no synchronous I/O).
    let mut s = Script::new("FSD small delete")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        // Delete resolves the name first...
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("entry fetch (2 cached nodes)", nodes(cpu, 2))
        .step("entry decode", Step::Cpu(cpu.entry_us));
    s = s.step("tree delete (3 cached nodes)", nodes(cpu, 3));
    out.push(predict(params, s));

    // Large delete (1 MB): same metadata work; the run table is longer
    // but the pages just move to the shadow bitmap.
    let s = Script::new("FSD large delete")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("entry fetch (2 cached nodes)", nodes(cpu, 2))
        .step("entry decode", Step::Cpu(cpu.entry_us))
        .step("tree delete (3 cached nodes)", nodes(cpu, 3));
    out.push(predict(params, s));

    // Read page (random page of an open 1 MB file, leader verified):
    // the file occupies a few cylinders, so the cost is rotational —
    // identical in both systems ("the disk hardware is the same", §7).
    let s = Script::new("FSD read page")
        .step("copy sector", Step::Cpu(cpu.per_sector_us))
        .step("latency", Step::Latency)
        .step("transfer", Step::Transfer(1));
    out.push(predict(params, s));

    // Large create (1 MB = 2048 data sectors): one long seek to the big
    // area, then a continuous leader+data transfer with track-to-track
    // crossings.
    let sectors = 2049u32;
    let mut s = Script::new("FSD large create")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("tree insert (3 cached nodes)", nodes(cpu, 3))
        .step("entry encode", Step::Cpu(cpu.entry_us))
        .step(
            "copy 2049 sectors",
            Step::Cpu(cpu.per_sector_us * sectors as Micros),
        )
        .step("seek to big area", Step::AvgSeek)
        .step("latency", Step::Latency)
        .step("transfer", Step::Transfer(sectors));
    for _ in 0..crossings(params, sectors) {
        s = s.step("track-to-track", Step::ShortSeek);
    }
    out.push(predict(params, s));

    out
}

// ----- CFS ---------------------------------------------------------------------

/// Scripts for the CFS operations of Table 2, including the §6 worked
/// example for the small create.
pub fn cfs_ops(params: &ModelParams) -> Vec<Prediction> {
    let cpu = &params.cpu;
    let mut out = Vec::new();

    // Small create — the paper's own script, extended to the full
    // operation. Allocation is adjacent to the previous create (same
    // cylinder), so step 1 pays latency but no seek.
    let s = Script::new("CFS small create")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("verify free pages: latency", Step::Latency)
        .step("verify free pages: 3 page transfers", Step::Transfer(3))
        .step("write header labels", Step::RevolutionMinus(3))
        .step("write header labels: 2 transfers", Step::Transfer(2))
        .step("write data label: 1 transfer", Step::Transfer(1))
        .step("write header", Step::RevolutionMinus(3))
        .step("write header: 2 transfers", Step::Transfer(2))
        .step("header encode", Step::Cpu(cpu.entry_us))
        .step("name table insert (3 cached nodes)", nodes(cpu, 3))
        .step("name table: seek to front region", Step::ShortSeek)
        .step("name table: latency", Step::Latency)
        .step("name table: page write (4 sectors)", Step::Transfer(4))
        .step("write data: seek back", Step::ShortSeek)
        .step("write data: latency", Step::Latency)
        .step("write data: 1 transfer", Step::Transfer(1))
        .step("copy sector", Step::Cpu(cpu.per_sector_us))
        .step("rewrite header", Step::RevolutionMinus(3))
        .step("rewrite header: 2 transfers", Step::Transfer(2));
    out.push(predict(params, s));

    // Open: cached name lookup plus a label-checked header read. In the
    // same-directory steady state the headers share the head's cylinder
    // ("incorporate any known locality" — §6): latency only, no seek.
    let mut s = Script::new("CFS open").step("dispatch", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    let open_cpu = cpu.op_overhead_us + 4 * cpu.btree_node_us + 2 * cpu.entry_us;
    s = s
        .step("header decode", Step::Cpu(cpu.entry_us))
        .step(
            "read header: rotational join (next file's header, +3 sectors)",
            Step::RotationalJoin {
                cpu_us: open_cpu,
                offset: 3,
            },
        )
        .step("read header: 2 transfers", Step::Transfer(2));
    out.push(predict(params, s));

    // Open + read first page: the header read positions the head on the
    // file's cylinder; the data page follows the header on the disk, but
    // a revolution boundary usually intervenes.
    let mut s = Script::new("CFS open + read").step("dispatch", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    s = s
        .step("header decode", Step::Cpu(cpu.entry_us))
        .step("read header: latency", Step::Latency)
        .step("read header: 2 transfers", Step::Transfer(2))
        .step("read data: rotational wait", Step::RevolutionMinus(3))
        .step("read data: 1 transfer", Step::Transfer(1))
        .step("copy sector", Step::Cpu(cpu.per_sector_us));
    out.push(predict(params, s));

    // Small delete: open, free the labels, update the name table.
    let mut s = Script::new("CFS small delete")
        .step("dispatch (delete)", Step::Cpu(cpu.op_overhead_us))
        .step("dispatch (inner open)", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    s = s
        .step("header decode", Step::Cpu(cpu.entry_us))
        .step("read header: latency", Step::Latency)
        .step("read header: 2 transfers", Step::Transfer(2))
        .step("free header labels", Step::RevolutionMinus(2))
        .step("free header labels: 2 transfers", Step::Transfer(2))
        .step("free data label: 1 transfer", Step::Transfer(1))
        .step("name table delete (3 cached nodes)", nodes(cpu, 3))
        .step("name table: seek", Step::ShortSeek)
        .step("name table: latency", Step::Latency)
        .step("name table: page write", Step::Transfer(4));
    out.push(predict(params, s));

    // Large delete (1 MB): additionally frees 2048 data labels in one
    // label-write pass over the data runs.
    let sectors = 2048u32;
    let mut s = Script::new("CFS large delete")
        .step("dispatch (delete)", Step::Cpu(cpu.op_overhead_us))
        .step("dispatch (inner open)", Step::Cpu(cpu.op_overhead_us));
    for (what, step) in name_lookup_cpu(cpu) {
        s = s.step(&what, step);
    }
    s = s
        .step("header decode", Step::Cpu(cpu.entry_us))
        .step("read header: seek", Step::AvgSeek)
        .step("read header: latency", Step::Latency)
        .step("read header: 2 transfers", Step::Transfer(2))
        .step("free header labels", Step::RevolutionMinus(2))
        .step("free header labels: 2 transfers", Step::Transfer(2))
        .step("free data labels: transfers", Step::Transfer(sectors));
    for _ in 0..crossings(params, sectors) {
        s = s.step("track-to-track", Step::ShortSeek);
    }
    s = s
        .step("name table delete (3 cached nodes)", nodes(cpu, 3))
        .step("name table: seek", Step::AvgSeek)
        .step("name table: latency", Step::Latency)
        .step("name table: page write", Step::Transfer(4));
    out.push(predict(params, s));

    // Read page: identical hardware, identical script (§7).
    let s = Script::new("CFS read page")
        .step("copy sector", Step::Cpu(cpu.per_sector_us))
        .step("latency", Step::Latency)
        .step("transfer", Step::Transfer(1));
    out.push(predict(params, s));

    // Large create (1 MB): verify pass, label pass, header writes, name
    // table, data pass, header rewrite — three full passes over the data.
    let sectors = 2050u32;
    let data = 2048u32;
    let mut s = Script::new("CFS large create")
        .step("dispatch", Step::Cpu(cpu.op_overhead_us))
        .step("version scan (2 cached nodes)", nodes(cpu, 2))
        .step("verify free: seek", Step::AvgSeek)
        .step("verify free: latency", Step::Latency)
        .step("verify free: transfers", Step::Transfer(sectors))
        .step("write header labels", Step::Latency)
        .step("write header labels: 2 transfers", Step::Transfer(2))
        .step("write data labels: transfers", Step::Transfer(data))
        .step("write header", Step::Latency)
        .step("write header: 2 transfers", Step::Transfer(2))
        .step("header encode", Step::Cpu(cpu.entry_us))
        .step("name table insert (3 cached nodes)", nodes(cpu, 3))
        .step("name table: seek", Step::AvgSeek)
        .step("name table: latency", Step::Latency)
        .step("name table: page write", Step::Transfer(4))
        .step("write data: seek", Step::AvgSeek)
        .step("write data: latency", Step::Latency)
        .step("write data: transfers", Step::Transfer(data))
        .step(
            "copy sectors",
            Step::Cpu(cpu.per_sector_us * data as Micros),
        )
        .step("rewrite header", Step::Latency)
        .step("rewrite header: 2 transfers", Step::Transfer(2));
    for _ in 0..3 * crossings(params, data) {
        s = s.step("track-to-track", Step::ShortSeek);
    }
    out.push(predict(params, s));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ModelParams {
        ModelParams::dorado_t300()
    }

    #[test]
    fn fsd_beats_cfs_on_every_metadata_op() {
        let p = params();
        let fsd = fsd_ops(&p);
        let cfs = cfs_ops(&p);
        for (f, c) in fsd.iter().zip(cfs.iter()) {
            if f.name.contains("read page") {
                // Identical hardware: identical cost (Table 2).
                assert_eq!(f.total_us, c.total_us, "{}", f.name);
            } else {
                assert!(
                    f.total_us < c.total_us,
                    "{} ({} µs) should beat {} ({} µs)",
                    f.name,
                    f.total_us,
                    c.name,
                    c.total_us
                );
            }
        }
    }

    #[test]
    fn speedup_shapes_match_table_2() {
        // The paper's speed-ups: small create 3.77, open 4.38, small
        // delete 14.5, large create 2.81. Our absolute constants differ,
        // but the ordering and rough magnitudes must hold.
        let p = params();
        let fsd = fsd_ops(&p);
        let cfs = cfs_ops(&p);
        let ratio = |name: &str| {
            let f = fsd.iter().find(|x| x.name.contains(name)).unwrap();
            let c = cfs.iter().find(|x| x.name.contains(name)).unwrap();
            c.total_us as f64 / f.total_us as f64
        };
        let create = ratio("small create");
        let open = ratio("open");
        let delete = ratio("small delete");
        let large = ratio("large create");
        assert!(create > 2.0, "small create speedup {create:.2}");
        assert!(open > 1.5, "open speedup {open:.2}");
        assert!(delete > 2.0, "small delete speedup {delete:.2}");
        assert!(
            (1.5..6.0).contains(&large),
            "large create speedup {large:.2}"
        );
        // The paper's delete speedup (14.5×) towers over the others
        // because the Dorado's CFS delete was nearly all disk time; with
        // our faster simulated CPU constants the delete and create
        // speedups land in the same band — the deviation is recorded in
        // EXPERIMENTS.md. The invariant that survives any constant
        // choice: FSD's delete does no disk I/O at all.
        let _ = delete;
    }

    #[test]
    fn fsd_open_and_delete_are_pure_cpu() {
        let p = params();
        for pred in fsd_ops(&p) {
            if pred.name.contains("open") && !pred.name.contains("read") {
                assert_eq!(pred.script.disk_us(&p.timing, p.cylinders), 0);
            }
            if pred.name.contains("delete") {
                assert_eq!(pred.script.disk_us(&p.timing, p.cylinders), 0);
            }
        }
    }

    #[test]
    fn renders_are_presentable() {
        let p = params();
        for pred in cfs_ops(&p) {
            let text = pred.script.render(&p.timing, p.cylinders);
            assert!(text.contains("total"));
        }
    }
}
