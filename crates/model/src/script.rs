//! Scripts: sequences of primitive disk costs.

use cedar_disk::clock::Micros;
use cedar_disk::DiskTiming;
use std::fmt;

/// A primitive cost in an operation script.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// A long seek of the given cylinder distance.
    Seek(u32),
    /// An average long seek (distance = cylinders / 3).
    AvgSeek,
    /// A short seek ("a few cylinders").
    ShortSeek,
    /// Average rotational latency: half a revolution.
    Latency,
    /// A lost revolution.
    Revolution,
    /// A lost revolution minus `n` sector transfers — the §6 example's
    /// "(revolution − 3 page transfers)" when rewriting sectors the head
    /// just passed.
    RevolutionMinus(u32),
    /// Transfer of `n` sectors.
    Transfer(u32),
    /// CPU time in microseconds.
    Cpu(Micros),
    /// Rotational wait to reach a sector `offset` sectors after where the
    /// previous I/O ended, given `cpu_us` of processing in between — the
    /// §6 "known rotational position" case for back-to-back operations
    /// on adjacent sectors.
    RotationalJoin {
        /// CPU time elapsed since the previous transfer ended.
        cpu_us: Micros,
        /// Sectors between the previous end and the next target.
        offset: u32,
    },
}

impl Step {
    /// Evaluates the step against a drive's timing, for a volume of
    /// `cylinders` cylinders.
    pub fn evaluate(&self, timing: &DiskTiming, cylinders: u32) -> Micros {
        match self {
            Step::Seek(d) => timing.seek_us(*d),
            Step::AvgSeek => timing.average_seek_us(cylinders),
            Step::ShortSeek => timing.short_seek_us,
            Step::Latency => timing.latency_us(),
            Step::Revolution => timing.revolution_us(),
            Step::RevolutionMinus(n) => timing
                .revolution_us()
                .saturating_sub(*n as Micros * timing.sector_us()),
            Step::Transfer(n) => *n as Micros * timing.sector_us(),
            Step::Cpu(us) => *us,
            Step::RotationalJoin { cpu_us, offset } => {
                let rev = timing.revolution_us();
                let target = *offset as Micros * timing.sector_us() % rev;
                let elapsed = cpu_us % rev;
                (target + rev - elapsed) % rev
            }
        }
    }

    /// Whether this step counts as disk time (vs CPU).
    pub fn is_disk(&self) -> bool {
        !matches!(self, Step::Cpu(_))
    }
}

/// A labelled sequence of steps modelling one operation.
#[derive(Clone, Debug, Default)]
pub struct Script {
    /// Human-readable operation name.
    pub name: String,
    /// The steps, each with a short annotation (the §6 scripts are
    /// written exactly this way: "1) Verify free pages: 1 seek, 1
    /// latency, 3 page transfers").
    pub steps: Vec<(String, Step)>,
}

impl Script {
    /// Creates an empty script.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            steps: Vec::new(),
        }
    }

    /// Appends a step with an annotation.
    pub fn step(mut self, what: &str, step: Step) -> Self {
        self.steps.push((what.to_string(), step));
        self
    }

    /// Appends several steps under one annotation.
    pub fn steps(mut self, what: &str, steps: &[Step]) -> Self {
        for s in steps {
            self.steps.push((what.to_string(), *s));
        }
        self
    }

    /// Total predicted time.
    pub fn total_us(&self, timing: &DiskTiming, cylinders: u32) -> Micros {
        self.steps
            .iter()
            .map(|(_, s)| s.evaluate(timing, cylinders))
            .sum()
    }

    /// Predicted disk time only.
    pub fn disk_us(&self, timing: &DiskTiming, cylinders: u32) -> Micros {
        self.steps
            .iter()
            .filter(|(_, s)| s.is_disk())
            .map(|(_, s)| s.evaluate(timing, cylinders))
            .sum()
    }

    /// Predicted CPU time only.
    pub fn cpu_us(&self) -> Micros {
        self.steps
            .iter()
            .map(|(_, s)| match s {
                Step::Cpu(us) => *us,
                _ => 0,
            })
            .sum()
    }

    /// Renders the script in the paper's style.
    pub fn render(&self, timing: &DiskTiming, cylinders: u32) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "{}:", self.name);
        for (i, (what, step)) in self.steps.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {}) {what}: {step} = {:.2} ms",
                i + 1,
                step.evaluate(timing, cylinders) as f64 / 1000.0
            );
        }
        let _ = writeln!(
            out,
            "  total = {:.2} ms",
            self.total_us(timing, cylinders) as f64 / 1000.0
        );
        out
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Seek(d) => write!(f, "seek({d})"),
            Step::AvgSeek => write!(f, "seek"),
            Step::ShortSeek => write!(f, "short seek"),
            Step::Latency => write!(f, "latency"),
            Step::Revolution => write!(f, "revolution"),
            Step::RevolutionMinus(n) => write!(f, "(revolution − {n} transfers)"),
            Step::Transfer(n) => write!(f, "{n} page transfers"),
            Step::Cpu(us) => write!(f, "cpu {us} µs"),
            Step::RotationalJoin { cpu_us, offset } => {
                write!(f, "rotational join (+{offset} sectors after {cpu_us} µs)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: DiskTiming = DiskTiming::TRIDENT_T300;
    const CYLS: u32 = 815;

    #[test]
    fn step_arithmetic() {
        assert_eq!(Step::Latency.evaluate(&T, CYLS), T.latency_us());
        assert_eq!(Step::Revolution.evaluate(&T, CYLS), T.revolution_us());
        assert_eq!(
            Step::RevolutionMinus(3).evaluate(&T, CYLS),
            T.revolution_us() - 3 * T.sector_us()
        );
        assert_eq!(Step::Transfer(5).evaluate(&T, CYLS), 5 * T.sector_us());
        assert_eq!(Step::Cpu(123).evaluate(&T, CYLS), 123);
    }

    #[test]
    fn script_totals_sum_steps() {
        let s = Script::new("demo")
            .step("position", Step::AvgSeek)
            .step("wait", Step::Latency)
            .step("move", Step::Transfer(3))
            .step("think", Step::Cpu(1000));
        assert_eq!(
            s.total_us(&T, CYLS),
            T.average_seek_us(CYLS) + T.latency_us() + 3 * T.sector_us() + 1000
        );
        assert_eq!(s.cpu_us(), 1000);
        assert_eq!(s.disk_us(&T, CYLS), s.total_us(&T, CYLS) - 1000);
    }

    #[test]
    fn render_mentions_every_step() {
        let s = Script::new("op")
            .step("a", Step::Latency)
            .step("b", Step::Revolution);
        let text = s.render(&T, CYLS);
        assert!(text.contains("1) a"));
        assert!(text.contains("2) b"));
        assert!(text.contains("total"));
    }
}
