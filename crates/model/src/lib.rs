//! The §6 analytic performance model.
//!
//! "The numbers of seeks, short seeks (a few cylinders), latencies (half a
//! revolution), lost revolutions, and transfer time were estimated by
//! analyzing and scripting the necessary operations. The scripts
//! incorporated any known locality, both rotational and radial."
//!
//! A [`script::Script`] is a sequence of those primitive costs; evaluating
//! it against a [`cedar_disk::DiskTiming`] (plus the CPU cost table the
//! paper admits it should not have ignored) yields a predicted operation
//! time. [`ops`] builds the scripts for the CFS and FSD operations the
//! paper analyzes — including the worked CFS-create example of §6 — and
//! the `model_validation` bench compares every prediction against the
//! simulator, reproducing the paper's "within five percent" claim.

#![deny(unsafe_code)]

pub mod ops;
pub mod script;

pub use ops::{cfs_ops, fsd_ops, Prediction};
pub use script::{Script, Step};
