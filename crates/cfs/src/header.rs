//! File header sectors.
//!
//! "In CFS, a file has two kinds of sectors: header sectors and data
//! sectors. Header sectors contain file properties (e.g., the file's name,
//! length and create date) and a run table describing the extents of the
//! file. The header sectors serve about the same purpose as the inodes do
//! in the UNIX file system, but have a different implementation." (§2).
//!
//! A header occupies [`HEADER_SECTORS`] consecutive sectors whose labels
//! mark them `Header` pages 0 and 1 of the owning file. Note the
//! redundancy Table 1 shows: the name and version live both here and in
//! the name table, and the run table can be recomputed from the labels —
//! which is exactly what the scavenger exploits.

use crate::error::CfsError;
use cedar_disk::SECTOR_BYTES;
use cedar_vol::codec::{Reader, Writer};
use cedar_vol::{FileName, RunTable};

/// Consecutive sectors in a file header.
pub const HEADER_SECTORS: u32 = 2;

/// Bytes in an encoded header.
pub const HEADER_BYTES: usize = HEADER_SECTORS as usize * SECTOR_BYTES;

/// Magic number identifying a header.
pub const HEADER_MAGIC: u32 = 0xCF5_EAD0;

/// A decoded file header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileHeader {
    /// Unique id of the file (matches the labels and the name table).
    pub uid: u64,
    /// The file's name and version (replicating the name table — Table 1).
    pub name: FileName,
    /// Number of old versions to keep.
    pub keep: u32,
    /// Logical length in bytes.
    pub byte_size: u64,
    /// Creation time (simulated microseconds).
    pub create_time: u64,
    /// The file's data extents.
    pub run_table: RunTable,
}

impl FileHeader {
    /// Encodes into [`HEADER_BYTES`] bytes (two sectors).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(HEADER_MAGIC)
            .u64(self.uid)
            .str16(self.name.name.as_bytes())
            .u32(self.name.version)
            .u32(self.keep)
            .u64(self.byte_size)
            .u64(self.create_time)
            .bytes(&self.run_table.encode());
        let mut bytes = w.into_bytes();
        assert!(bytes.len() <= HEADER_BYTES, "header overflow");
        bytes.resize(HEADER_BYTES, 0);
        bytes
    }

    /// Decodes a header, verifying the magic.
    pub fn decode(bytes: &[u8]) -> Result<Self, CfsError> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| CfsError::Corrupt(format!("file header: {m}"));
        if r.u32().map_err(bad)? != HEADER_MAGIC {
            return Err(CfsError::Corrupt("bad header magic".into()));
        }
        let uid = r.u64().map_err(bad)?;
        let name_bytes = r.str16().map_err(bad)?.to_vec();
        let version = r.u32().map_err(bad)?;
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| CfsError::Corrupt("header name not UTF-8".into()))?;
        let name = FileName::new(name, version).map_err(CfsError::Corrupt)?;
        let keep = r.u32().map_err(bad)?;
        let byte_size = r.u64().map_err(bad)?;
        let create_time = r.u64().map_err(bad)?;
        let run_table = RunTable::decode(&mut r).map_err(bad)?;
        Ok(Self {
            uid,
            name,
            keep,
            byte_size,
            create_time,
            run_table,
        })
    }

    /// Maximum data runs a header can describe (limited by the two-sector
    /// size; creation fails with `NoSpace` if free space is so fragmented
    /// a file would need more).
    pub fn max_runs() -> usize {
        // Fixed fields worst case: 4 + 8 + (2 + 64) + 4 + 4 + 8 + 8 + 2.
        (HEADER_BYTES - 104) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_vol::Run;

    fn sample() -> FileHeader {
        FileHeader {
            uid: 0xDEAD_BEEF,
            name: FileName::new("docs/memo.tioga", 3).unwrap(),
            keep: 2,
            byte_size: 1234,
            create_time: 987654,
            run_table: RunTable::from_runs([Run::new(100, 3), Run::new(500, 1)]),
        }
    }

    #[test]
    fn roundtrip() {
        let h = sample();
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEADER_BYTES);
        assert_eq!(FileHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            FileHeader::decode(&bytes),
            Err(CfsError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample().encode();
        assert!(FileHeader::decode(&bytes[..16]).is_err());
    }

    #[test]
    fn max_runs_is_generous() {
        assert!(FileHeader::max_runs() > 50);
    }

    #[test]
    fn empty_file_header_roundtrip() {
        let h = FileHeader {
            uid: 1,
            name: FileName::new("empty", 1).unwrap(),
            keep: 0,
            byte_size: 0,
            create_time: 0,
            run_table: RunTable::new(),
        };
        assert_eq!(FileHeader::decode(&h.encode()).unwrap(), h);
    }
}
