//! The CFS file name table: entry encoding and the write-through page
//! store.
//!
//! Per Table 1, a CFS name-table entry for a local file holds only the
//! text name, version, keep, uid and the header page 0 disk address — the
//! interesting properties (length, dates) and the run table live in the
//! header sectors. Listing files therefore costs a header *read per file*
//! (Table 3: "list 100 files" is 146 I/Os in CFS and 3 in FSD).
//!
//! The page store is deliberately fragile, as the original was: pages are
//! written straight to disk, multi-sector and non-atomic, so a crash can
//! tear a page or land between the writes of a B-tree split (§5.3).

use crate::error::CfsError;
use crate::layout::{BootPage, CfsLayout, NT_PAGE_BYTES, NT_PAGE_SECTORS};
use cedar_btree::{PageId, PageStore, StoreError};
use cedar_disk::{Cpu, DiskError, Label, PageKind, SimDisk};
use cedar_vol::codec::{Reader, Writer};
use std::collections::HashMap;

/// A name-table entry (the value under a `name!version` key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NtEntry {
    /// The file's unique id.
    pub uid: u64,
    /// Disk address of header page 0.
    pub header_addr: u32,
    /// Number of old versions to keep.
    pub keep: u32,
}

impl NtEntry {
    /// Encodes the entry.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.uid).u32(self.header_addr).u32(self.keep);
        w.into_bytes()
    }

    /// Decodes an entry.
    pub fn decode(bytes: &[u8]) -> Result<Self, CfsError> {
        let mut r = Reader::new(bytes);
        let bad = |m: String| CfsError::Corrupt(format!("name table entry: {m}"));
        Ok(Self {
            uid: r.u64().map_err(bad)?,
            header_addr: r.u32().map_err(bad)?,
            keep: r.u32().map_err(bad)?,
        })
    }
}

/// The expected labels of name-table page `page`.
pub fn nt_labels(page: PageId) -> Vec<Label> {
    (0..NT_PAGE_SECTORS)
        .map(|i| Label::new(0, page * NT_PAGE_SECTORS + i, PageKind::NameTable))
        .collect()
}

fn to_store_err(e: DiskError) -> StoreError {
    match e {
        DiskError::Crashed => StoreError::Crashed,
        other => StoreError::Io(other.to_string()),
    }
}

/// The CFS name-table page store: write-through, label-checked, cached
/// in memory for reads.
pub struct CfsNtStore<'a> {
    /// The disk.
    pub disk: &'a mut SimDisk,
    /// CPU charger.
    pub cpu: &'a Cpu,
    /// Volume layout (for page addresses).
    pub layout: &'a CfsLayout,
    /// Page cache (all pages; write-through keeps it coherent).
    pub cache: &'a mut HashMap<PageId, Vec<u8>>,
    /// The boot page, holding the name-table page bitmap.
    pub boot: &'a mut BootPage,
    /// Set when the boot page must be rewritten (bitmap changed).
    pub boot_dirty: &'a mut bool,
}

impl PageStore for CfsNtStore<'_> {
    fn page_size(&self) -> usize {
        NT_PAGE_BYTES
    }

    fn read_page(&mut self, id: PageId) -> Result<Vec<u8>, StoreError> {
        self.cpu.btree_nodes(1);
        if let Some(page) = self.cache.get(&id) {
            return Ok(page.clone());
        }
        let data = self
            .disk
            .read_checked(
                self.layout.nt_sector(id),
                NT_PAGE_SECTORS as usize,
                &nt_labels(id),
            )
            .map_err(to_store_err)?;
        self.cache.insert(id, data.clone());
        Ok(data)
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError> {
        self.cpu.btree_nodes(1);
        // Write-through: the multi-sector write is the tearable operation
        // §5.3 describes.
        self.disk
            .write_checked(self.layout.nt_sector(id), data, &nt_labels(id))
            .map_err(to_store_err)?;
        self.cache.insert(id, data.to_vec());
        Ok(())
    }

    fn alloc_page(&mut self) -> Result<PageId, StoreError> {
        match self.boot.alloc_nt_page(self.layout.nt_pages) {
            Some(p) => {
                *self.boot_dirty = true;
                Ok(p)
            }
            None => Err(StoreError::Full),
        }
    }

    fn free_page(&mut self, id: PageId) -> Result<(), StoreError> {
        self.boot.free_nt_page(id);
        self.cache.remove(&id);
        *self.boot_dirty = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, DiskGeometry, SimClock};

    #[test]
    fn entry_roundtrip() {
        let e = NtEntry {
            uid: 77,
            header_addr: 1234,
            keep: 1,
        };
        assert_eq!(NtEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn entry_decode_rejects_truncation() {
        assert!(NtEntry::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn nt_labels_number_sectors_consecutively() {
        let ls = nt_labels(2);
        assert_eq!(ls.len(), 4);
        assert_eq!(ls[0].page, 8);
        assert_eq!(ls[3].page, 11);
        assert!(ls.iter().all(|l| l.kind == PageKind::NameTable));
    }

    #[test]
    fn store_roundtrips_through_disk_and_cache() {
        let clock = SimClock::new();
        let mut disk = SimDisk::tiny();
        let cpu = Cpu::new(clock, CpuModel::FREE);
        let layout = CfsLayout::compute(&DiskGeometry::TINY, 8);
        let mut cache = HashMap::new();
        let mut boot = BootPage::new(layout.nt_pages);
        let mut dirty = false;
        // Label the NT region first, as format() does.
        for p in 0..layout.nt_pages {
            disk.write_labels(layout.nt_sector(p), &nt_labels(p), None)
                .unwrap();
        }
        let mut store = CfsNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            cache: &mut cache,
            boot: &mut boot,
            boot_dirty: &mut dirty,
        };
        let id = store.alloc_page().unwrap();
        assert!(*store.boot_dirty);
        let page = vec![0xAB; NT_PAGE_BYTES];
        store.write_page(id, &page).unwrap();
        assert_eq!(store.read_page(id).unwrap(), page);
        // A second read hits the cache: no new disk ops.
        let reads_before = store.disk.stats().reads;
        store.read_page(id).unwrap();
        assert_eq!(store.disk.stats().reads, reads_before);
    }

    #[test]
    fn store_alloc_exhaustion_is_full() {
        let clock = SimClock::new();
        let mut disk = SimDisk::tiny();
        let cpu = Cpu::new(clock, CpuModel::FREE);
        let layout = CfsLayout::compute(&DiskGeometry::TINY, 8);
        let mut cache = HashMap::new();
        let mut boot = BootPage::new(layout.nt_pages);
        let mut dirty = false;
        let mut store = CfsNtStore {
            disk: &mut disk,
            cpu: &cpu,
            layout: &layout,
            cache: &mut cache,
            boot: &mut boot,
            boot_dirty: &mut dirty,
        };
        for _ in 0..8 {
            store.alloc_page().unwrap();
        }
        assert_eq!(store.alloc_page(), Err(StoreError::Full));
    }
}
