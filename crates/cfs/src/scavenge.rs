//! The scavenger: CFS's crash recovery.
//!
//! "It is possible to scavenge the file system: by reading the labels and
//! interpreting some of the disk sectors, file system structural
//! information, such as the free page map and the file name table, can be
//! reconstructed." (§2). The price is a full pass over every label on the
//! volume plus a random-access pass over every file header plus a rebuild
//! of the whole name table — "a slow operation (an hour or more on a 300
//! megabyte disk)" (§5.3). FSD's two-second log redo exists to kill this.
//!
//! Faithfully to the original (§5.8), the run tables are reconstructed
//! *from the labels*; the header contributes the name and properties. A
//! file whose header is lost loses its identity and its sectors are freed
//! (relabelled) as orphans.

use crate::error::CfsError;
use crate::header::{FileHeader, HEADER_SECTORS};
use crate::layout::BootPage;
use crate::nametable::{CfsNtStore, NtEntry};
use crate::volume::CfsVolume;
use crate::Result;
use cedar_btree::BTree;
use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy};
use cedar_disk::{clock::Micros, Label, PageKind};
use cedar_vol::{Run, RunTable, Vam};
use std::collections::{HashMap, HashSet};

/// What a scavenge found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScavengeReport {
    /// Files whose header and labels were recovered into the new name
    /// table.
    pub files_recovered: usize,
    /// Headers that were unreadable or undecodable (their files are lost).
    pub damaged_headers: usize,
    /// Sectors owned by no surviving file, relabelled free.
    pub orphan_sectors: u32,
    /// Simulated time the scavenge took.
    pub duration_us: Micros,
    /// Disk operations performed.
    pub ios: u64,
}

impl CfsVolume {
    /// Scavenges the volume: rebuilds the name table and the VAM from the
    /// labels and headers. This is the *only* recovery CFS has after a
    /// crash corrupts the name table or invalidates the VAM hint.
    pub fn scavenge(&mut self) -> Result<ScavengeReport> {
        let mut report = ScavengeReport::default();
        let (disk, cpu, layout, ..) = self.parts();
        let t0 = disk.clock().now();
        let io0 = disk.stats().total_ops();
        cpu.op();

        let geometry = *disk.geometry();
        let spt = geometry.sectors_per_track as usize;
        let total = geometry.total_sectors();

        // Pass 1: read every label. The per-track requests are submitted
        // as one batch; the scheduler coalesces the adjacent tracks into
        // maximal sequential transfers.
        let mut scan = IoBatch::new();
        let mut addr = 0u32;
        while addr < total {
            let n = spt.min((total - addr) as usize);
            scan.push(IoOp::ReadLabels { start: addr, n });
            addr += n as u32;
        }
        let mut labels: Vec<Label> = Vec::with_capacity(total as usize);
        for out in sched::execute(disk, IoPolicy::Cscan, &scan)? {
            labels.extend(
                out.into_labels()
                    .ok_or_else(|| CfsError::Corrupt("label scan output shape".into()))?,
            );
        }
        cpu.labels(total as u64);

        // Interpret: collect per-file sectors (page-numbered) and header
        // addresses.
        let mut file_sectors: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        let mut headers: Vec<(u64, u32)> = Vec::new();
        for (addr, label) in labels.iter().enumerate() {
            let addr = addr as u32;
            match label.kind {
                PageKind::Data => {
                    file_sectors
                        .entry(label.uid)
                        .or_default()
                        .push((label.page, addr));
                }
                PageKind::Header if label.page == 0 => headers.push((label.uid, addr)),
                _ => {}
            }
        }

        // Pass 2: read every header (random access across the volume —
        // exactly where the C-SCAN sweep pays off). Labels were already
        // read in pass 1, so each header is validated against that
        // snapshot in memory; `ReadAllowDamage` keeps per-header
        // fallibility without aborting the batch.
        headers.retain(|&(_, haddr)| {
            if haddr + HEADER_SECTORS <= total {
                true
            } else {
                report.damaged_headers += 1;
                false
            }
        });
        let mut fetch = IoBatch::new();
        for &(_, haddr) in &headers {
            fetch.push(IoOp::ReadAllowDamage {
                start: haddr,
                n: HEADER_SECTORS as usize,
            });
        }
        let header_raw = sched::execute(disk, IoPolicy::Cscan, &fetch)?;
        let mut recovered: Vec<(FileHeader, u32)> = Vec::new();
        let mut live: HashSet<u64> = HashSet::new();
        for (&(uid, haddr), out) in headers.iter().zip(header_raw) {
            let Some((raw, mask)) = out.into_data_mask() else {
                report.damaged_headers += 1;
                continue;
            };
            let labels_ok = (0..HEADER_SECTORS)
                .all(|i| labels[(haddr + i) as usize] == Label::new(uid, i, PageKind::Header));
            let decoded = if labels_ok && mask.iter().all(|&damaged| !damaged) {
                FileHeader::decode(&raw)
            } else {
                Err(CfsError::Corrupt("damaged or mislabelled header".into()))
            };
            let header = match decoded {
                Ok(h) => h,
                Err(_) => {
                    report.damaged_headers += 1;
                    continue;
                }
            };
            cpu.entries(1);
            // Rebuild the run table from the labels: the labels are the
            // ground truth for which sectors the file owns.
            let mut sectors = file_sectors.remove(&uid).unwrap_or_default();
            sectors.sort_unstable();
            let rt = RunTable::from_runs(sectors.iter().map(|&(_, addr)| Run::new(addr, 1)));
            let mut header = header;
            let label_pages = rt.pages();
            if label_pages < header.run_table.pages() {
                // Header claims more than the labels prove: trust labels,
                // shrink the byte count accordingly.
                header.byte_size = header
                    .byte_size
                    .min(label_pages as u64 * cedar_disk::SECTOR_BYTES_U64);
            }
            header.run_table = rt;
            live.insert(uid);
            recovered.push((header, haddr));
        }

        // Build the new VAM from the labels: everything not owned by a
        // surviving file (and outside the system areas) is free.
        let mut vam = Vam::new_all_allocated(total);
        let (dlo, dhi) = layout.data_area();
        let mut orphans: Vec<u32> = Vec::new();
        for addr in dlo..dhi {
            let label = labels[addr as usize];
            let orphan = match label.kind {
                PageKind::Free => {
                    vam.free_run(Run::new(addr, 1));
                    false
                }
                PageKind::Data | PageKind::Header | PageKind::Leader => !live.contains(&label.uid),
                _ => false,
            };
            if orphan {
                orphans.push(addr);
                vam.free_run(Run::new(addr, 1));
            }
        }

        // Pass 3: relabel orphaned sectors free — all runs in one
        // scheduler window (they are disjoint by construction).
        report.orphan_sectors = u32::try_from(orphans.len()).unwrap_or(u32::MAX);
        let mut relabel = IoBatch::new();
        let mut i = 0;
        while i < orphans.len() {
            let start = orphans[i];
            let mut len = 1u32;
            while i + (len as usize) < orphans.len() && orphans[i + len as usize] == start + len {
                len += 1;
            }
            relabel.push(IoOp::WriteLabels {
                start,
                labels: vec![Label::FREE; len as usize],
                expected: None,
            });
            i += len as usize;
        }
        sched::execute(disk, IoPolicy::Cscan, &relabel)?;

        // Rebuild the name table from scratch, write-through, in disk
        // discovery order (effectively random name order — part of why
        // the real scavenger was so slow).
        let mut boot = BootPage::new(layout.nt_pages);
        let mut cache = HashMap::new();
        let mut boot_dirty = false;
        let layout_copy = *layout;
        let mut tree = {
            let mut store = CfsNtStore {
                disk,
                cpu,
                layout: &layout_copy,
                cache: &mut cache,
                boot: &mut boot,
                boot_dirty: &mut boot_dirty,
            };
            BTree::create(&mut store)?
        };
        for (header, haddr) in &recovered {
            let entry = NtEntry {
                uid: header.uid,
                header_addr: *haddr,
                keep: header.keep,
            };
            // Rewrite the header too: the run table may have been
            // corrected from the labels.
            let hlabels: Vec<Label> = (0..HEADER_SECTORS)
                .map(|i| Label::new(header.uid, i, PageKind::Header))
                .collect();
            disk.write_checked(*haddr, &header.encode(), &hlabels)?;
            let mut store = CfsNtStore {
                disk,
                cpu,
                layout: &layout_copy,
                cache: &mut cache,
                boot: &mut boot,
                boot_dirty: &mut boot_dirty,
            };
            tree.insert(&mut store, &header.name.to_key(), &entry.encode())?;
            cpu.entries(1);
        }
        report.files_recovered = recovered.len();

        // Install the rebuilt state (the boot count carries forward inside
        // `rebuild_after_scavenge`).
        boot.nt_root = tree.root();
        self.rebuild_after_scavenge(vam, boot, tree, cache);
        self.finish_scavenge_boot_page()?;

        let clock = self.clock();
        report.duration_us = clock.now() - t0;
        report.ios = self.disk_stats().total_ops() - io0;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::CfsConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn tiny() -> CfsVolume {
        CfsVolume::format(
            SimDisk::tiny(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
            },
        )
        .unwrap()
    }

    #[test]
    fn scavenge_recovers_files_after_name_table_loss() {
        let mut v = tiny();
        let mut datas = Vec::new();
        for i in 0..10 {
            let data = vec![i as u8 + 1; 700];
            v.create(&format!("dir/f{i}"), &data).unwrap();
            datas.push(data);
        }
        // Smash the whole name table region on disk, then reboot so the
        // in-memory page cache cannot mask the damage.
        let nt_start = v.layout().nt_start;
        let nt_len = v.layout().nt_pages * 4;
        for s in nt_start..nt_start + nt_len {
            v.disk_mut().wild_write(s, 0xFF);
        }
        let (mut v, _) = CfsVolume::boot(
            v.into_disk(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
            },
        )
        .unwrap();
        assert!(v.open("dir/f0", None).is_err());

        let report = v.scavenge().unwrap();
        assert_eq!(report.files_recovered, 10);
        assert_eq!(report.damaged_headers, 0);
        for (i, data) in datas.iter().enumerate() {
            let f = v.open(&format!("dir/f{i}"), None).unwrap();
            assert_eq!(&v.read_file(&f).unwrap(), data);
        }
    }

    #[test]
    fn scavenge_frees_orphans() {
        let mut v = tiny();
        v.create("live", b"keep me").unwrap();
        // Simulate a crash mid-create: data labels claimed, no header.
        let orphan_uid = 0xDEAD;
        v.disk_mut()
            .write_labels(
                1000,
                &[
                    cedar_disk::Label::new(orphan_uid, 0, PageKind::Data),
                    cedar_disk::Label::new(orphan_uid, 1, PageKind::Data),
                ],
                None,
            )
            .unwrap();
        let report = v.scavenge().unwrap();
        assert_eq!(report.files_recovered, 1);
        assert_eq!(report.orphan_sectors, 2);
        // The orphan sectors are free again.
        assert_eq!(v.disk_mut().peek_label(1000), cedar_disk::Label::FREE);
    }

    #[test]
    fn scavenge_rebuilds_vam() {
        let mut v = tiny();
        v.create("a", &vec![1; 2048]).unwrap();
        v.create("b", &vec![2; 1024]).unwrap();
        let free_before = v.free_sectors();
        // Crash (no shutdown): VAM hint lost.
        let mut disk = v.into_disk();
        disk.crash_now();
        disk.reboot();
        let (mut v2, loaded) = CfsVolume::boot(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
            },
        )
        .unwrap();
        assert!(!loaded);
        v2.scavenge().unwrap();
        assert_eq!(v2.free_sectors(), free_before);
        // And allocation works again.
        v2.create("c", b"new").unwrap();
    }

    #[test]
    fn scavenge_drops_files_with_damaged_headers() {
        let mut v = tiny();
        let f = v.create("victim", &vec![7; 1024]).unwrap();
        v.create("survivor", b"ok").unwrap();
        v.disk_mut().damage_sector(f.header_addr);
        let report = v.scavenge().unwrap();
        assert_eq!(report.damaged_headers, 1);
        assert_eq!(report.files_recovered, 1);
        assert!(v.open("victim", None).is_err());
        // The victim's data sectors were orphaned and freed.
        assert!(report.orphan_sectors >= 2);
        let s = v.open("survivor", None).unwrap();
        assert_eq!(v.read_file(&s).unwrap(), b"ok");
    }

    #[test]
    fn scavenge_is_expensive_in_time() {
        let mut v = tiny();
        for i in 0..20 {
            v.create(&format!("f{i}"), &vec![0; 512]).unwrap();
        }
        let sector_us = v.disk_mut().timing().sector_us();
        let report = v.scavenge().unwrap();
        // Batched submission coalesces the label sweep into a handful of
        // transfers, but the cost floor stands: every sector's label
        // crosses the head, plus every header, plus the NT rebuild.
        assert!(report.ios >= 20, "ios = {}", report.ios);
        assert!(
            report.duration_us >= 2048 * sector_us,
            "duration = {}",
            report.duration_us
        );
    }
}
