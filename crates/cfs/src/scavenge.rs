//! The scavenger: CFS's crash recovery.
//!
//! "It is possible to scavenge the file system: by reading the labels and
//! interpreting some of the disk sectors, file system structural
//! information, such as the free page map and the file name table, can be
//! reconstructed." (§2). The price is a full pass over every label on the
//! volume plus a random-access pass over every file header plus a rebuild
//! of the whole name table — "a slow operation (an hour or more on a 300
//! megabyte disk)" (§5.3). FSD's two-second log redo exists to kill this.
//!
//! Faithfully to the original (§5.8), the run tables are reconstructed
//! *from the labels*; the header contributes the name and properties. A
//! file whose header is lost loses its identity and its sectors are freed
//! (relabelled) as orphans.

use crate::error::CfsError;
use crate::header::{FileHeader, HEADER_SECTORS};
use crate::layout::BootPage;
use crate::nametable::{CfsNtStore, NtEntry};
use crate::volume::CfsVolume;
use crate::Result;
use cedar_btree::BTree;
use cedar_disk::sched::{self, IoBatch, IoOp, IoPolicy};
use cedar_disk::{clock::Micros, Label, PageKind};
use cedar_vol::{Run, RunTable, Vam};
use std::collections::{BTreeMap, HashMap, HashSet};

/// What a scavenge found and did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ScavengeReport {
    /// Files whose header and labels were recovered into the new name
    /// table.
    pub files_recovered: usize,
    /// Headers that were unreadable or undecodable (their files are lost).
    pub damaged_headers: usize,
    /// Sectors owned by no surviving file, relabelled free.
    pub orphan_sectors: u32,
    /// Simulated time the scavenge took.
    pub duration_us: Micros,
    /// Disk operations performed.
    pub ios: u64,
}

impl CfsVolume {
    /// Scavenges the volume: rebuilds the name table and the VAM from the
    /// labels and headers. This is the *only* recovery CFS has after a
    /// crash corrupts the name table or invalidates the VAM hint.
    pub fn scavenge(&mut self) -> Result<ScavengeReport> {
        let mut report = ScavengeReport::default();
        let workers = self.scavenge_workers.max(1);
        let (disk, cpu, layout, ..) = self.parts();
        let t0 = disk.clock().now();
        let io0 = disk.stats().total_ops();
        cpu.op();

        let geometry = *disk.geometry();
        let spt = geometry.sectors_per_track as usize;
        let total = geometry.total_sectors();

        // Pass 1: read every label. The per-track requests are submitted
        // as one batch; the scheduler coalesces the adjacent tracks into
        // maximal sequential transfers.
        let mut scan = IoBatch::new();
        let mut addr = 0u32;
        while addr < total {
            let n = spt.min((total - addr) as usize);
            scan.push(IoOp::ReadLabels { start: addr, n });
            addr += n as u32;
        }
        let mut labels: Vec<Label> = Vec::with_capacity(total as usize);
        for out in sched::execute(disk, IoPolicy::Cscan, &scan)? {
            labels.extend(
                out.into_labels()
                    .ok_or_else(|| CfsError::Corrupt("label scan output shape".into()))?,
            );
        }
        // Interpret: collect per-file sectors (page-numbered) and header
        // addresses. This is the scavenger's dominant CPU cost (the Mesa
        // label interpretation, §5.3), so with `workers > 1` the label
        // snapshot shards into contiguous address ranges, one worker
        // each, charged as the critical path; shards merge back in
        // address order, so the result is identical to the serial pass.
        let mut file_sectors: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
        let mut headers: Vec<(u64, u32)> = Vec::new();
        if workers <= 1 {
            cpu.labels(total as u64);
            interpret_labels(&labels, 0, &mut file_sectors, &mut headers);
        } else {
            let t1 = disk.clock().now();
            let shard_len = (total as usize).div_ceil(workers).max(1);
            let mut worker_us = Vec::new();
            let joined = std::thread::scope(|s| {
                let handles: Vec<_> = labels
                    .chunks(shard_len)
                    .enumerate()
                    .map(|(i, shard)| {
                        let mut wcpu = cpu.worker();
                        s.spawn(move || {
                            let mut fs = HashMap::new();
                            let mut hs = Vec::new();
                            wcpu.labels(shard.len() as u64);
                            interpret_labels(shard, (i * shard_len) as u32, &mut fs, &mut hs);
                            (fs, hs, wcpu.into_us())
                        })
                    })
                    .collect::<Vec<_>>();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            let mut shards = Vec::with_capacity(joined.len());
            for r in joined {
                let (fs, hs, us) = join_worker(r)?;
                worker_us.push(us);
                shards.push((fs, hs));
            }
            cpu.join_parallel(t1, &worker_us);
            for (fs, hs) in shards {
                for (uid, mut v) in fs {
                    file_sectors.entry(uid).or_default().append(&mut v);
                }
                headers.extend(hs);
            }
        }

        // Pass 2: read every header (random access across the volume —
        // exactly where the C-SCAN sweep pays off). Labels were already
        // read in pass 1, so each header is validated against that
        // snapshot in memory; `ReadAllowDamage` keeps per-header
        // fallibility without aborting the batch.
        headers.retain(|&(_, haddr)| {
            if haddr + HEADER_SECTORS <= total {
                true
            } else {
                report.damaged_headers += 1;
                false
            }
        });
        let mut fetch = IoBatch::new();
        for &(_, haddr) in &headers {
            fetch.push(IoOp::ReadAllowDamage {
                start: haddr,
                n: HEADER_SECTORS as usize,
            });
        }
        let header_raw = sched::execute(disk, IoPolicy::Cscan, &fetch)?;
        let outs: Vec<Option<(Vec<u8>, Vec<bool>)>> = header_raw
            .into_iter()
            .map(|out| out.into_data_mask())
            .collect();
        // Decode/verify each header against the label snapshot — pure
        // per-header work, sharded across workers like the label pass.
        // The cross-file steps (run-table rebuild, liveness) stay in the
        // in-order merge below.
        let decoded: Vec<Option<FileHeader>> = if workers <= 1 {
            headers
                .iter()
                .zip(&outs)
                .map(|(&(uid, haddr), out)| {
                    let h = decode_header(&labels, uid, haddr, out.as_ref());
                    if h.is_some() {
                        cpu.entries(1);
                    }
                    h
                })
                .collect()
        } else {
            let t2 = disk.clock().now();
            let shard_len = headers.len().div_ceil(workers).max(1);
            let mut worker_us = Vec::new();
            let joined = std::thread::scope(|s| {
                let labels = &labels;
                let handles: Vec<_> = headers
                    .chunks(shard_len)
                    .zip(outs.chunks(shard_len))
                    .map(|(hs, os)| {
                        let mut wcpu = cpu.worker();
                        s.spawn(move || {
                            let v: Vec<Option<FileHeader>> = hs
                                .iter()
                                .zip(os)
                                .map(|(&(uid, haddr), out)| {
                                    let h = decode_header(labels, uid, haddr, out.as_ref());
                                    if h.is_some() {
                                        wcpu.entries(1);
                                    }
                                    h
                                })
                                .collect();
                            (v, wcpu.into_us())
                        })
                    })
                    .collect::<Vec<_>>();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            let mut all = Vec::with_capacity(headers.len());
            for r in joined {
                let (v, us) = join_worker(r)?;
                worker_us.push(us);
                all.extend(v);
            }
            cpu.join_parallel(t2, &worker_us);
            all
        };
        let mut recovered: Vec<(FileHeader, u32)> = Vec::new();
        let mut live: HashSet<u64> = HashSet::new();
        for (&(uid, haddr), header) in headers.iter().zip(decoded) {
            let Some(header) = header else {
                report.damaged_headers += 1;
                continue;
            };
            // Rebuild the run table from the labels: the labels are the
            // ground truth for which sectors the file owns.
            let mut sectors = file_sectors.remove(&uid).unwrap_or_default();
            sectors.sort_unstable();
            let rt = RunTable::from_runs(sectors.iter().map(|&(_, addr)| Run::new(addr, 1)));
            let mut header = header;
            let label_pages = rt.pages();
            if label_pages < header.run_table.pages() {
                // Header claims more than the labels prove: trust labels,
                // shrink the byte count accordingly.
                header.byte_size = header
                    .byte_size
                    .min(label_pages as u64 * cedar_disk::SECTOR_BYTES_U64);
            }
            header.run_table = rt;
            live.insert(uid);
            recovered.push((header, haddr));
        }

        // Build the new VAM from the labels: everything not owned by a
        // surviving file (and outside the system areas) is free. With
        // `workers > 1` the data area shards into contiguous ranges,
        // each worker building a partial free map, merged back with a
        // word-level OR (orphan lists concatenate in shard order, so
        // they stay address-ascending).
        let (dlo, dhi) = layout.data_area();
        let (vam, orphans) = if workers <= 1 {
            vam_shard(&labels, &live, total, dlo, dhi)
        } else {
            let span = (dhi - dlo).div_ceil(workers as u32).max(1);
            let joined = std::thread::scope(|s| {
                let (labels, live) = (&labels, &live);
                let handles: Vec<_> = (0..workers as u32)
                    .map(|i| {
                        let lo = (dlo + i * span).min(dhi);
                        let hi = (lo + span).min(dhi);
                        s.spawn(move || vam_shard(labels, live, total, lo, hi))
                    })
                    .collect::<Vec<_>>();
                handles.into_iter().map(|h| h.join()).collect::<Vec<_>>()
            });
            let mut vam = Vam::new_all_allocated(total);
            let mut orphans = Vec::new();
            for r in joined {
                let (part, mut os) = join_worker(r)?;
                vam.merge_or(&part);
                orphans.append(&mut os);
            }
            (vam, orphans)
        };

        // Pass 3: relabel orphaned sectors free — all runs in one
        // scheduler window (they are disjoint by construction).
        report.orphan_sectors = u32::try_from(orphans.len()).unwrap_or(u32::MAX);
        let mut relabel = IoBatch::new();
        let mut i = 0;
        while i < orphans.len() {
            let start = orphans[i];
            let mut len = 1u32;
            while i + (len as usize) < orphans.len() && orphans[i + len as usize] == start + len {
                len += 1;
            }
            relabel.push(IoOp::WriteLabels {
                start,
                labels: vec![Label::FREE; len as usize],
                expected: None,
            });
            i += len as usize;
        }
        sched::execute(disk, IoPolicy::Cscan, &relabel)?;

        // Rewrite each recovered header (its run table may have been
        // corrected from the labels), then rebuild the name table
        // bottom-up: sort the entries once and bulk-load the B-tree —
        // one page write per node instead of N root-to-leaf insertions
        // in disk discovery order (part of why the real scavenger was
        // so slow).
        let mut boot = BootPage::new(layout.nt_pages);
        let mut cache = HashMap::new();
        let mut boot_dirty = false;
        let layout_copy = *layout;
        let mut pairs: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for (header, haddr) in &recovered {
            // Header addresses were derived from the label scan, but the
            // rewrite is a raw disk write: re-check the range so a bad
            // address degrades to a reported loss, not a wild write.
            if *haddr > total.saturating_sub(HEADER_SECTORS) {
                report.damaged_headers += 1;
                continue;
            }
            let entry = NtEntry {
                uid: header.uid,
                header_addr: *haddr,
                keep: header.keep,
            };
            let hlabels: Vec<Label> = (0..HEADER_SECTORS)
                .map(|i| Label::new(header.uid, i, PageKind::Header))
                .collect();
            disk.write_checked(*haddr, &header.encode(), &hlabels)?;
            pairs.insert(header.name.to_key(), entry.encode());
        }
        cpu.entries(pairs.len() as u64);
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = pairs.into_iter().collect();
        let tree = {
            let mut store = CfsNtStore {
                disk,
                cpu,
                layout: &layout_copy,
                cache: &mut cache,
                boot: &mut boot,
                boot_dirty: &mut boot_dirty,
            };
            BTree::bulk_load(&mut store, &pairs)?
        };
        report.files_recovered = recovered.len();

        // Install the rebuilt state (the boot count carries forward inside
        // `rebuild_after_scavenge`).
        boot.nt_root = tree.root();
        self.rebuild_after_scavenge(vam, boot, tree, cache);
        self.finish_scavenge_boot_page()?;

        let clock = self.clock();
        report.duration_us = clock.now() - t0;
        report.ios = self.disk_stats().total_ops() - io0;
        Ok(report)
    }
}

/// Converts a scavenge worker's join result into a typed error: a
/// panicked worker must degrade into [`CfsError`], never abort the
/// recovery that is already underway.
fn join_worker<T>(r: std::thread::Result<T>) -> std::result::Result<T, CfsError> {
    r.map_err(|_| CfsError::Corrupt("scavenge worker panicked".into()))
}

/// Interprets one contiguous shard of the label snapshot (starting at
/// absolute address `base`): per-file data sectors keyed by uid and
/// header-page-0 addresses, both in address order within the shard.
fn interpret_labels(
    labels: &[Label],
    base: u32,
    file_sectors: &mut HashMap<u64, Vec<(u32, u32)>>,
    headers: &mut Vec<(u64, u32)>,
) {
    for (i, label) in labels.iter().enumerate() {
        let addr = base + i as u32;
        match label.kind {
            PageKind::Data => {
                file_sectors
                    .entry(label.uid)
                    .or_default()
                    .push((label.page, addr));
            }
            PageKind::Header if label.page == 0 => headers.push((label.uid, addr)),
            _ => {}
        }
    }
}

/// Pure per-header validation and decode against the label snapshot:
/// every header sector's label must match and read clean.
fn decode_header(
    labels: &[Label],
    uid: u64,
    haddr: u32,
    out: Option<&(Vec<u8>, Vec<bool>)>,
) -> Option<FileHeader> {
    let (raw, mask) = out?;
    let labels_ok = (0..HEADER_SECTORS)
        .all(|i| labels.get((haddr + i) as usize) == Some(&Label::new(uid, i, PageKind::Header)));
    if !labels_ok || mask.iter().any(|&damaged| damaged) {
        return None;
    }
    FileHeader::decode(raw).ok()
}

/// Builds the free map and orphan list for one contiguous range of the
/// data area: free-labelled sectors are free, sectors owned by no
/// surviving file are orphans (freed and relabelled by the caller).
fn vam_shard(
    labels: &[Label],
    live: &HashSet<u64>,
    total_sectors: u32,
    lo: u32,
    hi: u32,
) -> (Vam, Vec<u32>) {
    let mut vam = Vam::new_all_allocated(total_sectors);
    let mut orphans = Vec::new();
    for addr in lo..hi {
        let label = labels[addr as usize];
        let orphan = match label.kind {
            PageKind::Free => {
                vam.free_run(Run::new(addr, 1));
                false
            }
            PageKind::Data | PageKind::Header | PageKind::Leader => !live.contains(&label.uid),
            _ => false,
        };
        if orphan {
            orphans.push(addr);
            vam.free_run(Run::new(addr, 1));
        }
    }
    (vam, orphans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::volume::CfsConfig;
    use cedar_disk::{CpuModel, SimDisk};

    fn tiny() -> CfsVolume {
        CfsVolume::format(
            SimDisk::tiny(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn scavenge_recovers_files_after_name_table_loss() {
        let mut v = tiny();
        let mut datas = Vec::new();
        for i in 0..10 {
            let data = vec![i as u8 + 1; 700];
            v.create(&format!("dir/f{i}"), &data).unwrap();
            datas.push(data);
        }
        // Smash the whole name table region on disk, then reboot so the
        // in-memory page cache cannot mask the damage.
        let nt_start = v.layout().nt_start;
        let nt_len = v.layout().nt_pages * 4;
        for s in nt_start..nt_start + nt_len {
            v.disk_mut().wild_write(s, 0xFF);
        }
        let (mut v, _) = CfsVolume::boot(
            v.into_disk(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        assert!(v.open("dir/f0", None).is_err());

        let report = v.scavenge().unwrap();
        assert_eq!(report.files_recovered, 10);
        assert_eq!(report.damaged_headers, 0);
        for (i, data) in datas.iter().enumerate() {
            let f = v.open(&format!("dir/f{i}"), None).unwrap();
            assert_eq!(&v.read_file(&f).unwrap(), data);
        }
    }

    #[test]
    fn scavenge_frees_orphans() {
        let mut v = tiny();
        v.create("live", b"keep me").unwrap();
        // Simulate a crash mid-create: data labels claimed, no header.
        let orphan_uid = 0xDEAD;
        v.disk_mut()
            .write_labels(
                1000,
                &[
                    cedar_disk::Label::new(orphan_uid, 0, PageKind::Data),
                    cedar_disk::Label::new(orphan_uid, 1, PageKind::Data),
                ],
                None,
            )
            .unwrap();
        let report = v.scavenge().unwrap();
        assert_eq!(report.files_recovered, 1);
        assert_eq!(report.orphan_sectors, 2);
        // The orphan sectors are free again.
        assert_eq!(v.disk_mut().peek_label(1000), cedar_disk::Label::FREE);
    }

    #[test]
    fn scavenge_rebuilds_vam() {
        let mut v = tiny();
        v.create("a", &vec![1; 2048]).unwrap();
        v.create("b", &vec![2; 1024]).unwrap();
        let free_before = v.free_sectors();
        // Crash (no shutdown): VAM hint lost.
        let mut disk = v.into_disk();
        disk.crash_now();
        disk.reboot();
        let (mut v2, loaded) = CfsVolume::boot(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        assert!(!loaded);
        v2.scavenge().unwrap();
        assert_eq!(v2.free_sectors(), free_before);
        // And allocation works again.
        v2.create("c", b"new").unwrap();
    }

    #[test]
    fn scavenge_drops_files_with_damaged_headers() {
        let mut v = tiny();
        let f = v.create("victim", &vec![7; 1024]).unwrap();
        v.create("survivor", b"ok").unwrap();
        v.disk_mut().damage_sector(f.header_addr);
        let report = v.scavenge().unwrap();
        assert_eq!(report.damaged_headers, 1);
        assert_eq!(report.files_recovered, 1);
        assert!(v.open("victim", None).is_err());
        // The victim's data sectors were orphaned and freed.
        assert!(report.orphan_sectors >= 2);
        let s = v.open("survivor", None).unwrap();
        assert_eq!(v.read_file(&s).unwrap(), b"ok");
    }

    /// The parallel scavenger must beat the serial one by at least this
    /// factor on a label-interpretation-bound (Dorado CPU) volume.
    const PARALLEL_SPEEDUP_FLOOR: u64 = 2;

    #[test]
    fn scavenge_is_expensive_in_time() {
        let mut v = tiny();
        for i in 0..20 {
            v.create(&format!("f{i}"), &vec![0; 512]).unwrap();
        }
        let sector_us = v.disk_mut().timing().sector_us();
        let report = v.scavenge().unwrap();
        // Batched submission coalesces the label sweep into a handful of
        // transfers, but the cost floor stands: every sector's label
        // crosses the head, plus every header, plus the NT rebuild.
        assert!(report.ios >= 20, "ios = {}", report.ios);
        assert!(
            report.duration_us >= 2048 * sector_us,
            "duration = {}",
            report.duration_us
        );

        // Comparative gate: with real (Dorado) CPU costs the label
        // interpretation dominates, so spreading it across workers must
        // cut the simulated scavenge time by the configured factor —
        // while recovering exactly the same state.
        let mut serial = CfsVolume::format(
            SimDisk::tiny(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::DORADO,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        for i in 0..20 {
            serial
                .create(&format!("f{i}"), &vec![i as u8; 512])
                .unwrap();
        }
        let disk = serial.into_disk();
        let parallel_disk = disk.clone();
        let (mut serial, _) = CfsVolume::boot(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::DORADO,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        let (mut parallel, _) = CfsVolume::boot(
            parallel_disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::DORADO,
                scavenge_workers: 8,
            },
        )
        .unwrap();
        let sr = serial.scavenge().unwrap();
        let pr = parallel.scavenge().unwrap();
        assert_eq!(sr.files_recovered, pr.files_recovered);
        assert_eq!(sr.damaged_headers, pr.damaged_headers);
        assert_eq!(sr.orphan_sectors, pr.orphan_sectors);
        assert_eq!(sr.ios, pr.ios);
        assert!(
            sr.duration_us >= PARALLEL_SPEEDUP_FLOOR * pr.duration_us,
            "serial {} vs parallel {} — speedup below {}x",
            sr.duration_us,
            pr.duration_us,
            PARALLEL_SPEEDUP_FLOOR
        );
    }
}
