//! CFS error type.

use cedar_btree::BTreeError;
use cedar_disk::DiskError;
use cedar_vol::AllocError;
use std::fmt;

/// Errors from CFS operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CfsError {
    /// Underlying disk failure (including label mismatches and crashes).
    Disk(DiskError),
    /// The name table is structurally damaged — the condition that forces
    /// a scavenge.
    Corrupt(String),
    /// No such file.
    NotFound(String),
    /// A file with this name and version already exists.
    Exists(String),
    /// The volume is out of space.
    NoSpace,
    /// Invalid file name.
    BadName(String),
    /// Page number beyond the end of the file.
    OutOfRange {
        /// Requested logical page.
        page: u32,
        /// File length in pages.
        pages: u32,
    },
}

impl CfsError {
    /// Returns `true` if the error is the machine crashing (the caller
    /// should unwind to recovery, not report a failure).
    pub fn is_crash(&self) -> bool {
        matches!(self, Self::Disk(DiskError::Crashed))
    }
}

impl fmt::Display for CfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk: {e}"),
            Self::Corrupt(m) => write!(f, "name table corrupt (scavenge needed): {m}"),
            Self::NotFound(n) => write!(f, "file not found: {n}"),
            Self::Exists(n) => write!(f, "file exists: {n}"),
            Self::NoSpace => write!(f, "volume full"),
            Self::BadName(m) => write!(f, "bad file name: {m}"),
            Self::OutOfRange { page, pages } => {
                write!(f, "page {page} out of range (file has {pages})")
            }
        }
    }
}

impl std::error::Error for CfsError {}

impl From<DiskError> for CfsError {
    fn from(e: DiskError) -> Self {
        Self::Disk(e)
    }
}

impl From<BTreeError> for CfsError {
    fn from(e: BTreeError) -> Self {
        match e {
            BTreeError::Store(cedar_btree::StoreError::Crashed) => Self::Disk(DiskError::Crashed),
            BTreeError::Store(s) => Self::Corrupt(format!("name table store: {s}")),
            BTreeError::Corrupt(m) => Self::Corrupt(m),
            BTreeError::EntryTooLarge { size, max } => {
                Self::BadName(format!("entry too large: {size} > {max}"))
            }
        }
    }
}

impl From<AllocError> for CfsError {
    fn from(_: AllocError) -> Self {
        Self::NoSpace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_detection() {
        assert!(CfsError::from(DiskError::Crashed).is_crash());
        assert!(!CfsError::NoSpace.is_crash());
        assert!(!CfsError::from(DiskError::BadSector(3)).is_crash());
    }

    #[test]
    fn btree_crash_maps_to_disk_crash() {
        let e = CfsError::from(BTreeError::Store(cedar_btree::StoreError::Crashed));
        assert!(e.is_crash());
    }
}
