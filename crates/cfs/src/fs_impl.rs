//! [`FsBackend`] implementation for [`CfsVolume`].
//!
//! CFS is the all-synchronous baseline: every operation is durable the
//! moment it returns, so [`FsBackend::sync`] is a no-op. Services wrap
//! the volume in `SyncFs` to expose the shared-reference `FileSystem`
//! trait (CFS has no concurrent pipeline of its own — its design is
//! inherently serial, writing labels and data synchronously in place).

use crate::error::CfsError;
use crate::volume::CfsVolume;
use cedar_vol::fs::{CedarFsError, FileInfo, FsBackend, FsStats, CHUNK_PAGES};

impl From<CfsError> for CedarFsError {
    fn from(e: CfsError) -> Self {
        match e {
            CfsError::Disk(d) => CedarFsError::Disk(d),
            CfsError::Corrupt(m) => CedarFsError::Corrupt(m),
            CfsError::NotFound(n) => CedarFsError::NotFound(n),
            CfsError::Exists(n) => CedarFsError::Exists(n),
            CfsError::NoSpace => CedarFsError::NoSpace,
            CfsError::BadName(m) => CedarFsError::BadName(m),
            CfsError::OutOfRange { page, pages } => {
                CedarFsError::OutOfRange(format!("page {page} of {pages}"))
            }
        }
    }
}

impl FsBackend for CfsVolume {
    fn kind(&self) -> &'static str {
        "cfs"
    }

    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        let f = CfsVolume::create(self, name, data)?;
        Ok(FileInfo {
            name: f.name.name.clone(),
            version: f.name.version,
            bytes: f.header.byte_size,
        })
    }

    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError> {
        let f = CfsVolume::open(self, name, None)?;
        Ok(FileInfo {
            name: f.name.name.clone(),
            version: f.name.version,
            bytes: f.header.byte_size,
        })
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        let f = CfsVolume::open(self, name, None)?;
        let mut out = Vec::with_capacity(f.header.byte_size as usize);
        let mut page = 0;
        while page < f.pages() {
            let take = CHUNK_PAGES.min(f.pages() - page);
            out.extend(self.read_pages(&f, page, take)?);
            page += take;
        }
        out.truncate(f.header.byte_size as usize);
        Ok(out)
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        // Cedar files are immutable: overwriting a name means creating
        // its next version, exactly what `create` does for an existing
        // name. The separate verb keeps the intent explicit at call
        // sites.
        FsBackend::create(self, name, data)
    }

    fn delete(&mut self, name: &str) -> Result<(), CedarFsError> {
        CfsVolume::delete(self, name, None)?;
        Ok(())
    }

    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        // The name table iterates in key order (name, then version
        // ascending), so the last header seen for a name is its newest
        // version.
        let mut out: Vec<FileInfo> = Vec::new();
        for h in CfsVolume::list(self, prefix)? {
            let info = FileInfo {
                name: h.name.name.clone(),
                version: h.name.version,
                bytes: h.byte_size,
            };
            match out.last_mut() {
                Some(last) if last.name == info.name => *last = info,
                _ => out.push(info),
            }
        }
        Ok(out)
    }

    fn sync(&mut self) -> Result<(), CedarFsError> {
        // All CFS writes are synchronous and in place (§2): there is
        // nothing buffered to flush.
        Ok(())
    }

    fn stats(&self) -> FsStats {
        FsStats {
            disk: self.disk_stats(),
            now_us: self.clock().now(),
            free_sectors: self.free_sectors() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CfsConfig;
    use cedar_disk::{CpuModel, SimDisk};
    use cedar_vol::fs::{FileSystem, SyncFs};

    fn vol() -> CfsVolume {
        CfsVolume::format(
            SimDisk::tiny(),
            CfsConfig {
                nt_pages: 32,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn backend_roundtrip_and_versioning() {
        let fs: &mut dyn FsBackend = &mut vol();
        assert_eq!(fs.kind(), "cfs");
        fs.create("d/a", b"one").unwrap();
        let info = fs.write("d/a", b"two").unwrap();
        assert_eq!(info.version, 2);
        assert_eq!(fs.read("d/a").unwrap(), b"two");
        // The listing shows only the newest version.
        let listing = fs.list("d/").unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].version, 2);
        assert_eq!(listing[0].bytes, 3);
        fs.delete("d/a").unwrap();
        assert_eq!(fs.read("d/a").unwrap(), b"one");
    }

    #[test]
    fn shared_reference_service_via_syncfs() {
        let fs = SyncFs::new(vol());
        let fs: &dyn FileSystem = &fs;
        fs.create("d/a", b"one").unwrap();
        assert_eq!(fs.open("d/a").unwrap().bytes, 3);
        assert!(fs.stats().disk.reads + fs.stats().disk.writes > 0);
    }

    #[test]
    fn errors_map_to_shared_enum() {
        let fs: &mut dyn FsBackend = &mut vol();
        match fs.read("absent") {
            Err(CedarFsError::NotFound(n)) => assert_eq!(n, "absent"),
            other => panic!("expected NotFound, got {other:?}"),
        }
    }
}
