//! The CFS volume: format, boot, and the file operations the paper
//! benchmarks (create, open, read, write, delete, list).
//!
//! Every metadata update is synchronous and in place. The exact I/O
//! sequence of a small create follows the §6 script:
//!
//! 1. verify the candidate pages are free (read their labels — the VAM is
//!    only a hint);
//! 2. write the header labels (claiming the header sectors);
//! 3. write the data labels;
//! 4. write the header;
//! 5. update the file name table (write-through B-tree);
//! 6. write the data;
//! 7. rewrite the header with the final byte count.

use crate::error::CfsError;
use crate::header::{FileHeader, HEADER_SECTORS};
use crate::layout::{BootPage, CfsLayout};
use crate::nametable::{nt_labels, CfsNtStore, NtEntry};
use crate::Result;
use cedar_btree::{BTree, PageId};
use cedar_disk::{Cpu, CpuModel, Label, PageKind, SimDisk, SECTOR_BYTES};
use cedar_disk::{DiskStats, SimClock};
use cedar_vol::{AllocPolicy, Allocator, FileName, Run, RunTable, Vam};
use std::collections::HashMap;

/// Configuration for formatting or booting a CFS volume.
#[derive(Clone, Copy, Debug)]
pub struct CfsConfig {
    /// Name-table pages (0 selects a geometry-scaled default).
    pub nt_pages: u32,
    /// CPU cost table.
    pub cpu: CpuModel,
    /// Decode/verify workers for the scavenger's label- and
    /// header-interpretation stages. `1` is the historical serial
    /// scavenger; larger values spread the Mesa-style label
    /// interpretation (the dominant CPU cost, §5.3) across workers,
    /// charged as the critical path.
    pub scavenge_workers: usize,
}

impl Default for CfsConfig {
    fn default() -> Self {
        Self {
            nt_pages: 0,
            cpu: CpuModel::DORADO,
            scavenge_workers: 1,
        }
    }
}

/// An open file handle.
#[derive(Clone, Debug)]
pub struct CfsFile {
    /// The file's name and version.
    pub name: FileName,
    /// The file's unique id.
    pub uid: u64,
    /// Disk address of header page 0.
    pub header_addr: u32,
    /// The decoded header (properties + run table).
    pub header: FileHeader,
}

impl CfsFile {
    /// File length in pages.
    pub fn pages(&self) -> u32 {
        self.header.run_table.pages()
    }
}

/// Builds the borrowed name-table store from disjoint volume fields.
macro_rules! nt_store {
    ($self:ident) => {
        CfsNtStore {
            disk: &mut $self.disk,
            cpu: &$self.cpu,
            layout: &$self.layout,
            cache: &mut $self.nt_cache,
            boot: &mut $self.boot,
            boot_dirty: &mut $self.boot_dirty,
        }
    };
}

/// A mounted CFS volume.
pub struct CfsVolume {
    disk: SimDisk,
    cpu: Cpu,
    layout: CfsLayout,
    boot: BootPage,
    boot_dirty: bool,
    tree: BTree,
    nt_cache: HashMap<PageId, Vec<u8>>,
    vam: Vam,
    alloc: Allocator,
    uid_counter: u32,
    /// Whether the on-disk boot page currently claims a valid VAM hint;
    /// the first mutation must clear it so a crash forces reconstruction.
    vam_hint_on_disk: bool,
    /// Scavenger decode/verify workers (from [`CfsConfig`]).
    pub(crate) scavenge_workers: usize,
}

impl CfsVolume {
    // ----- lifecycle -----------------------------------------------------------

    /// Formats a blank disk as a CFS volume.
    pub fn format(mut disk: SimDisk, config: CfsConfig) -> Result<CfsVolume> {
        let layout = CfsLayout::compute(disk.geometry(), config.nt_pages);
        let cpu = Cpu::new(disk.clock(), config.cpu);

        // Label the system areas. Boot + VAM get Boot labels; the name
        // table region gets NameTable labels, one page number per sector.
        let sys_labels: Vec<Label> = (0..layout.nt_start)
            .map(|i| Label::new(0, i, PageKind::Boot))
            .collect();
        disk.write_labels(0, &sys_labels, None)?;
        for p in 0..layout.nt_pages {
            disk.write_labels(layout.nt_sector(p), &nt_labels(p), None)?;
        }

        let mut vam = Vam::new_all_allocated(layout.total_sectors);
        let (dlo, dhi) = layout.data_area();
        vam.free_run(Run::new(dlo, dhi - dlo));

        let mut boot = BootPage::new(layout.nt_pages);
        boot.boot_count = 1;

        let mut vol = CfsVolume {
            alloc: Allocator::new(AllocPolicy::SingleArea, dlo, dhi),
            disk,
            cpu,
            layout,
            boot,
            boot_dirty: false,
            tree: BTree::open(0),
            nt_cache: HashMap::new(),
            vam,
            uid_counter: 0,
            vam_hint_on_disk: false,
            scavenge_workers: config.scavenge_workers,
        };
        let mut store = nt_store!(vol);
        vol.tree = BTree::create(&mut store)?;
        vol.boot.nt_root = vol.tree.root();
        vol.write_vam()?;
        vol.boot.vam_valid = true;
        vol.write_boot()?;
        vol.vam_hint_on_disk = true;
        Ok(vol)
    }

    /// Boots an existing CFS volume. Returns the volume and whether the
    /// VAM hint was valid (if not, the free map is empty and a
    /// [`Self::scavenge`](crate::scavenge) is needed before allocating).
    pub fn boot(mut disk: SimDisk, config: CfsConfig) -> Result<(CfsVolume, bool)> {
        let layout = CfsLayout::compute(disk.geometry(), config.nt_pages);
        let cpu = Cpu::new(disk.clock(), config.cpu);
        let raw = disk.read(layout.boot_sector, 1)?;
        let mut boot =
            BootPage::decode(&raw).map_err(|m| CfsError::Corrupt(format!("boot page: {m}")))?;
        boot.boot_count += 1;

        let vam_loaded = boot.vam_valid;
        let vam = if vam_loaded {
            let raw = disk.read(layout.vam_start, layout.vam_sectors as usize)?;
            Vam::from_bytes(&raw).map_err(CfsError::Corrupt)?
        } else {
            // Stale hint: start with nothing free; a scavenge rebuilds it.
            Vam::new_all_allocated(layout.total_sectors)
        };
        // Invalidate the hint: it is stale the moment we mutate anything.
        boot.vam_valid = false;

        let (dlo, dhi) = layout.data_area();
        let mut vol = CfsVolume {
            alloc: Allocator::new(AllocPolicy::SingleArea, dlo, dhi),
            tree: BTree::open(boot.nt_root),
            disk,
            cpu,
            layout,
            boot,
            boot_dirty: false,
            nt_cache: HashMap::new(),
            vam,
            uid_counter: 0,
            vam_hint_on_disk: false,
            scavenge_workers: config.scavenge_workers,
        };
        vol.write_boot()?;
        Ok((vol, vam_loaded))
    }

    /// Controlled shutdown: saves the VAM hint and marks it valid.
    pub fn shutdown(&mut self) -> Result<()> {
        self.write_vam()?;
        self.boot.vam_valid = true;
        self.write_boot()?;
        self.vam_hint_on_disk = true;
        Ok(())
    }

    // ----- accessors -----------------------------------------------------------

    /// The underlying disk (for stats and fault injection).
    pub fn disk_mut(&mut self) -> &mut SimDisk {
        &mut self.disk
    }

    /// Disk statistics so far.
    pub fn disk_stats(&self) -> DiskStats {
        self.disk.stats()
    }

    /// The simulation clock.
    pub fn clock(&self) -> SimClock {
        self.disk.clock()
    }

    /// The CPU charger (for %CPU accounting).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The volume layout.
    pub fn layout(&self) -> &CfsLayout {
        &self.layout
    }

    /// Consumes the volume, returning the disk — used to simulate a crash
    /// (volatile state is dropped) followed by a reboot.
    pub fn into_disk(self) -> SimDisk {
        self.disk
    }

    /// Free data sectors according to the (hint) VAM.
    pub fn free_sectors(&self) -> u32 {
        self.vam.free_count()
    }

    /// Checks the structural invariants of the name table; an error here
    /// is the condition that forces a scavenge.
    pub fn verify(&mut self) -> Result<()> {
        let tree = self.tree;
        let mut store = nt_store!(self);
        tree.check_invariants(&mut store)?;
        Ok(())
    }

    // ----- internals -----------------------------------------------------------

    pub(crate) fn parts(
        &mut self,
    ) -> (
        &mut SimDisk,
        &Cpu,
        &CfsLayout,
        &mut Vam,
        &mut BootPage,
        &mut BTree,
    ) {
        (
            &mut self.disk,
            &self.cpu,
            &self.layout,
            &mut self.vam,
            &mut self.boot,
            &mut self.tree,
        )
    }

    /// Rewrites the boot page after a scavenge installed rebuilt state.
    pub(crate) fn finish_scavenge_boot_page(&mut self) -> Result<()> {
        self.write_boot()
    }

    pub(crate) fn rebuild_after_scavenge(
        &mut self,
        vam: Vam,
        mut boot: BootPage,
        tree: BTree,
        cache: HashMap<PageId, Vec<u8>>,
    ) {
        boot.boot_count = self.boot.boot_count;
        self.vam = vam;
        self.boot = boot;
        self.tree = tree;
        self.nt_cache = cache;
        self.boot_dirty = false;
        let (dlo, dhi) = self.layout.data_area();
        self.alloc = Allocator::new(AllocPolicy::SingleArea, dlo, dhi);
    }

    fn write_boot(&mut self) -> Result<()> {
        self.boot.nt_root = self.tree.root();
        self.disk
            .write(self.layout.boot_sector, &self.boot.encode())?;
        self.boot_dirty = false;
        Ok(())
    }

    /// Persists the boot page if the tree root or page bitmap changed
    /// during an operation. Ordered *after* the tree writes — the window
    /// a crash exploits in CFS.
    fn flush_boot_if_dirty(&mut self) -> Result<()> {
        if self.boot_dirty || self.boot.nt_root != self.tree.root() {
            self.write_boot()?;
        }
        Ok(())
    }

    /// Clears the on-disk VAM-valid flag before the first mutation after
    /// a format, boot or shutdown, so that a crash leaves the hint
    /// correctly marked stale.
    fn invalidate_vam_hint(&mut self) -> Result<()> {
        if self.vam_hint_on_disk {
            self.boot.vam_valid = false;
            self.write_boot()?;
            self.vam_hint_on_disk = false;
        }
        Ok(())
    }

    fn write_vam(&mut self) -> Result<()> {
        let mut bytes = self.vam.to_bytes();
        bytes.resize(self.layout.vam_sectors as usize * SECTOR_BYTES, 0);
        self.disk.write(self.layout.vam_start, &bytes)?;
        Ok(())
    }

    fn next_uid(&mut self) -> u64 {
        self.uid_counter += 1;
        ((self.boot.boot_count as u64) << 32) | self.uid_counter as u64
    }

    fn header_labels(uid: u64) -> Vec<Label> {
        (0..HEADER_SECTORS)
            .map(|i| Label::new(uid, i, PageKind::Header))
            .collect()
    }

    fn data_labels(uid: u64, first_page: u32, len: u32) -> Vec<Label> {
        (0..len)
            .map(|i| Label::new(uid, first_page + i, PageKind::Data))
            .collect()
    }

    /// Allocates and label-verifies `pages` sectors. The VAM is only a
    /// hint: any sector whose label is not `Free` is repaired in the VAM
    /// and the allocation retried (§2: "Free pages may be lost and file
    /// creation may be somewhat slow").
    fn claim_verified(&mut self, pages: u32) -> Result<RunTable> {
        if pages == 0 {
            return Ok(RunTable::new());
        }
        for _ in 0..8 {
            let rt = self.alloc.allocate(&mut self.vam, pages)?;
            let mut stale: Vec<u32> = Vec::new();
            for run in rt.runs() {
                let labels = self.disk.read_labels(run.start, run.len as usize)?;
                for (i, l) in labels.iter().enumerate() {
                    if !l.is_free() {
                        stale.push(run.start + i as u32);
                    }
                }
            }
            if stale.is_empty() {
                return Ok(rt);
            }
            // Return the claim, then pin the liars as allocated.
            for run in rt.runs() {
                self.vam.free_run(*run);
            }
            for a in stale {
                self.vam.allocate_run(Run::new(a, 1));
            }
        }
        Err(CfsError::NoSpace)
    }

    /// Allocates a header (contiguous pair) plus `data_pages` data
    /// sectors, preferring one combined run.
    fn allocate_file(&mut self, data_pages: u32) -> Result<(Run, RunTable)> {
        let rt = self.claim_verified(HEADER_SECTORS + data_pages)?;
        if rt.runs()[0].len >= HEADER_SECTORS {
            let first = rt.runs()[0];
            let header = Run::new(first.start, HEADER_SECTORS);
            let mut data = RunTable::new();
            if first.len > HEADER_SECTORS {
                data.push(Run::new(
                    first.start + HEADER_SECTORS,
                    first.len - HEADER_SECTORS,
                ));
            }
            for r in &rt.runs()[1..] {
                data.push(*r);
            }
            return Ok((header, data));
        }
        // Fragmented first run: give everything back and allocate the
        // header strictly contiguously, then the data.
        for r in rt.runs() {
            self.vam.free_run(*r);
        }
        let (lo, hi) = self.layout.data_area();
        let hr = self
            .vam
            .find_free_run(HEADER_SECTORS, lo, hi, lo)
            .ok_or(CfsError::NoSpace)?;
        self.vam.allocate_run(hr);
        let data = self.claim_verified(data_pages)?;
        Ok((hr, data))
    }

    fn resolve(&mut self, name: &str, version: Option<u32>) -> Result<FileName> {
        match version {
            Some(v) => FileName::new(name, v).map_err(CfsError::BadName),
            None => {
                let v = self.max_version(name)?;
                if v == 0 {
                    return Err(CfsError::NotFound(name.to_string()));
                }
                FileName::new(name, v).map_err(CfsError::BadName)
            }
        }
    }

    /// Highest existing version of `name` (0 if none).
    pub fn max_version(&mut self, name: &str) -> Result<u32> {
        let (lo, hi) = FileName::versions_range(name);
        let mut last: Option<Vec<u8>> = None;
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, _| {
                last = Some(k.to_vec());
                true
            })?;
        }
        self.tree = tree;
        match last {
            Some(k) => Ok(FileName::from_key(&k).map_err(CfsError::Corrupt)?.version),
            None => Ok(0),
        }
    }

    // ----- operations ------------------------------------------------------------

    /// Creates a new version of `name` holding `data`, returning the open
    /// file. Follows the paper's six-I/O create script (module docs).
    pub fn create(&mut self, name: &str, data: &[u8]) -> Result<CfsFile> {
        self.cpu.op();
        self.invalidate_vam_hint()?;
        FileName::new(name, 1).map_err(CfsError::BadName)?; // Validate early.
        let version = self.max_version(name)? + 1;
        let fname = FileName::new(name, version).map_err(CfsError::BadName)?;
        let uid = self.next_uid();
        let data_pages = data.len().div_ceil(SECTOR_BYTES) as u32;

        // (1) Find and verify free pages.
        let (header_run, data_rt) = self.allocate_file(data_pages)?;

        // (2) Claim the header sectors by writing their labels.
        let hlabels = Self::header_labels(uid);
        self.disk.write_labels(
            header_run.start,
            &hlabels,
            Some(&vec![Label::FREE; HEADER_SECTORS as usize]),
        )?;

        // (3) Claim the data sectors.
        let mut page = 0u32;
        for run in data_rt.runs() {
            let labels = Self::data_labels(uid, page, run.len);
            self.disk.write_labels(
                run.start,
                &labels,
                Some(&vec![Label::FREE; run.len as usize]),
            )?;
            page += run.len;
        }

        // (4) Write the header (size still zero).
        let mut header = FileHeader {
            uid,
            name: fname.clone(),
            keep: 0,
            byte_size: 0,
            create_time: self.disk.clock().now(),
            run_table: data_rt.clone(),
        };
        self.cpu.entries(1);
        self.disk
            .write_checked(header_run.start, &header.encode(), &hlabels)?;

        // (5) Update the file name table.
        let entry = NtEntry {
            uid,
            header_addr: header_run.start,
            keep: 0,
        };
        let mut tree = self.tree;
        {
            let mut store = nt_store!(self);
            if tree
                .insert(&mut store, &fname.to_key(), &entry.encode())?
                .is_some()
            {
                return Err(CfsError::Exists(fname.to_string()));
            }
        }
        self.tree = tree;
        self.flush_boot_if_dirty()?;

        // (6) Write the data.
        self.write_extents(uid, &data_rt, 0, data)?;

        // (7) Rewrite the header with the final byte count.
        header.byte_size = data.len() as u64;
        self.disk
            .write_checked(header_run.start, &header.encode(), &hlabels)?;

        Ok(CfsFile {
            name: fname,
            uid,
            header_addr: header_run.start,
            header,
        })
    }

    /// Writes `data` across the extents of `rt` starting at logical page
    /// `first_page`, one label-checked write per extent.
    fn write_extents(
        &mut self,
        uid: u64,
        rt: &RunTable,
        first_page: u32,
        data: &[u8],
    ) -> Result<()> {
        let mut page = 0u32;
        let mut offset = 0usize;
        self.cpu.sectors(data.len().div_ceil(SECTOR_BYTES) as u64);
        for run in rt.runs() {
            if offset >= data.len() {
                break;
            }
            let sectors = run.len as usize;
            let want = (data.len() - offset).min(sectors * SECTOR_BYTES);
            let mut buf = vec![0u8; sectors * SECTOR_BYTES];
            buf[..want].copy_from_slice(&data[offset..offset + want]);
            let labels = Self::data_labels(uid, first_page + page, run.len);
            self.disk.write_checked(run.start, &buf, &labels)?;
            offset += want;
            page += run.len;
        }
        Ok(())
    }

    /// Opens the newest (or a specific) version of `name`.
    pub fn open(&mut self, name: &str, version: Option<u32>) -> Result<CfsFile> {
        self.cpu.op();
        let fname = self.resolve(name, version)?;
        let tree = self.tree;
        let got = {
            let mut store = nt_store!(self);
            tree.get(&mut store, &fname.to_key())?
        };
        self.tree = tree;
        let raw = got.ok_or_else(|| CfsError::NotFound(fname.to_string()))?;
        let entry = NtEntry::decode(&raw)?;
        self.cpu.entries(1);
        // Read the header, label-checked: a wrong header here is how CFS
        // catches many bugs.
        let hlabels = Self::header_labels(entry.uid);
        let raw = self
            .disk
            .read_checked(entry.header_addr, HEADER_SECTORS as usize, &hlabels)?;
        let header = FileHeader::decode(&raw)?;
        if header.uid != entry.uid {
            return Err(CfsError::Corrupt(format!(
                "header uid {} does not match name table {}",
                header.uid, entry.uid
            )));
        }
        Ok(CfsFile {
            name: fname,
            uid: entry.uid,
            header_addr: entry.header_addr,
            header,
        })
    }

    /// Reads one page of an open file.
    pub fn read_page(&mut self, file: &CfsFile, page: u32) -> Result<Vec<u8>> {
        let sector = file
            .header
            .run_table
            .sector_of(page)
            .ok_or(CfsError::OutOfRange {
                page,
                pages: file.pages(),
            })?;
        self.cpu.sectors(1);
        Ok(self
            .disk
            .read_checked(sector, 1, &[Label::new(file.uid, page, PageKind::Data)])?)
    }

    /// Reads `count` consecutive pages, batching transfers along
    /// physical extents (label-checked).
    pub fn read_pages(&mut self, file: &CfsFile, page: u32, count: u32) -> Result<Vec<u8>> {
        if page + count > file.pages() {
            return Err(CfsError::OutOfRange {
                page: page + count - 1,
                pages: file.pages(),
            });
        }
        let mut out = Vec::with_capacity(count as usize * SECTOR_BYTES);
        let mut at = page;
        while at < page + count {
            let extent = file
                .header
                .run_table
                .extent_at(at)
                .expect("page within file");
            let take = extent.len.min(page + count - at);
            let labels = Self::data_labels(file.uid, at, take);
            out.extend(
                self.disk
                    .read_checked(extent.start, take as usize, &labels)?,
            );
            at += take;
        }
        self.cpu.sectors(count as u64);
        Ok(out)
    }

    /// Reads a whole file (one label-checked transfer per extent),
    /// truncated to its byte size.
    pub fn read_file(&mut self, file: &CfsFile) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(file.header.byte_size as usize);
        let mut page = 0u32;
        for run in file.header.run_table.runs() {
            let labels = Self::data_labels(file.uid, page, run.len);
            out.extend(
                self.disk
                    .read_checked(run.start, run.len as usize, &labels)?,
            );
            page += run.len;
        }
        self.cpu.sectors(file.pages() as u64);
        out.truncate(file.header.byte_size as usize);
        Ok(out)
    }

    /// Overwrites one page of an open file.
    pub fn write_page(&mut self, file: &CfsFile, page: u32, data: &[u8]) -> Result<()> {
        assert!(data.len() <= SECTOR_BYTES);
        let sector = file
            .header
            .run_table
            .sector_of(page)
            .ok_or(CfsError::OutOfRange {
                page,
                pages: file.pages(),
            })?;
        self.invalidate_vam_hint()?;
        let mut buf = vec![0u8; SECTOR_BYTES];
        buf[..data.len()].copy_from_slice(data);
        self.cpu.sectors(1);
        self.disk
            .write_checked(sector, &buf, &[Label::new(file.uid, page, PageKind::Data)])?;
        Ok(())
    }

    /// Deletes a version of `name` (the newest when `version` is `None`).
    pub fn delete(&mut self, name: &str, version: Option<u32>) -> Result<()> {
        self.cpu.op();
        self.invalidate_vam_hint()?;
        let file = self.open(name, version)?;

        // Free the labels: header first, then each data run.
        let hlabels = Self::header_labels(file.uid);
        self.disk.write_labels(
            file.header_addr,
            &vec![Label::FREE; HEADER_SECTORS as usize],
            Some(&hlabels),
        )?;
        let mut page = 0u32;
        for run in file.header.run_table.runs() {
            let labels = Self::data_labels(file.uid, page, run.len);
            self.disk.write_labels(
                run.start,
                &vec![Label::FREE; run.len as usize],
                Some(&labels),
            )?;
            page += run.len;
        }

        // Remove from the name table.
        let mut tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.delete(&mut store, &file.name.to_key())?;
        }
        self.tree = tree;
        self.flush_boot_if_dirty()?;

        // Return the pages to the (hint) VAM. CFS has no commit concept:
        // the pages are immediately reusable.
        self.vam
            .free_run(Run::new(file.header_addr, HEADER_SECTORS));
        for run in file.header.run_table.runs() {
            self.vam.free_run(*run);
        }
        Ok(())
    }

    /// Lists files under a name prefix *with their properties*. CFS must
    /// read every file's header for the properties — the I/O cost Table 3
    /// shows ("list 100 files": 146 I/Os vs FSD's 3).
    pub fn list(&mut self, prefix: &str) -> Result<Vec<FileHeader>> {
        self.cpu.op();
        let entries = self.list_names(prefix)?;
        let mut out = Vec::with_capacity(entries.len());
        for (_, e) in entries {
            let hlabels = Self::header_labels(e.uid);
            let raw = self
                .disk
                .read_checked(e.header_addr, HEADER_SECTORS as usize, &hlabels)?;
            out.push(FileHeader::decode(&raw)?);
            self.cpu.entries(1);
        }
        Ok(out)
    }

    /// Lists `name!version` entries under a prefix without reading
    /// headers (names only).
    pub fn list_names(&mut self, prefix: &str) -> Result<Vec<(FileName, NtEntry)>> {
        let (lo, hi) = FileName::prefix_range(prefix);
        let mut raw: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let tree = self.tree;
        {
            let mut store = nt_store!(self);
            tree.for_each_range(&mut store, &lo, Some(&hi), &mut |k, v| {
                raw.push((k.to_vec(), v.to_vec()));
                true
            })?;
        }
        self.tree = tree;
        self.cpu.entries(raw.len() as u64);
        raw.into_iter()
            .map(|(k, v)| {
                Ok((
                    FileName::from_key(&k).map_err(CfsError::Corrupt)?,
                    NtEntry::decode(&v)?,
                ))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_volume() -> CfsVolume {
        let disk = SimDisk::tiny();
        CfsVolume::format(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn create_open_read_roundtrip() {
        let mut v = tiny_volume();
        let data = b"hello cedar".to_vec();
        v.create("memo.txt", &data).unwrap();
        let f = v.open("memo.txt", None).unwrap();
        assert_eq!(f.name.version, 1);
        assert_eq!(f.header.byte_size, data.len() as u64);
        assert_eq!(v.read_file(&f).unwrap(), data);
    }

    #[test]
    fn versions_accumulate() {
        let mut v = tiny_volume();
        v.create("f", b"one").unwrap();
        v.create("f", b"two").unwrap();
        let newest = v.open("f", None).unwrap();
        assert_eq!(newest.name.version, 2);
        assert_eq!(v.read_file(&newest).unwrap(), b"two");
        let old = v.open("f", Some(1)).unwrap();
        assert_eq!(v.read_file(&old).unwrap(), b"one");
    }

    #[test]
    fn open_missing_fails() {
        let mut v = tiny_volume();
        assert!(matches!(v.open("nope", None), Err(CfsError::NotFound(_))));
        assert!(matches!(
            v.open("nope", Some(3)),
            Err(CfsError::NotFound(_))
        ));
    }

    #[test]
    fn empty_file_works() {
        let mut v = tiny_volume();
        v.create("empty", b"").unwrap();
        let f = v.open("empty", None).unwrap();
        assert_eq!(f.pages(), 0);
        assert_eq!(v.read_file(&f).unwrap(), b"");
    }

    #[test]
    fn multi_page_file_roundtrip() {
        let mut v = tiny_volume();
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
        v.create("big", &data).unwrap();
        let f = v.open("big", None).unwrap();
        assert_eq!(f.pages(), 6);
        assert_eq!(v.read_file(&f).unwrap(), data);
        // Individual page reads see the same bytes.
        let p2 = v.read_page(&f, 2).unwrap();
        assert_eq!(&p2[..], &data[1024..1536]);
    }

    #[test]
    fn read_page_out_of_range() {
        let mut v = tiny_volume();
        v.create("f", b"x").unwrap();
        let f = v.open("f", None).unwrap();
        assert!(matches!(
            v.read_page(&f, 5),
            Err(CfsError::OutOfRange { .. })
        ));
    }

    #[test]
    fn write_page_persists() {
        let mut v = tiny_volume();
        v.create("f", &vec![0u8; 1024]).unwrap();
        let f = v.open("f", None).unwrap();
        v.write_page(&f, 1, &[9u8; 512]).unwrap();
        assert_eq!(v.read_page(&f, 1).unwrap(), vec![9u8; 512]);
    }

    #[test]
    fn delete_frees_space_and_name() {
        let mut v = tiny_volume();
        let before = v.free_sectors();
        v.create("f", &vec![1u8; 2048]).unwrap();
        assert!(v.free_sectors() < before);
        v.delete("f", None).unwrap();
        assert_eq!(v.free_sectors(), before);
        assert!(matches!(v.open("f", None), Err(CfsError::NotFound(_))));
    }

    #[test]
    fn deleted_sectors_are_reusable() {
        let mut v = tiny_volume();
        v.create("a", &vec![1u8; 4096]).unwrap();
        v.delete("a", None).unwrap();
        // The same sectors get claimed again without label complaints.
        v.create("b", &vec![2u8; 4096]).unwrap();
        let f = v.open("b", None).unwrap();
        assert_eq!(v.read_file(&f).unwrap(), vec![2u8; 4096]);
    }

    #[test]
    fn list_returns_properties() {
        let mut v = tiny_volume();
        for i in 0..5 {
            v.create(&format!("dir/f{i}"), &vec![0u8; 512 * (i + 1)])
                .unwrap();
        }
        v.create("other/g", b"x").unwrap();
        let l = v.list("dir/").unwrap();
        assert_eq!(l.len(), 5);
        assert_eq!(l[0].name.name, "dir/f0");
        assert_eq!(l[0].byte_size, 512);
        assert_eq!(l[4].byte_size, 2560);
    }

    #[test]
    fn list_reads_one_header_per_file() {
        let mut v = tiny_volume();
        for i in 0..10 {
            v.create(&format!("d/f{i}"), b"x").unwrap();
        }
        let before = v.disk_stats();
        let l = v.list("d/").unwrap();
        assert_eq!(l.len(), 10);
        let delta = v.disk_stats().since(&before);
        // At least one read per file (headers), NT pages mostly cached.
        assert!(delta.reads >= 10, "reads = {}", delta.reads);
    }

    #[test]
    fn stale_vam_hint_repaired_by_label_verify() {
        let mut v = tiny_volume();
        let f = v.create("keep", b"data").unwrap();
        // Lie in the VAM: mark the file's sectors free.
        let hdr = f.header_addr;
        v.vam.free_run(Run::new(hdr, 2));
        for r in f.header.run_table.runs() {
            v.vam.free_run(*r);
        }
        // Creation verifies labels, discovers the lie, repairs the VAM and
        // retries elsewhere.
        v.create("new", b"fresh").unwrap();
        let kept = v.open("keep", None).unwrap();
        assert_eq!(v.read_file(&kept).unwrap(), b"data");
        let new = v.open("new", None).unwrap();
        assert_eq!(v.read_file(&new).unwrap(), b"fresh");
    }

    #[test]
    fn survives_clean_shutdown_and_boot() {
        let mut v = tiny_volume();
        v.create("persist", b"forever").unwrap();
        let free = v.free_sectors();
        v.shutdown().unwrap();
        let disk = v.into_disk();
        let (mut v2, vam_loaded) = CfsVolume::boot(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        assert!(vam_loaded);
        assert_eq!(v2.free_sectors(), free);
        let f = v2.open("persist", None).unwrap();
        assert_eq!(v2.read_file(&f).unwrap(), b"forever");
    }

    #[test]
    fn unclean_boot_reports_stale_vam() {
        let mut v = tiny_volume();
        v.create("f", b"x").unwrap();
        let mut disk = v.into_disk(); // No shutdown.
        disk.crash_now();
        disk.reboot();
        let (mut v2, vam_loaded) = CfsVolume::boot(
            disk,
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        assert!(!vam_loaded);
        // Files are still readable (name table intact)...
        let f = v2.open("f", None).unwrap();
        assert_eq!(v2.read_file(&f).unwrap(), b"x");
        // ...but nothing is allocatable until a scavenge.
        assert!(matches!(v2.create("g", b"y"), Err(CfsError::NoSpace)));
    }

    #[test]
    fn uids_unique_across_boots() {
        let mut v = tiny_volume();
        let f1 = v.create("a", b"1").unwrap();
        v.shutdown().unwrap();
        let (mut v2, _) = CfsVolume::boot(
            v.into_disk(),
            CfsConfig {
                nt_pages: 16,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        let f2 = v2.create("b", b"2").unwrap();
        assert_ne!(f1.uid, f2.uid);
    }

    #[test]
    fn create_io_count_matches_script_shape() {
        // The paper's §6 script: a small create is "(at least) six I/O's".
        let mut v = tiny_volume();
        v.create("warm", b"w").unwrap(); // Warm the NT cache.
        let before = v.disk_stats();
        v.create("one-byte", b"x").unwrap();
        let delta = v.disk_stats().since(&before);
        assert!(
            (6..=9).contains(&delta.total_ops()),
            "create cost {} I/Os: {delta:?}",
            delta.total_ops()
        );
    }

    #[test]
    fn wild_write_detected_on_next_read() {
        let mut v = tiny_volume();
        v.create("f", b"data").unwrap();
        let f = v.open("f", None).unwrap();
        let sector = f.header.run_table.sector_of(0).unwrap();
        // A wild write smashes the sector's label.
        v.disk_mut()
            .write_labels(sector, &[Label::new(999, 0, PageKind::Data)], None)
            .unwrap();
        assert!(matches!(
            v.read_page(&f, 0),
            Err(CfsError::Disk(cedar_disk::DiskError::LabelMismatch { .. }))
        ));
    }
}
