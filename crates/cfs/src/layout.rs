//! CFS on-disk layout and boot page.
//!
//! ```text
//! sector 0                 boot page (NOT replicated — FSD added that)
//! sectors 1 .. v           VAM hint save area
//! sectors v .. n           name table region (pages of 4 sectors)
//! sectors n .. end         data area (headers + file data)
//! ```
//!
//! The name table sits at the *front* of the volume — central placement of
//! hot structures is one of FSD's improvements (§5.1), so the baseline
//! deliberately lacks it.

use cedar_disk::{DiskGeometry, SectorAddr, SECTOR_BYTES};
use cedar_vol::codec::{Reader, Writer};

/// Sectors per name-table page. CFS name-table pages "spanned multiple
/// disk pages and a partial write could corrupt a name table page" (§5.3)
/// — reproducing that tearability is the point of the multi-sector page.
pub const NT_PAGE_SECTORS: u32 = 4;

/// Bytes per name-table page.
pub const NT_PAGE_BYTES: usize = NT_PAGE_SECTORS as usize * SECTOR_BYTES;

/// Magic number identifying a CFS boot page.
pub const BOOT_MAGIC: u32 = 0xCF5_B007;

/// Computed sector layout of a CFS volume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CfsLayout {
    /// Total sectors on the volume.
    pub total_sectors: u32,
    /// The boot page sector (always 0).
    pub boot_sector: SectorAddr,
    /// First sector of the VAM hint save area.
    pub vam_start: SectorAddr,
    /// Sectors in the VAM save area.
    pub vam_sectors: u32,
    /// First sector of the name table region.
    pub nt_start: SectorAddr,
    /// Name-table pages in the region (each [`NT_PAGE_SECTORS`] sectors).
    pub nt_pages: u32,
    /// First data sector.
    pub data_start: SectorAddr,
}

impl CfsLayout {
    /// Computes the layout for a geometry. `nt_pages` of zero selects a
    /// default scaled to the volume (one name-table page per 256 sectors).
    pub fn compute(geometry: &DiskGeometry, nt_pages: u32) -> Self {
        let total = geometry.total_sectors();
        let nt_pages = if nt_pages == 0 {
            (total / 256).clamp(8, 3072)
        } else {
            nt_pages
        };
        // The boot page bitmap must track every name-table page.
        assert!(
            nt_pages as usize <= (SECTOR_BYTES - 40) * 8,
            "name table bitmap overflows the boot page"
        );
        let vam_bytes = 4 + (total as usize).div_ceil(64) * 8;
        let vam_sectors = vam_bytes.div_ceil(SECTOR_BYTES) as u32;
        let vam_start = 1;
        let nt_start = vam_start + vam_sectors;
        let data_start = nt_start + nt_pages * NT_PAGE_SECTORS;
        assert!(data_start < total, "volume too small for CFS layout");
        Self {
            total_sectors: total,
            boot_sector: 0,
            vam_start,
            vam_sectors,
            nt_start,
            nt_pages,
            data_start,
        }
    }

    /// First sector of name-table page `page`.
    pub fn nt_sector(&self, page: u32) -> SectorAddr {
        assert!(page < self.nt_pages);
        self.nt_start + page * NT_PAGE_SECTORS
    }

    /// The data area bounds `[start, end)`.
    pub fn data_area(&self) -> (SectorAddr, SectorAddr) {
        (self.data_start, self.total_sectors)
    }
}

/// The CFS boot page: volume root pointers, persisted once per mutation
/// of the name-table page bitmap or tree root. A single unreplicated
/// sector — one of the fragilities FSD fixes (§5.8, error class 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BootPage {
    /// Root page id of the name-table B-tree.
    pub nt_root: u32,
    /// Boots so far; part of uid generation.
    pub boot_count: u32,
    /// Whether the VAM save area holds a valid hint.
    pub vam_valid: bool,
    /// Allocation bitmap for name-table pages (bit set ⇒ page in use).
    pub nt_bitmap: Vec<u64>,
}

impl BootPage {
    /// A fresh boot page for a volume with `nt_pages` name-table pages.
    pub fn new(nt_pages: u32) -> Self {
        Self {
            nt_root: 0,
            boot_count: 0,
            vam_valid: false,
            nt_bitmap: vec![0; (nt_pages as usize).div_ceil(64)],
        }
    }

    /// Encodes into one sector.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u32(BOOT_MAGIC)
            .u32(self.nt_root)
            .u32(self.boot_count)
            .u8(u8::from(self.vam_valid))
            .u16(u16::try_from(self.nt_bitmap.len()).unwrap_or(u16::MAX));
        for word in &self.nt_bitmap {
            w.u64(*word);
        }
        let mut bytes = w.into_bytes();
        assert!(bytes.len() <= SECTOR_BYTES, "boot page overflow");
        bytes.resize(SECTOR_BYTES, 0);
        bytes
    }

    /// Decodes from a sector.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != BOOT_MAGIC {
            return Err("bad boot page magic".into());
        }
        let nt_root = r.u32()?;
        let boot_count = r.u32()?;
        let vam_valid = r.u8()? != 0;
        let words = r.u16()? as usize;
        let mut nt_bitmap = Vec::with_capacity(words);
        for _ in 0..words {
            nt_bitmap.push(r.u64()?);
        }
        Ok(Self {
            nt_root,
            boot_count,
            vam_valid,
            nt_bitmap,
        })
    }

    /// Allocates a name-table page from the bitmap.
    pub fn alloc_nt_page(&mut self, nt_pages: u32) -> Option<u32> {
        for page in 0..nt_pages {
            let (w, b) = (page as usize / 64, page % 64);
            if self.nt_bitmap[w] >> b & 1 == 0 {
                self.nt_bitmap[w] |= 1 << b;
                return Some(page);
            }
        }
        None
    }

    /// Frees a name-table page.
    pub fn free_nt_page(&mut self, page: u32) {
        let (w, b) = (page as usize / 64, page % 64);
        self.nt_bitmap[w] &= !(1 << b);
    }

    /// Returns `true` if a name-table page is allocated.
    pub fn nt_page_in_use(&self, page: u32) -> bool {
        let (w, b) = (page as usize / 64, page % 64);
        self.nt_bitmap[w] >> b & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let l = CfsLayout::compute(&DiskGeometry::TRIDENT_T300, 0);
        assert_eq!(l.boot_sector, 0);
        assert!(l.vam_start > l.boot_sector);
        assert!(l.nt_start >= l.vam_start + l.vam_sectors);
        assert!(l.data_start == l.nt_start + l.nt_pages * NT_PAGE_SECTORS);
        assert!(l.data_start < l.total_sectors);
    }

    #[test]
    fn tiny_layout_fits() {
        let l = CfsLayout::compute(&DiskGeometry::TINY, 0);
        assert!(l.nt_pages >= 8);
        assert!(l.data_start < l.total_sectors / 2);
    }

    #[test]
    fn nt_sector_addresses_pages() {
        let l = CfsLayout::compute(&DiskGeometry::TINY, 8);
        assert_eq!(l.nt_sector(0), l.nt_start);
        assert_eq!(l.nt_sector(1), l.nt_start + 4);
    }

    #[test]
    fn boot_page_roundtrip() {
        let mut b = BootPage::new(100);
        b.nt_root = 7;
        b.boot_count = 3;
        b.vam_valid = true;
        b.alloc_nt_page(100);
        let decoded = BootPage::decode(&b.encode()).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn boot_page_rejects_garbage() {
        assert!(BootPage::decode(&[0u8; SECTOR_BYTES]).is_err());
        assert!(BootPage::decode(&[]).is_err());
    }

    #[test]
    fn nt_bitmap_alloc_free() {
        let mut b = BootPage::new(10);
        let p0 = b.alloc_nt_page(10).unwrap();
        let p1 = b.alloc_nt_page(10).unwrap();
        assert_ne!(p0, p1);
        assert!(b.nt_page_in_use(p0));
        b.free_nt_page(p0);
        assert!(!b.nt_page_in_use(p0));
        assert_eq!(b.alloc_nt_page(10), Some(p0));
    }

    #[test]
    fn nt_bitmap_exhaustion() {
        let mut b = BootPage::new(2);
        assert!(b.alloc_nt_page(2).is_some());
        assert!(b.alloc_nt_page(2).is_some());
        assert_eq!(b.alloc_nt_page(2), None);
    }
}
