//! CFS — the *old* Cedar File System, reproduced as the paper's baseline.
//!
//! CFS (described in \[Schr85\] and §2 of the paper) keeps three mutually
//! redundant structures on disk:
//!
//! * the **file name table** — a B-tree mapping `name!version` to a small
//!   entry holding the uid and the disk address of the file's header;
//! * **header sectors** — two sectors per file holding the properties
//!   (name, length, create date, keep) and the run table, like UNIX inodes
//!   but per-file and relocating;
//! * **labels** — the Trident per-sector label field, checked in microcode
//!   on every transfer, identifying the owning file, page number and page
//!   type.
//!
//! Updates are synchronous and *non-atomic*: a crash in the middle of a
//! B-tree split, or a torn multi-sector name-table page write, leaves the
//! name table inconsistent, and the repair is the **scavenger** — a full
//! scan of every label on the volume that rebuilds the name table and the
//! free map, taking the better part of an hour on a 300 MB disk (§5.3,
//! Table 2). The VAM free-page bitmap is only a hint with no invariants:
//! allocation *verifies* candidate pages are free by reading their labels
//! before claiming them (§2), which is where CFS's six-I/O file create
//! comes from.
//!
//! A one-byte file create performs, per the paper's §6 script: verify free
//! pages (read labels), write header labels, write data labels, write the
//! header, update the file name table, write the byte, and rewrite the
//! header.

#![deny(unsafe_code)]

pub mod error;
pub mod fs_impl;
pub mod header;
pub mod layout;
pub mod nametable;
pub mod scavenge;
pub mod volume;

pub use error::CfsError;
pub use header::FileHeader;
pub use layout::CfsLayout;
pub use volume::{CfsConfig, CfsFile, CfsVolume};

/// Result alias for CFS operations.
pub type Result<T> = std::result::Result<T, CfsError>;
