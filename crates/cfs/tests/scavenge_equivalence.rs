//! Property test: the scavenger is a *total* repair. For any operation
//! sequence, destroying the entire name table and scavenging yields
//! exactly the same files with the same contents and the same free map —
//! "by reading the labels and interpreting some of the disk sectors, file
//! system structural information ... can be reconstructed" (§2).

use cedar_cfs::{CfsConfig, CfsVolume};
use cedar_disk::{CpuModel, SimDisk};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn config() -> CfsConfig {
    config_with(1)
}

fn config_with(workers: usize) -> CfsConfig {
    CfsConfig {
        nt_pages: 32,
        cpu: CpuModel::FREE,
        scavenge_workers: workers,
    }
}

#[derive(Clone, Debug)]
enum Op {
    Create(u8, u16),
    Delete(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..16, 1u16..4000).prop_map(|(n, b)| Op::Create(n, b)),
        1 => (0u8..16).prop_map(Op::Delete),
    ]
}

fn name(n: u8) -> String {
    format!("dir/file{n:02}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scavenge_rebuilds_exactly(ops in proptest::collection::vec(arb_op(), 1..40)) {
        let mut vol = CfsVolume::format(SimDisk::tiny(), config()).unwrap();
        // name → stack of version contents.
        let mut model: BTreeMap<String, Vec<Vec<u8>>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Create(n, bytes) => {
                    let data: Vec<u8> = (0..*bytes).map(|i| (i % 251) as u8).collect();
                    match vol.create(&name(*n), &data) {
                        Ok(_) => model.entry(name(*n)).or_default().push(data),
                        Err(cedar_cfs::CfsError::NoSpace) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                    }
                }
                Op::Delete(n) => match vol.delete(&name(*n), None) {
                    Ok(()) => {
                        let empty = {
                            let stack = model.entry(name(*n)).or_default();
                            stack.pop();
                            stack.is_empty()
                        };
                        if empty {
                            model.remove(&name(*n));
                        }
                    }
                    Err(cedar_cfs::CfsError::NotFound(_)) => {
                        model.remove(&name(*n));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                },
            }
        }
        let free_before = vol.free_sectors();

        // Obliterate the name table on disk, reboot (cache gone), scavenge.
        let nt_start = vol.layout().nt_start;
        let nt_len = vol.layout().nt_pages * 4;
        for s in nt_start..nt_start + nt_len {
            vol.disk_mut().wild_write(s, 0xDE);
        }
        let mut disk = vol.into_disk();
        disk.crash_now();
        disk.reboot();
        let (mut vol, _) = CfsVolume::boot(disk, config()).unwrap();
        let report = vol.scavenge().unwrap();

        // Exactly the model's files come back.
        let total_versions: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(report.files_recovered, total_versions);
        prop_assert_eq!(vol.free_sectors(), free_before);
        vol.verify().unwrap();
        for (fname, stack) in &model {
            let listing = vol.list_names("").unwrap();
            let versions: Vec<u32> = listing
                .iter()
                .filter(|(n, _)| &n.name == fname)
                .map(|(n, _)| n.version)
                .collect();
            prop_assert_eq!(versions.len(), stack.len(), "{}", fname);
            let mut sorted = versions.clone();
            sorted.sort_unstable();
            for (i, ver) in sorted.iter().enumerate() {
                let f = vol.open(fname, Some(*ver)).unwrap();
                let got = vol.read_file(&f).unwrap();
                prop_assert_eq!(&got, &stack[i], "{}!{}", fname, ver);
            }
        }
    }

    #[test]
    fn parallel_scavenge_equals_serial(
        ops in proptest::collection::vec(arb_op(), 1..40),
        workers in 2usize..9,
    ) {
        let mut vol = CfsVolume::format(SimDisk::tiny(), config()).unwrap();
        for op in &ops {
            match op {
                Op::Create(n, bytes) => {
                    let data: Vec<u8> = (0..*bytes).map(|i| (i % 251) as u8).collect();
                    match vol.create(&name(*n), &data) {
                        Ok(_) | Err(cedar_cfs::CfsError::NoSpace) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("create: {e}"))),
                    }
                }
                Op::Delete(n) => match vol.delete(&name(*n), None) {
                    Ok(()) | Err(cedar_cfs::CfsError::NotFound(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("delete: {e}"))),
                },
            }
        }

        // Obliterate the name table, crash, and scavenge the same image
        // twice — one worker vs many. Everything but the simulated clock
        // and I/O tally must agree.
        let nt_start = vol.layout().nt_start;
        let nt_len = vol.layout().nt_pages * 4;
        for s in nt_start..nt_start + nt_len {
            vol.disk_mut().wild_write(s, 0xDE);
        }
        let mut serial_disk = vol.into_disk();
        serial_disk.crash_now();
        serial_disk.reboot();
        let mut parallel_disk = serial_disk.clone();
        parallel_disk.reboot();

        let (mut sv, _) = CfsVolume::boot(serial_disk, config()).unwrap();
        let (mut pv, _) = CfsVolume::boot(parallel_disk, config_with(workers)).unwrap();
        let sr = sv.scavenge().unwrap();
        let pr = pv.scavenge().unwrap();
        prop_assert_eq!(sr.files_recovered, pr.files_recovered);
        prop_assert_eq!(sr.damaged_headers, pr.damaged_headers);
        prop_assert_eq!(sr.orphan_sectors, pr.orphan_sectors);

        sv.verify().unwrap();
        pv.verify().unwrap();
        prop_assert_eq!(sv.free_sectors(), pv.free_sectors());
        let s_list = sv.list_names("").unwrap();
        let p_list = pv.list_names("").unwrap();
        prop_assert_eq!(&s_list, &p_list);
        for (n, _) in &s_list {
            let sf = sv.open(&n.name, Some(n.version)).unwrap();
            let pf = pv.open(&n.name, Some(n.version)).unwrap();
            prop_assert_eq!(
                sv.read_file(&sf).unwrap(),
                pv.read_file(&pf).unwrap(),
                "{}!{}", n.name, n.version
            );
        }
    }
}
