//! Property tests for the volume substrates: the allocator never hands
//! out a sector twice, the VAM's arithmetic is exact, and run tables
//! agree with their flattened form under every operation sequence.

use cedar_vol::{AllocPolicy, Allocator, Run, RunTable, Vam};
use proptest::prelude::*;
use std::collections::HashSet;

const AREA: u32 = 4096;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u32),
    FreeOldest,
    FreeNewest,
}

fn arb_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u32..200).prop_map(AllocOp::Alloc),
            1 => Just(AllocOp::FreeOldest),
            1 => Just(AllocOp::FreeNewest),
        ],
        1..120,
    )
}

fn arb_policy() -> impl Strategy<Value = AllocPolicy> {
    prop_oneof![
        Just(AllocPolicy::SingleArea),
        (4u32..64).prop_map(|t| AllocPolicy::SplitAreas { small_threshold: t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_never_double_allocates(ops in arb_ops(), policy in arb_policy()) {
        let mut vam = Vam::new_all_allocated(AREA);
        vam.free_run(Run::new(0, AREA));
        let mut alloc = Allocator::new(policy, 0, AREA);
        let mut live: Vec<RunTable> = Vec::new();
        let mut owned: HashSet<u32> = HashSet::new();

        for op in &ops {
            match op {
                AllocOp::Alloc(pages) => {
                    match alloc.allocate(&mut vam, *pages) {
                        Ok(rt) => {
                            prop_assert_eq!(rt.pages(), *pages);
                            for r in rt.runs() {
                                prop_assert!(r.end() <= AREA, "run out of bounds: {:?}", r);
                                for a in r.start..r.end() {
                                    prop_assert!(
                                        owned.insert(a),
                                        "sector {a} allocated twice"
                                    );
                                }
                            }
                            live.push(rt);
                        }
                        Err(_) => {
                            // Full is acceptable; nothing must have leaked.
                        }
                    }
                }
                AllocOp::FreeOldest | AllocOp::FreeNewest => {
                    let rt = if matches!(op, AllocOp::FreeOldest) {
                        if live.is_empty() { continue; }
                        live.remove(0)
                    } else {
                        match live.pop() {
                            Some(rt) => rt,
                            None => continue,
                        }
                    };
                    alloc.free(&mut vam, &rt, false);
                    for r in rt.runs() {
                        for a in r.start..r.end() {
                            owned.remove(&a);
                        }
                    }
                }
            }
            // The VAM's free count always complements the owned set.
            prop_assert_eq!(vam.free_count() as usize, AREA as usize - owned.len());
        }
    }

    #[test]
    fn shadow_commit_preserves_totals(
        frees in proptest::collection::vec((0u32..AREA, 1u32..16), 1..30),
    ) {
        let mut vam = Vam::new_all_allocated(AREA);
        let mut expected = 0u32;
        let mut marked: HashSet<u32> = HashSet::new();
        for (start, len) in frees {
            let end = (start + len).min(AREA);
            for a in start..end {
                if marked.insert(a) {
                    expected += 1;
                }
            }
            vam.shadow_free_run(Run::new(start, end - start));
        }
        prop_assert_eq!(vam.free_count(), 0);
        vam.commit_shadow();
        prop_assert_eq!(vam.free_count(), expected);
        prop_assert_eq!(vam.shadow_count(), 0);
    }

    #[test]
    fn find_free_run_returns_free_sectors(
        holes in proptest::collection::vec((0u32..AREA, 1u32..32), 1..20),
        want in 1u32..24,
        from in 0u32..AREA,
    ) {
        let mut vam = Vam::new_all_allocated(AREA);
        for (start, len) in &holes {
            let end = (*start + *len).min(AREA);
            vam.free_run(Run::new(*start, end - *start));
        }
        if let Some(run) = vam.find_free_run(want, 0, AREA, from) {
            prop_assert_eq!(run.len, want);
            for a in run.start..run.end() {
                prop_assert!(vam.is_free(a));
            }
        }
    }

    #[test]
    fn run_table_matches_flat_model(
        runs in proptest::collection::vec((0u32..100_000, 1u32..40), 0..20),
        truncate_at in 0u32..400,
    ) {
        let mut rt = RunTable::new();
        let mut flat: Vec<u32> = Vec::new();
        for (start, len) in runs {
            rt.push(Run::new(start, len));
            flat.extend(start..start + len);
        }
        prop_assert_eq!(rt.pages() as usize, flat.len());
        for (page, &sector) in flat.iter().enumerate() {
            prop_assert_eq!(rt.sector_of(page as u32), Some(sector));
            // extent_at starts at the same sector and stays contiguous.
            let e = rt.extent_at(page as u32).unwrap();
            prop_assert_eq!(e.start, sector);
            for k in 0..e.len as usize {
                prop_assert_eq!(flat.get(page + k).copied(), Some(sector + k as u32));
            }
        }
        prop_assert_eq!(rt.sector_of(flat.len() as u32), None);

        // Truncation removes exactly the tail.
        let mut rt2 = rt.clone();
        let removed = rt2.truncate(truncate_at);
        let keep = (truncate_at as usize).min(flat.len());
        prop_assert_eq!(rt2.pages() as usize, keep);
        let removed_flat: Vec<u32> = removed
            .iter()
            .flat_map(|r| r.start..r.end())
            .collect();
        prop_assert_eq!(&removed_flat, &flat[keep..]);

        // Encode/decode roundtrip.
        let bytes = rt.encode();
        let decoded =
            RunTable::decode(&mut cedar_vol::codec::Reader::new(&bytes)).unwrap();
        prop_assert_eq!(decoded, rt);
    }
}

/// Reference bit-at-a-time VAM over a plain bool vector — the old
/// implementation, kept as the oracle for the word-parallel mask path.
#[derive(Clone)]
struct BitVam {
    free: Vec<bool>,
    shadow: Vec<bool>,
}

impl BitVam {
    fn new(sectors: u32) -> Self {
        Self {
            free: vec![false; sectors as usize],
            shadow: vec![false; sectors as usize],
        }
    }

    fn apply(&mut self, op: &VamOp) {
        match *op {
            VamOp::Free(r) => {
                for a in r.start..r.end() {
                    self.free[a as usize] = true;
                }
            }
            VamOp::Allocate(r) => {
                for a in r.start..r.end() {
                    self.free[a as usize] = false;
                }
            }
            VamOp::ShadowFree(r) => {
                for a in r.start..r.end() {
                    self.shadow[a as usize] = true;
                }
            }
            VamOp::CommitShadow => {
                for (f, s) in self.free.iter_mut().zip(self.shadow.iter_mut()) {
                    *f |= *s;
                    *s = false;
                }
            }
        }
    }
}

#[derive(Clone, Debug)]
enum VamOp {
    Free(Run),
    Allocate(Run),
    ShadowFree(Run),
    CommitShadow,
}

fn arb_run(sectors: u32) -> impl Strategy<Value = Run> {
    (0..sectors, 1u32..200).prop_map(move |(start, len)| {
        let len = len.min(sectors - start);
        Run::new(start, len.max(1))
    })
}

fn arb_vam_ops(sectors: u32) -> impl Strategy<Value = Vec<VamOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => arb_run(sectors).prop_map(VamOp::Free),
            3 => arb_run(sectors).prop_map(VamOp::Allocate),
            2 => arb_run(sectors).prop_map(VamOp::ShadowFree),
            1 => Just(VamOp::CommitShadow),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // The word-parallel mask path in `Vam` agrees bit-for-bit with the
    // per-sector reference under arbitrary op sequences (runs placed
    // anywhere relative to word boundaries, including the ragged last
    // word).
    #[test]
    fn word_path_equals_bit_path(
        sectors in 65u32..1500,
        ops in arb_vam_ops(1500),
    ) {
        let mut vam = Vam::new_all_allocated(sectors);
        let mut oracle = BitVam::new(sectors);
        for op in &ops {
            // Clip the op's run into range for this volume size.
            let clipped = |r: Run| -> Option<Run> {
                if r.start >= sectors { return None; }
                Some(Run::new(r.start, r.len.min(sectors - r.start)))
            };
            let op = match *op {
                VamOp::Free(r) => match clipped(r) { Some(r) => VamOp::Free(r), None => continue },
                VamOp::Allocate(r) => match clipped(r) { Some(r) => VamOp::Allocate(r), None => continue },
                VamOp::ShadowFree(r) => match clipped(r) { Some(r) => VamOp::ShadowFree(r), None => continue },
                VamOp::CommitShadow => VamOp::CommitShadow,
            };
            match op {
                VamOp::Free(r) => vam.free_run(r),
                VamOp::Allocate(r) => vam.allocate_run(r),
                VamOp::ShadowFree(r) => vam.shadow_free_run(r),
                VamOp::CommitShadow => vam.commit_shadow(),
            }
            oracle.apply(&op);
        }
        prop_assert_eq!(
            vam.free_count() as usize,
            oracle.free.iter().filter(|&&f| f).count()
        );
        prop_assert_eq!(
            vam.shadow_count() as usize,
            oracle.shadow.iter().filter(|&&s| s).count()
        );
        for a in 0..sectors {
            prop_assert_eq!(vam.is_free(a), oracle.free[a as usize], "sector {}", a);
        }
    }

    // merge_or / subtract agree with per-sector set algebra.
    #[test]
    fn merge_and_subtract_match_set_algebra(
        sectors in 65u32..1024,
        a_runs in proptest::collection::vec(arb_run(1024), 0..20),
        b_runs in proptest::collection::vec(arb_run(1024), 0..20),
    ) {
        let clip = |r: Run| -> Option<Run> {
            if r.start >= sectors { return None; }
            Some(Run::new(r.start, r.len.min(sectors - r.start)))
        };
        let mut a = Vam::new_all_allocated(sectors);
        let mut b = Vam::new_all_allocated(sectors);
        let mut set_a = vec![false; sectors as usize];
        let mut set_b = vec![false; sectors as usize];
        for r in a_runs.iter().filter_map(|&r| clip(r)) {
            a.free_run(r);
            for s in r.start..r.end() { set_a[s as usize] = true; }
        }
        for r in b_runs.iter().filter_map(|&r| clip(r)) {
            b.free_run(r);
            for s in r.start..r.end() { set_b[s as usize] = true; }
        }

        let mut union = a.clone();
        union.merge_or(&b);
        let mut diff = a.clone();
        diff.subtract(&b);
        for s in 0..sectors {
            let (sa, sb) = (set_a[s as usize], set_b[s as usize]);
            prop_assert_eq!(union.is_free(s), sa || sb);
            prop_assert_eq!(diff.is_free(s), sa && !sb);
        }
    }
}
