//! Property tests for the volume substrates: the allocator never hands
//! out a sector twice, the VAM's arithmetic is exact, and run tables
//! agree with their flattened form under every operation sequence.

use cedar_vol::{AllocPolicy, Allocator, Run, RunTable, Vam};
use proptest::prelude::*;
use std::collections::HashSet;

const AREA: u32 = 4096;

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc(u32),
    FreeOldest,
    FreeNewest,
}

fn arb_ops() -> impl Strategy<Value = Vec<AllocOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (1u32..200).prop_map(AllocOp::Alloc),
            1 => Just(AllocOp::FreeOldest),
            1 => Just(AllocOp::FreeNewest),
        ],
        1..120,
    )
}

fn arb_policy() -> impl Strategy<Value = AllocPolicy> {
    prop_oneof![
        Just(AllocPolicy::SingleArea),
        (4u32..64).prop_map(|t| AllocPolicy::SplitAreas { small_threshold: t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_never_double_allocates(ops in arb_ops(), policy in arb_policy()) {
        let mut vam = Vam::new_all_allocated(AREA);
        vam.free_run(Run::new(0, AREA));
        let mut alloc = Allocator::new(policy, 0, AREA);
        let mut live: Vec<RunTable> = Vec::new();
        let mut owned: HashSet<u32> = HashSet::new();

        for op in &ops {
            match op {
                AllocOp::Alloc(pages) => {
                    match alloc.allocate(&mut vam, *pages) {
                        Ok(rt) => {
                            prop_assert_eq!(rt.pages(), *pages);
                            for r in rt.runs() {
                                prop_assert!(r.end() <= AREA, "run out of bounds: {:?}", r);
                                for a in r.start..r.end() {
                                    prop_assert!(
                                        owned.insert(a),
                                        "sector {a} allocated twice"
                                    );
                                }
                            }
                            live.push(rt);
                        }
                        Err(_) => {
                            // Full is acceptable; nothing must have leaked.
                        }
                    }
                }
                AllocOp::FreeOldest | AllocOp::FreeNewest => {
                    let rt = if matches!(op, AllocOp::FreeOldest) {
                        if live.is_empty() { continue; }
                        live.remove(0)
                    } else {
                        match live.pop() {
                            Some(rt) => rt,
                            None => continue,
                        }
                    };
                    alloc.free(&mut vam, &rt, false);
                    for r in rt.runs() {
                        for a in r.start..r.end() {
                            owned.remove(&a);
                        }
                    }
                }
            }
            // The VAM's free count always complements the owned set.
            prop_assert_eq!(vam.free_count() as usize, AREA as usize - owned.len());
        }
    }

    #[test]
    fn shadow_commit_preserves_totals(
        frees in proptest::collection::vec((0u32..AREA, 1u32..16), 1..30),
    ) {
        let mut vam = Vam::new_all_allocated(AREA);
        let mut expected = 0u32;
        let mut marked: HashSet<u32> = HashSet::new();
        for (start, len) in frees {
            let end = (start + len).min(AREA);
            for a in start..end {
                if marked.insert(a) {
                    expected += 1;
                }
            }
            vam.shadow_free_run(Run::new(start, end - start));
        }
        prop_assert_eq!(vam.free_count(), 0);
        vam.commit_shadow();
        prop_assert_eq!(vam.free_count(), expected);
        prop_assert_eq!(vam.shadow_count(), 0);
    }

    #[test]
    fn find_free_run_returns_free_sectors(
        holes in proptest::collection::vec((0u32..AREA, 1u32..32), 1..20),
        want in 1u32..24,
        from in 0u32..AREA,
    ) {
        let mut vam = Vam::new_all_allocated(AREA);
        for (start, len) in &holes {
            let end = (*start + *len).min(AREA);
            vam.free_run(Run::new(*start, end - *start));
        }
        if let Some(run) = vam.find_free_run(want, 0, AREA, from) {
            prop_assert_eq!(run.len, want);
            for a in run.start..run.end() {
                prop_assert!(vam.is_free(a));
            }
        }
    }

    #[test]
    fn run_table_matches_flat_model(
        runs in proptest::collection::vec((0u32..100_000, 1u32..40), 0..20),
        truncate_at in 0u32..400,
    ) {
        let mut rt = RunTable::new();
        let mut flat: Vec<u32> = Vec::new();
        for (start, len) in runs {
            rt.push(Run::new(start, len));
            flat.extend(start..start + len);
        }
        prop_assert_eq!(rt.pages() as usize, flat.len());
        for (page, &sector) in flat.iter().enumerate() {
            prop_assert_eq!(rt.sector_of(page as u32), Some(sector));
            // extent_at starts at the same sector and stays contiguous.
            let e = rt.extent_at(page as u32).unwrap();
            prop_assert_eq!(e.start, sector);
            for k in 0..e.len as usize {
                prop_assert_eq!(flat.get(page + k).copied(), Some(sector + k as u32));
            }
        }
        prop_assert_eq!(rt.sector_of(flat.len() as u32), None);

        // Truncation removes exactly the tail.
        let mut rt2 = rt.clone();
        let removed = rt2.truncate(truncate_at);
        let keep = (truncate_at as usize).min(flat.len());
        prop_assert_eq!(rt2.pages() as usize, keep);
        let removed_flat: Vec<u32> = removed
            .iter()
            .flat_map(|r| r.start..r.end())
            .collect();
        prop_assert_eq!(&removed_flat, &flat[keep..]);

        // Encode/decode roundtrip.
        let bytes = rt.encode();
        let decoded =
            RunTable::decode(&mut cedar_vol::codec::Reader::new(&bytes)).unwrap();
        prop_assert_eq!(decoded, rt);
    }
}
