//! File names and their order-preserving key encoding.
//!
//! Cedar files are named `name!version` — "Both systems support versions
//! for files. Most files are written exactly once." (§5.3). The name table
//! B-tree is keyed so that all versions of a file sort together, newest
//! last, and a directory listing is a key-range scan over a name prefix.

use std::fmt;

/// Maximum length of a file name in bytes (keeps name-table entries within
/// the B-tree's per-entry budget).
pub const MAX_NAME_LEN: usize = 64;

/// A versioned file name.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileName {
    /// The textual name (no NUL bytes; at most [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// The version number (1 is the first version).
    pub version: u32,
}

impl FileName {
    /// Creates a validated file name.
    pub fn new(name: &str, version: u32) -> Result<Self, String> {
        if name.is_empty() {
            return Err("empty file name".into());
        }
        if name.len() > MAX_NAME_LEN {
            return Err(format!(
                "file name of {} bytes exceeds maximum {MAX_NAME_LEN}",
                name.len()
            ));
        }
        if name.bytes().any(|b| b == 0) {
            return Err("file name contains NUL".into());
        }
        Ok(Self {
            name: name.to_string(),
            version,
        })
    }

    /// Encodes to a B-tree key: `name ++ 0x00 ++ version(BE)`. The NUL
    /// terminator keeps `"ab"` sorting before `"ab0"`-prefixed longer
    /// names' versions, and the big-endian version sorts versions
    /// numerically.
    pub fn to_key(&self) -> Vec<u8> {
        let mut k = Vec::with_capacity(self.name.len() + 5);
        k.extend_from_slice(self.name.as_bytes());
        k.push(0);
        k.extend_from_slice(&self.version.to_be_bytes());
        k
    }

    /// Decodes a key produced by [`Self::to_key`].
    pub fn from_key(key: &[u8]) -> Result<Self, String> {
        if key.len() < 5 {
            return Err("key too short".into());
        }
        let (name_part, tail) = key.split_at(key.len() - 5);
        if tail[0] != 0 {
            return Err("missing NUL separator".into());
        }
        let name = std::str::from_utf8(name_part)
            .map_err(|_| "non-UTF-8 name".to_string())?
            .to_string();
        let version = u32::from_be_bytes([tail[1], tail[2], tail[3], tail[4]]);
        Self::new(&name, version)
    }

    /// Key-range `[lo, hi)` covering every version of exactly `name`.
    pub fn versions_range(name: &str) -> (Vec<u8>, Vec<u8>) {
        let mut lo = name.as_bytes().to_vec();
        lo.push(0);
        let mut hi = name.as_bytes().to_vec();
        hi.push(1);
        (lo, hi)
    }

    /// Key-range `[lo, hi)` covering every name starting with `prefix`
    /// (a directory listing).
    pub fn prefix_range(prefix: &str) -> (Vec<u8>, Vec<u8>) {
        let lo = prefix.as_bytes().to_vec();
        let mut hi = prefix.as_bytes().to_vec();
        // Increment the last byte, dropping trailing 0xFF bytes.
        while let Some(last) = hi.last_mut() {
            if *last < 0xFF {
                *last += 1;
                return (lo, hi);
            }
            hi.pop();
        }
        // All-0xFF prefix: unbounded above; use the maximal key.
        (lo, vec![0xFF; MAX_NAME_LEN + 5])
    }
}

impl fmt::Display for FileName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}!{}", self.name, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let n = FileName::new("docs/paper.tioga", 7).unwrap();
        assert_eq!(FileName::from_key(&n.to_key()).unwrap(), n);
    }

    #[test]
    fn rejects_bad_names() {
        assert!(FileName::new("", 1).is_err());
        assert!(FileName::new("a\0b", 1).is_err());
        assert!(FileName::new(&"x".repeat(65), 1).is_err());
        assert!(FileName::new(&"x".repeat(64), 1).is_ok());
    }

    #[test]
    fn versions_sort_numerically() {
        let k1 = FileName::new("f", 2).unwrap().to_key();
        let k2 = FileName::new("f", 10).unwrap().to_key();
        assert!(k1 < k2); // Big-endian: 2 < 10 as bytes too.
        let k255 = FileName::new("f", 255).unwrap().to_key();
        let k256 = FileName::new("f", 256).unwrap().to_key();
        assert!(k255 < k256);
    }

    #[test]
    fn short_name_sorts_before_longer() {
        let ab = FileName::new("ab", 999).unwrap().to_key();
        let ab0 = FileName::new("ab0", 1).unwrap().to_key();
        assert!(ab < ab0);
    }

    #[test]
    fn versions_range_covers_exact_name_only() {
        let (lo, hi) = FileName::versions_range("file");
        let inside = FileName::new("file", 1).unwrap().to_key();
        let inside_hi = FileName::new("file", u32::MAX).unwrap().to_key();
        let outside = FileName::new("file2", 1).unwrap().to_key();
        assert!(lo <= inside && inside < hi);
        assert!(inside_hi < hi);
        assert!(outside >= hi);
    }

    #[test]
    fn prefix_range_covers_directory() {
        let (lo, hi) = FileName::prefix_range("src/");
        for name in ["src/a", "src/zzz"] {
            let k = FileName::new(name, 3).unwrap().to_key();
            assert!(lo <= k && k < hi, "{name}");
        }
        let other = FileName::new("tmp/a", 1).unwrap().to_key();
        assert!(other >= hi);
        let before = FileName::new("abc", 1).unwrap().to_key();
        assert!(before < lo);
    }

    #[test]
    fn display_uses_bang_version() {
        assert_eq!(
            FileName::new("memo.txt", 3).unwrap().to_string(),
            "memo.txt!3"
        );
    }
}
