//! Shared volume vocabulary for the Cedar file systems.
//!
//! Both CFS (the old, label-based system) and FSD (the paper's logging +
//! group-commit reimplementation) manage the same physical resources: runs
//! of sectors, a free-page bitmap (the **VAM**, Volume Allocation Map), and
//! name-ordered keys in a B-tree file name table. This crate holds those
//! common pieces:
//!
//! * [`runtable`] — extents ("runs") and run tables, including the checksum
//!   FSD stores in leader pages;
//! * [`vam`] — the VAM bitmap plus the *shadow* bitmap FSD uses to defer
//!   frees until the deleting operation commits (§5.5);
//! * [`alloc`] — run allocation policies: the old fragmenting single-area
//!   first fit, and FSD's split big/small areas (§5.6);
//! * [`name`] — `name!version` keys with an order-preserving encoding;
//! * [`codec`] — little helpers for the hand-rolled on-disk encodings;
//! * [`fs`] — the unified [`fs::FileSystem`] trait all three backends
//!   (CFS, FSD, FFS) implement, with the shared [`fs::CedarFsError`].

#![deny(unsafe_code)]

pub mod alloc;
pub mod codec;
pub mod fs;
pub mod name;
pub mod runtable;
pub mod vam;

pub use alloc::{AllocError, AllocPolicy, Allocator};
pub use fs::{CedarFsError, FileInfo, FileSystem, FsStats};
pub use name::FileName;
pub use runtable::{Run, RunTable};
pub use vam::Vam;
