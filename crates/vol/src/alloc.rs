//! Run allocation policies.
//!
//! §5.6: the CFS allocator "performed adequately, except that it tended to
//! fragment the free space. Large free blocks of space were broken up by
//! small files." FSD "partitions the disk into big and small file areas to
//! curtail fragmentation... dynamic storage is grown starting from small
//! addresses, while the stack is grown from the end of memory towards
//! small addresses." The areas are only hints: allocation falls back to
//! the other area rather than failing.

use crate::runtable::{Run, RunTable};
use crate::vam::Vam;
use cedar_disk::SectorAddr;
use std::fmt;

/// Allocation failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// Not enough free sectors in the data area.
    NoSpace,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoSpace => write!(f, "no space left in data area"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Which allocation policy to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// CFS style: one area, rotating first fit. Fragments under churn.
    SingleArea,
    /// FSD style: files of at most `small_threshold` pages allocate
    /// ascending from the front of the data area; larger files allocate
    /// from the back, growing toward the front.
    SplitAreas {
        /// Largest file (in pages) still considered "small". The paper
        /// measures 50 % of files under 4000 bytes (8 pages); the default
        /// threshold of 32 pages (16 KB) keeps cached remote copies and
        /// other small files in the front area.
        small_threshold: u32,
    },
}

/// A run allocator over a data area `[lo, hi)` of a [`Vam`].
#[derive(Clone, Debug)]
pub struct Allocator {
    policy: AllocPolicy,
    lo: SectorAddr,
    hi: SectorAddr,
    /// Rotating cursor (single-area policy, and the small area of the
    /// split policy).
    cursor: SectorAddr,
}

impl Allocator {
    /// Creates an allocator for the data area `[lo, hi)`.
    pub fn new(policy: AllocPolicy, lo: SectorAddr, hi: SectorAddr) -> Self {
        assert!(lo < hi, "empty data area");
        Self {
            policy,
            lo,
            hi,
            cursor: lo,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> AllocPolicy {
        self.policy
    }

    /// The data-area bounds `[lo, hi)`.
    pub fn bounds(&self) -> (SectorAddr, SectorAddr) {
        (self.lo, self.hi)
    }

    /// Allocates `pages` sectors for a file, marking them allocated in
    /// `vam` and returning the run table (contiguous when possible). On
    /// failure nothing is allocated.
    pub fn allocate(&mut self, vam: &mut Vam, pages: u32) -> Result<RunTable, AllocError> {
        if pages == 0 {
            return Ok(RunTable::new());
        }
        let runs = match self.policy {
            AllocPolicy::SingleArea => self.allocate_forward(vam, pages, self.lo, self.hi),
            AllocPolicy::SplitAreas { small_threshold } => {
                if pages <= small_threshold {
                    // "Dynamic storage is grown starting from small
                    // addresses": true first fit from the front, so freed
                    // holes near the front are reused and small-file churn
                    // never sprays across the big area.
                    self.allocate_first_fit(vam, pages)
                } else {
                    self.allocate_backward(vam, pages)
                }
            }
        }?;
        Ok(RunTable::from_runs(runs))
    }

    /// Allocates `pages` more sectors to extend an existing file, trying
    /// to continue contiguously after its last run.
    pub fn extend(
        &mut self,
        vam: &mut Vam,
        table: &mut RunTable,
        pages: u32,
    ) -> Result<(), AllocError> {
        if pages == 0 {
            return Ok(());
        }
        // Try the sectors immediately following the file's tail first.
        if let Some(last) = table.runs().last().copied() {
            let want = Run::new(last.end(), pages);
            if want.end() <= self.hi && (want.start..want.end()).all(|a| vam.is_free(a)) {
                vam.allocate_run(want);
                table.push(want);
                return Ok(());
            }
        }
        let grown = self.allocate(vam, pages)?;
        for r in grown.runs() {
            table.push(*r);
        }
        Ok(())
    }

    /// Frees every run of a table back to the VAM (or, when `shadow` is
    /// set, into the shadow bitmap for commit-deferred freeing, §5.5).
    pub fn free(&mut self, vam: &mut Vam, table: &RunTable, shadow: bool) {
        for r in table.runs() {
            if shadow {
                vam.shadow_free_run(*r);
            } else {
                vam.free_run(*r);
            }
        }
    }

    /// Forward first-fit from the rotating cursor; falls back to gathering
    /// the largest available fragments when no contiguous run exists.
    fn allocate_forward(
        &mut self,
        vam: &mut Vam,
        pages: u32,
        lo: SectorAddr,
        hi: SectorAddr,
    ) -> Result<Vec<Run>, AllocError> {
        if let Some(run) = vam.find_free_run(pages, lo, hi, self.cursor) {
            vam.allocate_run(run);
            self.cursor = if run.end() >= hi { lo } else { run.end() };
            return Ok(vec![run]);
        }
        self.gather_fragments(vam, pages, lo, hi)
    }

    /// First fit from the very front of the area (small files under the
    /// split policy).
    fn allocate_first_fit(&mut self, vam: &mut Vam, pages: u32) -> Result<Vec<Run>, AllocError> {
        if let Some(run) = vam.find_free_run(pages, self.lo, self.hi, self.lo) {
            vam.allocate_run(run);
            return Ok(vec![run]);
        }
        self.gather_fragments(vam, pages, self.lo, self.hi)
    }

    /// Backward allocation for big files: take the free run nearest the
    /// end of the area.
    fn allocate_backward(&mut self, vam: &mut Vam, pages: u32) -> Result<Vec<Run>, AllocError> {
        if let Some(run) = find_free_run_backward(vam, pages, self.lo, self.hi) {
            vam.allocate_run(run);
            return Ok(vec![run]);
        }
        self.gather_fragments(vam, pages, self.lo, self.hi)
    }

    /// Last resort: satisfy the request from the largest free fragments.
    /// Rolls back on failure.
    fn gather_fragments(
        &mut self,
        vam: &mut Vam,
        pages: u32,
        lo: SectorAddr,
        hi: SectorAddr,
    ) -> Result<Vec<Run>, AllocError> {
        let mut runs: Vec<Run> = Vec::new();
        let mut remaining = pages;
        while remaining > 0 {
            let Some(run) = vam.find_largest_free_run(lo, hi, remaining) else {
                for r in &runs {
                    vam.free_run(*r);
                }
                return Err(AllocError::NoSpace);
            };
            vam.allocate_run(run);
            remaining -= run.len;
            runs.push(run);
        }
        Ok(runs)
    }
}

/// Finds the free run of `len` sectors closest to `hi`, or `None`.
fn find_free_run_backward(vam: &Vam, len: u32, lo: SectorAddr, hi: SectorAddr) -> Option<Run> {
    if len == 0 || lo >= hi {
        return None;
    }
    let mut run_len = 0u32;
    // Scan backward; a run is found when `len` consecutive free sectors
    // have been seen, ending as close to `hi` as possible.
    let mut a = hi;
    while a > lo {
        a -= 1;
        if vam.is_free(a) {
            run_len += 1;
            if run_len == len {
                return Some(Run::new(a, len));
            }
        } else {
            run_len = 0;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_vam(sectors: u32) -> Vam {
        let mut v = Vam::new_all_allocated(sectors);
        v.free_run(Run::new(0, sectors));
        v
    }

    #[test]
    fn zero_page_allocation_is_empty() {
        let mut vam = open_vam(100);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        assert_eq!(a.allocate(&mut vam, 0).unwrap(), RunTable::new());
    }

    #[test]
    fn single_area_allocates_contiguously_and_rotates() {
        let mut vam = open_vam(100);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        let t1 = a.allocate(&mut vam, 10).unwrap();
        let t2 = a.allocate(&mut vam, 10).unwrap();
        assert_eq!(t1.runs(), &[Run::new(0, 10)]);
        assert_eq!(t2.runs(), &[Run::new(10, 10)]);
        assert_eq!(vam.free_count(), 80);
    }

    #[test]
    fn split_areas_separate_small_and_big() {
        let mut vam = open_vam(1000);
        let mut a = Allocator::new(
            AllocPolicy::SplitAreas {
                small_threshold: 32,
            },
            0,
            1000,
        );
        let small = a.allocate(&mut vam, 4).unwrap();
        let big = a.allocate(&mut vam, 200).unwrap();
        assert_eq!(small.runs(), &[Run::new(0, 4)]);
        assert_eq!(big.runs(), &[Run::new(800, 200)]); // At the very end.
        let small2 = a.allocate(&mut vam, 4).unwrap();
        assert_eq!(small2.runs(), &[Run::new(4, 4)]);
        let big2 = a.allocate(&mut vam, 100).unwrap();
        assert_eq!(big2.runs(), &[Run::new(700, 100)]);
    }

    #[test]
    fn fragmented_area_served_from_fragments() {
        let mut vam = Vam::new_all_allocated(100);
        vam.free_run(Run::new(0, 5));
        vam.free_run(Run::new(50, 5));
        vam.free_run(Run::new(90, 3));
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        let t = a.allocate(&mut vam, 12).unwrap();
        assert_eq!(t.pages(), 12);
        assert!(t.runs().len() >= 3);
        assert_eq!(vam.free_count(), 1);
    }

    #[test]
    fn no_space_rolls_back() {
        let mut vam = Vam::new_all_allocated(100);
        vam.free_run(Run::new(10, 5));
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        assert_eq!(a.allocate(&mut vam, 6), Err(AllocError::NoSpace));
        // The 5 free sectors are still free.
        assert_eq!(vam.free_count(), 5);
    }

    #[test]
    fn extend_prefers_contiguous_tail() {
        let mut vam = open_vam(100);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        let mut t = a.allocate(&mut vam, 4).unwrap();
        a.extend(&mut vam, &mut t, 4).unwrap();
        assert_eq!(t.runs(), &[Run::new(0, 8)]); // Coalesced into one run.
    }

    #[test]
    fn extend_falls_back_when_tail_taken() {
        let mut vam = open_vam(100);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        let mut t = a.allocate(&mut vam, 4).unwrap();
        let _blocker = a.allocate(&mut vam, 4).unwrap(); // Takes sectors 4..8.
        a.extend(&mut vam, &mut t, 4).unwrap();
        assert_eq!(t.pages(), 8);
        assert_eq!(t.runs().len(), 2);
    }

    #[test]
    fn free_returns_pages() {
        let mut vam = open_vam(100);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 100);
        let t = a.allocate(&mut vam, 10).unwrap();
        a.free(&mut vam, &t, false);
        assert_eq!(vam.free_count(), 100);
    }

    #[test]
    fn shadow_free_defers_reuse() {
        let mut vam = open_vam(20);
        let mut a = Allocator::new(AllocPolicy::SingleArea, 0, 20);
        let t = a.allocate(&mut vam, 15).unwrap();
        a.free(&mut vam, &t, true);
        // Only 5 sectors usable before commit.
        assert_eq!(a.allocate(&mut vam, 10), Err(AllocError::NoSpace));
        vam.commit_shadow();
        assert!(a.allocate(&mut vam, 10).is_ok());
    }

    #[test]
    fn split_policy_resists_fragmentation_vs_single() {
        // The §5.6 claim in miniature: interleave small-file churn with
        // big-file allocation; the split policy keeps big files in fewer
        // runs.
        let frag_with = |policy: AllocPolicy| -> usize {
            let mut vam = open_vam(4000);
            let mut a = Allocator::new(policy, 0, 4000);
            // Small-file churn that drives the single-area rotating cursor
            // around the whole disk several times (2000 × 3 = 6000 sectors
            // allocated over a 4000-sector area) at modest occupancy.
            let mut smalls: Vec<RunTable> = Vec::new();
            let mut x: u64 = 42;
            for i in 0..2000 {
                let t = a.allocate(&mut vam, 3).unwrap();
                if i % 10 == 0 {
                    // A long-lived small file ("keeper"): under the
                    // rotating single-area policy these end up sprayed
                    // across the whole disk, pinning fragmentation.
                    continue;
                }
                smalls.push(t);
                if smalls.len() > 150 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let victim = (x >> 33) as usize % smalls.len();
                    let t = smalls.swap_remove(victim);
                    a.free(&mut vam, &t, false);
                }
            }
            // Now allocate one big file into whatever the churn left.
            a.allocate(&mut vam, 256).unwrap().runs().len()
        };
        let single = frag_with(AllocPolicy::SingleArea);
        let split = frag_with(AllocPolicy::SplitAreas {
            small_threshold: 32,
        });
        assert!(
            split < single,
            "split areas should fragment less: split={split} single={single}"
        );
        assert_eq!(split, 1); // The big file lands in one run at the end.
    }
}
