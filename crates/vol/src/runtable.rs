//! Runs (extents) and run tables.
//!
//! Cedar's File Package "allocates pages in runs (often called extents)"
//! (§5.6). A file's run table maps its logical pages to disk sectors; in
//! CFS it lived in the header sectors, in FSD it moved into the file name
//! table, with a preamble and checksum kept in the leader page as a
//! software check (Table 1).

use crate::codec::{fnv1a, Reader, Writer};
use cedar_disk::SectorAddr;

/// A contiguous run of sectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First sector of the run.
    pub start: SectorAddr,
    /// Number of sectors.
    pub len: u32,
}

impl Run {
    /// Creates a run.
    pub const fn new(start: SectorAddr, len: u32) -> Self {
        Self { start, len }
    }

    /// One-past-the-end sector address.
    pub fn end(&self) -> SectorAddr {
        self.start + self.len
    }

    /// Returns `true` if `addr` falls inside the run.
    pub fn contains(&self, addr: SectorAddr) -> bool {
        (self.start..self.end()).contains(&addr)
    }
}

/// A file's run table: logical pages in order, as a sequence of runs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunTable {
    runs: Vec<Run>,
}

impl RunTable {
    /// Creates an empty run table (a zero-page file).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a run table from runs, coalescing adjacent ones.
    pub fn from_runs(runs: impl IntoIterator<Item = Run>) -> Self {
        let mut rt = Self::new();
        for r in runs {
            rt.push(r);
        }
        rt
    }

    /// The runs, in logical-page order.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Total number of pages (sectors) in the file.
    pub fn pages(&self) -> u32 {
        self.runs.iter().map(|r| r.len).sum()
    }

    /// Returns `true` if the table has no pages.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Appends a run at the logical end, coalescing with the last run when
    /// physically adjacent.
    pub fn push(&mut self, run: Run) {
        if run.len == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.end() == run.start {
                last.len += run.len;
                return;
            }
        }
        self.runs.push(run);
    }

    /// Maps a logical page number to its sector address.
    pub fn sector_of(&self, page: u32) -> Option<SectorAddr> {
        let mut skip = page;
        for r in &self.runs {
            if skip < r.len {
                return Some(r.start + skip);
            }
            skip -= r.len;
        }
        None
    }

    /// Splits the logical range `[page, pages())` off the tail, returning
    /// the removed runs — used when a file is contracted.
    pub fn truncate(&mut self, page: u32) -> Vec<Run> {
        let mut removed = Vec::new();
        let mut remaining = page;
        let mut keep = Vec::new();
        for r in self.runs.drain(..) {
            if remaining >= r.len {
                remaining -= r.len;
                keep.push(r);
            } else if remaining > 0 {
                keep.push(Run::new(r.start, remaining));
                removed.push(Run::new(r.start + remaining, r.len - remaining));
                remaining = 0;
            } else {
                removed.push(r);
            }
        }
        self.runs = keep;
        removed
    }

    /// Longest contiguous logical extent starting at `page`: the sector of
    /// `page` plus how many logically-following pages are physically
    /// consecutive. Lets callers batch multi-sector transfers.
    pub fn extent_at(&self, page: u32) -> Option<Run> {
        let mut skip = page;
        for r in &self.runs {
            if skip < r.len {
                return Some(Run::new(r.start + skip, r.len - skip));
            }
            skip -= r.len;
        }
        None
    }

    /// Encodes the table: `[count u16][ (start u32, len u32)* ]`.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u16(u16::try_from(self.runs.len()).unwrap_or(u16::MAX));
        for r in &self.runs {
            w.u32(r.start).u32(r.len);
        }
        w.into_bytes()
    }

    /// Decodes a table encoded by [`Self::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, String> {
        let count = r.u16()? as usize;
        let mut runs = Vec::with_capacity(count);
        for _ in 0..count {
            let start = r.u32()?;
            let len = r.u32()?;
            if len == 0 {
                return Err("zero-length run".into());
            }
            runs.push(Run::new(start, len));
        }
        Ok(Self { runs })
    }

    /// Checksum over the encoded table — stored in FSD leader pages
    /// ("checksum of run table", Table 1) and verified on first access.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.encode())
    }

    /// The first run (or a zero run if empty) — the "preamble of run
    /// table" stored in FSD leader pages (Table 1).
    pub fn preamble(&self) -> Run {
        self.runs.first().copied().unwrap_or(Run::new(0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_has_no_pages() {
        let rt = RunTable::new();
        assert_eq!(rt.pages(), 0);
        assert_eq!(rt.sector_of(0), None);
        assert!(rt.is_empty());
    }

    #[test]
    fn push_coalesces_adjacent_runs() {
        let mut rt = RunTable::new();
        rt.push(Run::new(10, 5));
        rt.push(Run::new(15, 3));
        rt.push(Run::new(30, 2));
        assert_eq!(rt.runs().len(), 2);
        assert_eq!(rt.pages(), 10);
    }

    #[test]
    fn zero_length_push_ignored() {
        let mut rt = RunTable::new();
        rt.push(Run::new(5, 0));
        assert!(rt.is_empty());
    }

    #[test]
    fn sector_of_walks_runs() {
        let rt = RunTable::from_runs([Run::new(10, 2), Run::new(50, 3)]);
        assert_eq!(rt.sector_of(0), Some(10));
        assert_eq!(rt.sector_of(1), Some(11));
        assert_eq!(rt.sector_of(2), Some(50));
        assert_eq!(rt.sector_of(4), Some(52));
        assert_eq!(rt.sector_of(5), None);
    }

    #[test]
    fn extent_at_returns_remaining_contiguity() {
        let rt = RunTable::from_runs([Run::new(10, 4), Run::new(50, 2)]);
        assert_eq!(rt.extent_at(1), Some(Run::new(11, 3)));
        assert_eq!(rt.extent_at(4), Some(Run::new(50, 2)));
        assert_eq!(rt.extent_at(6), None);
    }

    #[test]
    fn truncate_splits_runs() {
        let mut rt = RunTable::from_runs([Run::new(10, 4), Run::new(50, 4)]);
        let removed = rt.truncate(5);
        assert_eq!(rt.pages(), 5);
        assert_eq!(removed, vec![Run::new(51, 3)]);
        let removed = rt.truncate(0);
        assert_eq!(rt.pages(), 0);
        assert_eq!(removed, vec![Run::new(10, 4), Run::new(50, 1)]);
    }

    #[test]
    fn truncate_at_boundary_removes_whole_runs() {
        let mut rt = RunTable::from_runs([Run::new(10, 4), Run::new(50, 4)]);
        let removed = rt.truncate(4);
        assert_eq!(rt.runs(), &[Run::new(10, 4)]);
        assert_eq!(removed, vec![Run::new(50, 4)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rt = RunTable::from_runs([Run::new(10, 4), Run::new(50, 4), Run::new(7, 1)]);
        let bytes = rt.encode();
        let got = RunTable::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(got, rt);
    }

    #[test]
    fn decode_rejects_zero_length_run() {
        let mut w = Writer::new();
        w.u16(1).u32(5).u32(0);
        let b = w.into_bytes();
        assert!(RunTable::decode(&mut Reader::new(&b)).is_err());
    }

    #[test]
    fn checksum_changes_with_content() {
        let a = RunTable::from_runs([Run::new(1, 1)]);
        let b = RunTable::from_runs([Run::new(2, 1)]);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn preamble_is_first_run() {
        let rt = RunTable::from_runs([Run::new(9, 2), Run::new(50, 1)]);
        assert_eq!(rt.preamble(), Run::new(9, 2));
        assert_eq!(RunTable::new().preamble(), Run::new(0, 0));
    }

    #[test]
    fn run_contains() {
        let r = Run::new(10, 3);
        assert!(!r.contains(9));
        assert!(r.contains(10));
        assert!(r.contains(12));
        assert!(!r.contains(13));
    }
}
