//! Byte-level helpers for the hand-rolled on-disk encodings.
//!
//! Every persistent structure in this reproduction (name-table entries, log
//! records, headers, leader pages) is encoded by hand against a documented
//! fixed layout — the encodings are part of the artifact. These helpers
//! keep that code short and make truncation a recoverable error rather
//! than a panic.

/// A cursor over an input buffer that fails cleanly on truncation.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Consumes `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Consumes a `u8`.
    pub fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, String> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Consumes a `u16`-length-prefixed byte string.
    pub fn str16(&mut self) -> Result<&'a [u8], String> {
        let n = self.u16()? as usize;
        self.bytes(n)
    }
}

/// An append-only output buffer mirror-imaging [`Reader`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(b);
        self
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Appends a `u16`-length-prefixed byte string. Longer inputs are
    /// truncated to `u16::MAX` bytes (callers validate name lengths long
    /// before encoding).
    pub fn str16(&mut self, b: &[u8]) -> &mut Self {
        let n = u16::try_from(b.len()).unwrap_or(u16::MAX);
        self.u16(n).bytes(&b[..n as usize])
    }
}

/// The simple 64-bit FNV-1a checksum used for software-check fields
/// (leader-page run-table checksums, log end-page checksums).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = Writer::new();
        w.u8(7).u16(1000).u32(70_000).u64(1 << 40).str16(b"hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1000);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.str16().unwrap(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // A failed read consumes nothing.
        assert_eq!(r.u16().unwrap(), 0x0201);
    }

    #[test]
    fn str16_truncated_body_is_error() {
        let mut w = Writer::new();
        w.u16(10); // Claims 10 bytes, provides none.
        let b = w.into_bytes();
        assert!(Reader::new(&b).str16().is_err());
    }

    #[test]
    fn fnv1a_distinguishes_inputs() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
        // Stable known value so the on-disk format can't silently change.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
