//! The unified file-system interface.
//!
//! All three systems in this repo — CFS (labels), FSD (logging + group
//! commit), and the FFS baseline — expose the same client-visible
//! operations: make a file, read it back, list by name, remove it.
//! Historically each backend had its own signatures (`&CfsFile` vs
//! `&mut FsdFile`, `delete` vs `unlink`, three different list return
//! types) and the bench crate papered over the differences with a
//! string-erroring `Workbench` shim. [`FileSystem`] is that shim
//! promoted to a first-class trait: one object-safe interface every
//! backend implements directly, with a shared [`CedarFsError`] instead
//! of stringified errors.
//!
//! # Contract
//!
//! Names are flat, path-like strings (`doc/plan.txt`). The trait hides
//! each backend's organization behind one rule: **after any sequence of
//! operations, the visible name → contents map is identical on every
//! backend.**
//!
//! * [`FileSystem::create`] makes `name`'s contents become `data`. On
//!   the versioned Cedar systems an existing name gains a new version;
//!   FFS replaces the file. Either way a subsequent `read` sees `data`.
//! * [`FileSystem::write`] is the overwrite verb; its default
//!   implementation delegates to `create` (which already has
//!   replace-on-exists semantics).
//! * [`FileSystem::list`] returns the newest version of every file whose
//!   full name starts with `prefix`, sorted by name — on FFS this walks
//!   subdirectories recursively so the flat-namespace systems and the
//!   directory-tree system produce the same listing.
//! * [`FileSystem::sync`] makes everything durable: FSD forces the log,
//!   FFS flushes delayed writes, CFS (all-synchronous) does nothing.

use crate::name::MAX_NAME_LEN;
use cedar_disk::{DiskError, DiskStats, Micros};
use std::fmt;

/// Data transfers go to the disk in 4 KB requests (eight sectors), the
/// buffer size of the era — so reading a 20 KB file costs several I/Os
/// on *every* file system, as it did in the paper's MakeDo measurements.
/// Backends use this as the chunk size for [`FileSystem::read`].
pub const CHUNK_PAGES: u32 = 8;

/// One error type across every backend.
///
/// Each backend keeps its own internal error enum (they carry
/// backend-specific detail like CFS scavenge hints) and provides a
/// `From` impl into this one, so trait methods can use `?` directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CedarFsError {
    /// Underlying (simulated) disk failure.
    Disk(DiskError),
    /// On-disk structure damage — name table, directory, or label.
    Corrupt(String),
    /// No such file.
    NotFound(String),
    /// The name already exists and the backend cannot version it.
    Exists(String),
    /// The volume is out of space.
    NoSpace,
    /// Malformed file name.
    BadName(String),
    /// A page or block index beyond the end of the file.
    OutOfRange(String),
    /// The entry exists but is the wrong kind (directory, symlink…).
    WrongKind(String),
}

impl fmt::Display for CedarFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt: {m}"),
            Self::NotFound(n) => write!(f, "file not found: {n}"),
            Self::Exists(n) => write!(f, "file exists: {n}"),
            Self::NoSpace => write!(f, "volume full"),
            Self::BadName(m) => write!(f, "bad file name: {m}"),
            Self::OutOfRange(m) => write!(f, "out of range: {m}"),
            Self::WrongKind(m) => write!(f, "wrong entry kind: {m}"),
        }
    }
}

impl std::error::Error for CedarFsError {}

impl From<DiskError> for CedarFsError {
    fn from(e: DiskError) -> Self {
        Self::Disk(e)
    }
}

impl CedarFsError {
    /// True when the error is the simulated power failure surfacing —
    /// callers treat this as "stop the run", not an operation failure.
    pub fn is_crash(&self) -> bool {
        matches!(self, Self::Disk(DiskError::Crashed))
    }
}

/// Validates a client-visible file name (shared by backends that do not
/// already have a stricter rule).
pub fn validate_name(name: &str) -> Result<(), CedarFsError> {
    if name.is_empty() || name.len() > MAX_NAME_LEN || name.bytes().any(|b| b == 0) {
        return Err(CedarFsError::BadName(name.to_string()));
    }
    Ok(())
}

/// What a file looks like from the outside: the newest version's name,
/// version number (always 1 on FFS, which has no versions), and logical
/// length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileInfo {
    /// Full path-like name.
    pub name: String,
    /// Version number of the newest version (1-based).
    pub version: u32,
    /// Logical length in bytes.
    pub bytes: u64,
}

/// Snapshot of a volume's accumulated costs, for benchmark reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Disk operation counts and time breakdown.
    pub disk: DiskStats,
    /// Simulated time on the volume's clock, µs.
    pub now_us: Micros,
    /// Free space remaining, in sectors (0 if the backend cannot say).
    pub free_sectors: u64,
}

/// The unified interface all three file systems implement.
///
/// Object-safe: benches, workloads, and tests take `&mut dyn FileSystem`
/// and run identically against every backend.
pub trait FileSystem {
    /// Short backend tag ("cfs", "fsd", "ffs") for reports.
    fn kind(&self) -> &'static str;

    /// Makes `name`'s contents become `data` (new file, new version, or
    /// replacement — see the module docs). Returns the new instance.
    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError>;

    /// Opens the newest version without reading data (property access /
    /// cache touch — FSD refreshes cached-remote last-used times here).
    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError>;

    /// Reads the newest version fully, in [`CHUNK_PAGES`]-page requests.
    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError>;

    /// Overwrites `name` with `data`. Default: delegates to [`Self::create`],
    /// whose contract already replaces visible contents.
    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        self.create(name, data)
    }

    /// Deletes the newest version of `name` (the only version, for
    /// workloads that keep one; FFS unlinks the file).
    fn delete(&mut self, name: &str) -> Result<(), CedarFsError>;

    /// Newest version of every file whose full name starts with
    /// `prefix`, sorted by name.
    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError>;

    /// Makes all completed operations durable.
    fn sync(&mut self) -> Result<(), CedarFsError>;

    /// Accumulated simulated costs.
    fn stats(&self) -> FsStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            CedarFsError::NotFound("a/b".into()).to_string(),
            "file not found: a/b"
        );
        assert_eq!(CedarFsError::NoSpace.to_string(), "volume full");
        assert!(CedarFsError::Disk(DiskError::Crashed).is_crash());
        assert!(!CedarFsError::NoSpace.is_crash());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok/name.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("bad\0name").is_err());
    }
}
