//! The unified file-system interface: a concurrent, shared-reference
//! API over every backend.
//!
//! All three systems in this repo — CFS (labels), FSD (logging + group
//! commit), and the FFS baseline — expose the same client-visible
//! operations: make a file, read it back, list by name, remove it.
//! Historically the shared trait took `&mut self`, which meant exactly
//! one client could hold the file system at a time; §5.4's group commit
//! exists precisely because *many concurrent clients* amortize forces,
//! so the exclusive borrow was a lie the simulated scheduler had to
//! paper over. The API is now two-level:
//!
//! * [`FileSystem`] — the shared-reference, `Send + Sync` service
//!   interface. Every method takes `&self`, so N OS threads can submit
//!   operations against one `Arc<dyn FileSystem>` concurrently. FSD
//!   implements it with a sharded commit pipeline (`cedar_fsd`'s
//!   engine); CFS, FFS, and the in-memory model implement it with a
//!   plain internal mutex ([`SyncFs`]).
//! * [`Session`] — an owned, cloneable, `Send` per-client handle over an
//!   `Arc<dyn FileSystem>`. A session carries a client id (reporting and
//!   namespacing only) and has no lifetime parameter, so it can move
//!   into a spawned thread.
//!
//! Backends themselves implement [`FsBackend`], the implementation-level
//! trait with the old exclusive-borrow signatures (the simulated disk
//! mutates on every access — even reads advance the clock and the
//! stats). [`SyncFs`] lifts any `FsBackend` into a [`FileSystem`] by
//! serializing operations behind one internal mutex: semantically
//! correct everywhere, concurrent-fast nowhere. The FSD engine is the
//! backend that actually spreads work across cores.
//!
//! # Contract
//!
//! Names are flat, path-like strings (`doc/plan.txt`). The trait hides
//! each backend's organization behind one rule: **after any sequence of
//! operations, the visible name → contents map is identical on every
//! backend.**
//!
//! * [`FileSystem::create`] makes `name`'s contents become `data`. On
//!   the versioned Cedar systems an existing name gains a new version;
//!   FFS replaces the file. Either way a subsequent `read` sees `data`.
//! * [`FileSystem::write`] is the explicit overwrite verb: the newest
//!   visible contents of `name` become `data`. It is a required method
//!   (no silent delegation): versioned backends document that overwrite
//!   means a new version, FFS that it means in-place replacement.
//! * [`FileSystem::list`] returns the newest version of every file whose
//!   full name starts with `prefix`, sorted by name — on FFS this walks
//!   subdirectories recursively so the flat-namespace systems and the
//!   directory-tree system produce the same listing.
//! * [`FileSystem::sync`] makes everything durable: FSD waits for the
//!   commit epoch, FFS flushes delayed writes, CFS (all-synchronous)
//!   does nothing.
//! * The logically read-only operations — [`FileSystem::open`],
//!   [`FileSystem::read`], [`FileSystem::list`], [`FileSystem::stats`] —
//!   take `&self` on every backend and, under the FSD engine, are served
//!   from a sharded name-table cache without queueing behind writers.

use crate::name::MAX_NAME_LEN;
use cedar_disk::{DiskError, DiskStats, Micros};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// Data transfers go to the disk in 4 KB requests (eight sectors), the
/// buffer size of the era — so reading a 20 KB file costs several I/Os
/// on *every* file system, as it did in the paper's MakeDo measurements.
/// Backends use this as the chunk size for [`FileSystem::read`].
pub const CHUNK_PAGES: u32 = 8;

/// One error type across every backend.
///
/// Each backend keeps its own internal error enum (they carry
/// backend-specific detail like CFS scavenge hints) and provides a
/// `From` impl into this one, so trait methods can use `?` directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CedarFsError {
    /// Underlying (simulated) disk failure.
    Disk(DiskError),
    /// On-disk structure damage — name table, directory, or label.
    Corrupt(String),
    /// No such file.
    NotFound(String),
    /// The name already exists and the backend cannot version it.
    Exists(String),
    /// The volume is out of space.
    NoSpace,
    /// Malformed file name.
    BadName(String),
    /// A page or block index beyond the end of the file.
    OutOfRange(String),
    /// The entry exists but is the wrong kind (directory, symlink…).
    WrongKind(String),
    /// The service cannot take the operation right now (a concurrent
    /// engine shutting down, or a full submission queue). Retryable.
    Busy(String),
    /// The replication link failed (timeout, drop, or partition). The
    /// write is durable on the primary but not acknowledged at the
    /// replication mode's durability point. Retryable: links heal.
    Link(String),
}

impl fmt::Display for CedarFsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Disk(e) => write!(f, "disk: {e}"),
            Self::Corrupt(m) => write!(f, "corrupt: {m}"),
            Self::NotFound(n) => write!(f, "file not found: {n}"),
            Self::Exists(n) => write!(f, "file exists: {n}"),
            Self::NoSpace => write!(f, "volume full"),
            Self::BadName(m) => write!(f, "bad file name: {m}"),
            Self::OutOfRange(m) => write!(f, "out of range: {m}"),
            Self::WrongKind(m) => write!(f, "wrong entry kind: {m}"),
            Self::Busy(m) => write!(f, "busy: {m}"),
            Self::Link(m) => write!(f, "replication link: {m}"),
        }
    }
}

impl std::error::Error for CedarFsError {}

impl From<DiskError> for CedarFsError {
    fn from(e: DiskError) -> Self {
        Self::Disk(e)
    }
}

impl From<cedar_disk::LinkError> for CedarFsError {
    fn from(e: cedar_disk::LinkError) -> Self {
        Self::Link(e.to_string())
    }
}

/// Coarse classification of a [`CedarFsError`] for concurrent callers:
/// is retrying the same operation ever useful?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The condition is transient — another attempt may succeed
    /// (a flaky sector the scrubber repairs, a full volume a concurrent
    /// delete may relieve, a momentarily saturated submission queue).
    Retryable,
    /// The condition is deterministic for this operation (missing name,
    /// malformed request, structural corruption, a crashed disk): a
    /// retry returns the same error, so surface it.
    Fatal,
}

impl CedarFsError {
    /// True when the error is the simulated power failure surfacing —
    /// callers treat this as "stop the run", not an operation failure.
    pub fn is_crash(&self) -> bool {
        matches!(self, Self::Disk(DiskError::Crashed))
    }

    /// The retry classification used by concurrent clients (threaded
    /// bench drivers retry [`ErrorClass::Retryable`] failures with a
    /// short backoff and surface [`ErrorClass::Fatal`] ones).
    pub fn class(&self) -> ErrorClass {
        match self {
            // A flagged-bad sector is repaired by rewrite/sparing; the
            // next attempt reads the replica or the remap.
            Self::Disk(DiskError::BadSector(_)) => ErrorClass::Retryable,
            // Crashes, label mismatches and malformed requests are
            // deterministic until recovery intervenes.
            Self::Disk(_) => ErrorClass::Fatal,
            Self::Corrupt(_) => ErrorClass::Fatal,
            Self::NotFound(_) | Self::Exists(_) => ErrorClass::Fatal,
            Self::NoSpace => ErrorClass::Retryable,
            Self::BadName(_) | Self::OutOfRange(_) | Self::WrongKind(_) => ErrorClass::Fatal,
            Self::Busy(_) => ErrorClass::Retryable,
            // Timeouts, drops and partitions are the transient failures
            // of a network: the retry/backoff loop in the shipper exists
            // precisely for these.
            Self::Link(_) => ErrorClass::Retryable,
        }
    }

    /// Shorthand for `self.class() == ErrorClass::Retryable`.
    pub fn is_retryable(&self) -> bool {
        self.class() == ErrorClass::Retryable
    }
}

/// Validates a client-visible file name (shared by backends that do not
/// already have a stricter rule).
pub fn validate_name(name: &str) -> Result<(), CedarFsError> {
    if name.is_empty() || name.len() > MAX_NAME_LEN || name.bytes().any(|b| b == 0) {
        return Err(CedarFsError::BadName(name.to_string()));
    }
    Ok(())
}

/// What a file looks like from the outside: the newest version's name,
/// version number (always 1 on FFS, which has no versions), and logical
/// length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileInfo {
    /// Full path-like name.
    pub name: String,
    /// Version number of the newest version (1-based).
    pub version: u32,
    /// Logical length in bytes.
    pub bytes: u64,
}

/// Snapshot of a volume's accumulated costs, for benchmark reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Disk operation counts and time breakdown.
    pub disk: DiskStats,
    /// Simulated time on the volume's clock, µs.
    pub now_us: Micros,
    /// Free space remaining, in sectors (0 if the backend cannot say).
    pub free_sectors: u64,
}

/// The shared-reference service interface all file systems expose.
///
/// Object-safe and thread-safe: benches, workloads, and tests take
/// `&dyn FileSystem` (or an `Arc<dyn FileSystem>` split across threads
/// via [`Session`]) and run identically against every backend. Every
/// method takes `&self`; implementations supply their own interior
/// synchronization — a single mutex in [`SyncFs`], a sharded commit
/// pipeline in the FSD engine.
pub trait FileSystem: Send + Sync {
    /// Short backend tag ("cfs", "fsd", "ffs") for reports.
    fn kind(&self) -> &'static str;

    /// Makes `name`'s contents become `data` (new file, new version, or
    /// replacement — see the module docs). Returns the new instance.
    fn create(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError>;

    /// Opens the newest version without reading data (property access /
    /// cache touch).
    fn open(&self, name: &str) -> Result<FileInfo, CedarFsError>;

    /// Reads the newest version fully, in [`CHUNK_PAGES`]-page requests.
    fn read(&self, name: &str) -> Result<Vec<u8>, CedarFsError>;

    /// Overwrites the visible contents of `name` with `data`. Required
    /// and explicit (no delegation default): Cedar backends document
    /// that overwrite creates a new version of an existing name, FFS
    /// that it replaces the file in place.
    fn write(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError>;

    /// Deletes the newest version of `name` (the only version, for
    /// workloads that keep one; FFS unlinks the file).
    fn delete(&self, name: &str) -> Result<(), CedarFsError>;

    /// Newest version of every file whose full name starts with
    /// `prefix`, sorted by name.
    fn list(&self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError>;

    /// Makes all completed operations durable. Under the FSD engine this
    /// is an epoch wait: it returns once the current group-commit epoch
    /// has been forced.
    fn sync(&self) -> Result<(), CedarFsError>;

    /// Accumulated simulated costs (under a concurrent engine, as of the
    /// most recently committed epoch).
    fn stats(&self) -> FsStats;
}

/// The implementation-level backend interface: the same verbs with
/// exclusive-borrow signatures.
///
/// Every operation on a simulated volume mutates — reads advance the
/// shared clock, charge CPU, and update disk stats — so the natural
/// signature for a raw backend is `&mut self`. Backends implement this
/// trait; services expose [`FileSystem`] on top of it, either through
/// [`SyncFs`]'s internal mutex or through a real pipeline. Single-owner
/// callers (the CLI, recovery tests) may also call these methods
/// directly.
pub trait FsBackend {
    /// Short backend tag ("cfs", "fsd", "ffs") for reports.
    fn kind(&self) -> &'static str;
    /// See [`FileSystem::create`].
    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError>;
    /// See [`FileSystem::open`].
    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError>;
    /// See [`FileSystem::read`].
    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError>;
    /// See [`FileSystem::write`].
    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError>;
    /// See [`FileSystem::delete`].
    fn delete(&mut self, name: &str) -> Result<(), CedarFsError>;
    /// See [`FileSystem::list`].
    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError>;
    /// See [`FileSystem::sync`].
    fn sync(&mut self) -> Result<(), CedarFsError>;
    /// See [`FileSystem::stats`].
    fn stats(&self) -> FsStats;
}

/// Lifts any [`FsBackend`] into a [`FileSystem`] with one internal
/// mutex.
///
/// This is the simple concurrency story for the backends whose designs
/// are inherently serial (CFS writes synchronously in place, FFS has a
/// single buffer cache, the in-memory model needs no concurrency at
/// all): every operation takes the lock, so the conformance suite and
/// the benches drive them through the same shared-reference API the FSD
/// engine exposes — correct under threads, merely not parallel.
pub struct SyncFs<B> {
    inner: Mutex<B>,
}

impl<B> SyncFs<B> {
    /// Wraps a backend.
    pub fn new(backend: B) -> Self {
        Self {
            inner: Mutex::new(backend),
        }
    }

    /// Exclusive access to the wrapped backend without locking overhead.
    pub fn get_mut(&mut self) -> &mut B {
        // A poisoned lock only means a panicked client mid-operation;
        // the backend's own invariants are WAL-protected, so recover the
        // value rather than propagate the poison.
        match self.inner.get_mut() {
            Ok(b) => b,
            Err(p) => p.into_inner(),
        }
    }

    /// Unwraps the backend.
    pub fn into_inner(self) -> B {
        match self.inner.into_inner() {
            Ok(b) => b,
            Err(p) => p.into_inner(),
        }
    }

    /// Runs `f` with the backend locked (for raw-API access — forces,
    /// verification — while shared references are outstanding).
    pub fn with<T>(&self, f: impl FnOnce(&mut B) -> T) -> T {
        f(&mut self.lock())
    }

    fn lock(&self) -> MutexGuard<'_, B> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl<B: FsBackend> From<B> for SyncFs<B> {
    fn from(backend: B) -> Self {
        Self::new(backend)
    }
}

impl<B: FsBackend + Send> FileSystem for SyncFs<B> {
    fn kind(&self) -> &'static str {
        // The tag is a static property of the backend type; taking the
        // lock for it keeps the trait object-safe and honest.
        self.lock().kind()
    }

    fn create(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        self.lock().create(name, data)
    }

    fn open(&self, name: &str) -> Result<FileInfo, CedarFsError> {
        self.lock().open(name)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        self.lock().read(name)
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        self.lock().write(name, data)
    }

    fn delete(&self, name: &str) -> Result<(), CedarFsError> {
        self.lock().delete(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        self.lock().list(prefix)
    }

    fn sync(&self) -> Result<(), CedarFsError> {
        self.lock().sync()
    }

    fn stats(&self) -> FsStats {
        self.lock().stats()
    }
}

/// An owned per-client handle: the second level of the API.
///
/// A `Session` is how a client thread holds a file system: it owns an
/// `Arc<dyn FileSystem>` (no lifetime parameter, `Send`), carries a
/// client id for reporting and namespacing, and forwards every
/// operation. Clone it or create one per spawned thread:
///
/// ```
/// use cedar_vol::fs::{FileSystem, FsBackend, Session, SyncFs};
/// use std::sync::Arc;
/// # struct Null;
/// # impl FsBackend for Null {
/// #   fn kind(&self) -> &'static str { "null" }
/// #   fn create(&mut self, n: &str, d: &[u8]) -> Result<cedar_vol::fs::FileInfo, cedar_vol::fs::CedarFsError> { Ok(cedar_vol::fs::FileInfo { name: n.into(), version: 1, bytes: d.len() as u64 }) }
/// #   fn open(&mut self, n: &str) -> Result<cedar_vol::fs::FileInfo, cedar_vol::fs::CedarFsError> { Err(cedar_vol::fs::CedarFsError::NotFound(n.into())) }
/// #   fn read(&mut self, n: &str) -> Result<Vec<u8>, cedar_vol::fs::CedarFsError> { Err(cedar_vol::fs::CedarFsError::NotFound(n.into())) }
/// #   fn write(&mut self, n: &str, d: &[u8]) -> Result<cedar_vol::fs::FileInfo, cedar_vol::fs::CedarFsError> { self.create(n, d) }
/// #   fn delete(&mut self, n: &str) -> Result<(), cedar_vol::fs::CedarFsError> { Ok(()) }
/// #   fn list(&mut self, _p: &str) -> Result<Vec<cedar_vol::fs::FileInfo>, cedar_vol::fs::CedarFsError> { Ok(vec![]) }
/// #   fn sync(&mut self) -> Result<(), cedar_vol::fs::CedarFsError> { Ok(()) }
/// #   fn stats(&self) -> cedar_vol::fs::FsStats { cedar_vol::fs::FsStats::default() }
/// # }
/// let fs: Arc<dyn FileSystem> = Arc::new(SyncFs::new(Null));
/// let handles: Vec<_> = (0..4)
///     .map(|id| {
///         let session = Session::new(fs.clone(), id);
///         std::thread::spawn(move || session.create(&format!("c{id}/f"), b"x"))
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap().unwrap();
/// }
/// ```
#[derive(Clone)]
pub struct Session {
    fs: Arc<dyn FileSystem>,
    id: usize,
}

impl Session {
    /// Opens a session on a shared file system.
    pub fn new(fs: Arc<dyn FileSystem>, id: usize) -> Self {
        Self { fs, id }
    }

    /// The client's index (reporting only — namespacing is up to the
    /// workload).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The underlying shared file system.
    pub fn fs(&self) -> &Arc<dyn FileSystem> {
        &self.fs
    }
}

impl FileSystem for Session {
    fn kind(&self) -> &'static str {
        self.fs.kind()
    }

    fn create(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        self.fs.create(name, data)
    }

    fn open(&self, name: &str) -> Result<FileInfo, CedarFsError> {
        self.fs.open(name)
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        self.fs.read(name)
    }

    fn write(&self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        self.fs.write(name, data)
    }

    fn delete(&self, name: &str) -> Result<(), CedarFsError> {
        self.fs.delete(name)
    }

    fn list(&self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        self.fs.list(prefix)
    }

    fn sync(&self) -> Result<(), CedarFsError> {
        self.fs.sync()
    }

    fn stats(&self) -> FsStats {
        self.fs.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_stable() {
        assert_eq!(
            CedarFsError::NotFound("a/b".into()).to_string(),
            "file not found: a/b"
        );
        assert_eq!(CedarFsError::NoSpace.to_string(), "volume full");
        assert!(CedarFsError::Disk(DiskError::Crashed).is_crash());
        assert!(!CedarFsError::NoSpace.is_crash());
    }

    #[test]
    fn name_validation() {
        assert!(validate_name("ok/name.txt").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("bad\0name").is_err());
    }

    #[test]
    fn error_classification() {
        assert_eq!(CedarFsError::NoSpace.class(), ErrorClass::Retryable);
        assert!(CedarFsError::Busy("queue".into()).is_retryable());
        assert!(CedarFsError::Disk(DiskError::BadSector(7)).is_retryable());
        assert!(CedarFsError::Link("timeout".into()).is_retryable());
        assert!(CedarFsError::from(cedar_disk::LinkError::Down).is_retryable());
        assert_eq!(
            CedarFsError::Disk(DiskError::Crashed).class(),
            ErrorClass::Fatal
        );
        assert_eq!(
            CedarFsError::NotFound("x".into()).class(),
            ErrorClass::Fatal
        );
        assert!(!CedarFsError::Corrupt("nt".into()).is_retryable());
    }

    /// A tiny in-module backend so the adapter and session plumbing can
    /// be tested without a real volume.
    #[derive(Default)]
    struct Toy {
        files: std::collections::BTreeMap<String, Vec<u8>>,
    }

    impl FsBackend for Toy {
        fn kind(&self) -> &'static str {
            "toy"
        }
        fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
            validate_name(name)?;
            self.files.insert(name.into(), data.to_vec());
            Ok(FileInfo {
                name: name.into(),
                version: 1,
                bytes: data.len() as u64,
            })
        }
        fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError> {
            let d = self
                .files
                .get(name)
                .ok_or_else(|| CedarFsError::NotFound(name.into()))?;
            Ok(FileInfo {
                name: name.into(),
                version: 1,
                bytes: d.len() as u64,
            })
        }
        fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError> {
            self.files
                .get(name)
                .cloned()
                .ok_or_else(|| CedarFsError::NotFound(name.into()))
        }
        fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
            self.create(name, data)
        }
        fn delete(&mut self, name: &str) -> Result<(), CedarFsError> {
            self.files
                .remove(name)
                .map(|_| ())
                .ok_or_else(|| CedarFsError::NotFound(name.into()))
        }
        fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
            Ok(self
                .files
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .map(|(n, d)| FileInfo {
                    name: n.clone(),
                    version: 1,
                    bytes: d.len() as u64,
                })
                .collect())
        }
        fn sync(&mut self) -> Result<(), CedarFsError> {
            Ok(())
        }
        fn stats(&self) -> FsStats {
            FsStats::default()
        }
    }

    #[test]
    fn syncfs_serves_threads() {
        let fs: Arc<dyn FileSystem> = Arc::new(SyncFs::new(Toy::default()));
        let handles: Vec<_> = (0..8)
            .map(|id| {
                let s = Session::new(fs.clone(), id);
                std::thread::spawn(move || {
                    for i in 0..16 {
                        s.create(&format!("c{id}/f{i}"), b"data").unwrap();
                    }
                    s.read(&format!("c{id}/f0")).unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), b"data");
        }
        assert_eq!(fs.list("").unwrap().len(), 8 * 16);
        assert_eq!(fs.list("c3/").unwrap().len(), 16);
    }

    #[test]
    fn syncfs_unwraps_and_reborrows() {
        let mut fs = SyncFs::new(Toy::default());
        fs.create("a", b"1").unwrap();
        assert_eq!(fs.get_mut().read("a").unwrap(), b"1");
        fs.with(|b| b.create("b", b"2")).unwrap();
        let inner = fs.into_inner();
        assert_eq!(inner.files.len(), 2);
    }

    #[test]
    fn session_carries_id_and_delegates() {
        let fs: Arc<dyn FileSystem> = Arc::new(SyncFs::new(Toy::default()));
        let s = Session::new(fs.clone(), 7);
        assert_eq!(s.id(), 7);
        assert_eq!(s.kind(), "toy");
        s.create("x", b"y").unwrap();
        let s2 = s.clone();
        assert_eq!(s2.read("x").unwrap(), b"y");
        assert_eq!(fs.open("x").unwrap().bytes, 1);
    }
}
