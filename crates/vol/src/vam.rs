//! The Volume Allocation Map.
//!
//! "The Cedar File Package keeps a bit vector as a hint for which disk
//! pages are free. This is called the Volume Allocation Map (VAM)." (§2).
//! In CFS the VAM is only a hint — labels are the truth. In FSD the VAM is
//! kept entirely in volatile memory during operation (§5.5) and either
//! saved at controlled shutdown or reconstructed from the name table; a
//! *shadow* bitmap holds the pages of deleted-but-uncommitted files, which
//! move to the VAM proper when the delete commits.

use crate::runtable::Run;
use cedar_disk::SectorAddr;

/// A free-page bitmap: bit set ⇒ sector free.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vam {
    words: Vec<u64>,
    sectors: u32,
    /// Pages freed by uncommitted deletes: not yet allocatable (§5.5).
    shadow: Vec<u64>,
}

impl Vam {
    /// Creates a VAM for `sectors` sectors, all marked allocated
    /// (callers free the regions that are actually available).
    pub fn new_all_allocated(sectors: u32) -> Self {
        let n = (sectors as usize).div_ceil(64);
        Self {
            words: vec![0; n],
            sectors,
            shadow: vec![0; n],
        }
    }

    /// Number of sectors covered.
    pub fn sectors(&self) -> u32 {
        self.sectors
    }

    /// Returns `true` if `addr` is free (and not shadow-held).
    pub fn is_free(&self, addr: SectorAddr) -> bool {
        assert!(addr < self.sectors);
        let (w, b) = (addr as usize / 64, addr % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Marks a run free (immediately allocatable).
    pub fn free_run(&mut self, run: Run) {
        assert!(
            run.end() <= self.sectors,
            "free of run {run:?} out of range"
        );
        for_run_words(&mut self.words, run, |w, m| *w |= m);
    }

    /// Marks a run allocated.
    pub fn allocate_run(&mut self, run: Run) {
        assert!(
            run.end() <= self.sectors,
            "allocate of run {run:?} out of range"
        );
        for_run_words(&mut self.words, run, |w, m| *w &= !m);
    }

    /// Records a run in the shadow bitmap: freed by a delete that has not
    /// yet committed, so not yet allocatable.
    pub fn shadow_free_run(&mut self, run: Run) {
        for_run_words(&mut self.shadow, run, |w, m| *w |= m);
    }

    /// ORs `other`'s free and shadow bits into this map, word-parallel.
    ///
    /// This is the parallel scavenger's shard merge: each worker builds
    /// a partial map over its shard of the scan (claimed sectors, or
    /// freed runs), and the merger folds the shards together with a
    /// single pass over the words.
    pub fn merge_or(&mut self, other: &Vam) {
        assert_eq!(self.sectors, other.sectors, "VAM merge across volumes");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        for (s, o) in self.shadow.iter_mut().zip(&other.shadow) {
            *s |= o;
        }
    }

    /// Clears every free and shadow bit that is set in `other`,
    /// word-parallel.
    ///
    /// Paired with [`Vam::merge_or`] for reconstruction in the allocate
    /// direction: start from an all-free data area, merge the workers'
    /// *claimed* bitmaps, then subtract the union from the free map.
    pub fn subtract(&mut self, other: &Vam) {
        assert_eq!(self.sectors, other.sectors, "VAM subtract across volumes");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
        for (s, o) in self.shadow.iter_mut().zip(&other.shadow) {
            *s &= !o;
        }
    }

    /// Commits all shadow frees: "When a commit occurs, the pages marked
    /// free in the shadow bitmap are marked free in the VAM" (§5.5).
    pub fn commit_shadow(&mut self) {
        for (w, s) in self.words.iter_mut().zip(self.shadow.iter_mut()) {
            *w |= *s;
            *s = 0;
        }
    }

    /// Number of pages currently shadow-held.
    pub fn shadow_count(&self) -> u32 {
        self.shadow.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of free sectors.
    pub fn free_count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Finds a free run of exactly `len` sectors within `[lo, hi)`,
    /// scanning forward from `from` (clamped into the range). Returns the
    /// run without marking it allocated.
    pub fn find_free_run(
        &self,
        len: u32,
        lo: SectorAddr,
        hi: SectorAddr,
        from: SectorAddr,
    ) -> Option<Run> {
        if len == 0 || lo >= hi {
            return None;
        }
        let scan = |start: SectorAddr, end: SectorAddr| -> Option<Run> {
            let mut run_start = start;
            let mut run_len = 0u32;
            for a in start..end {
                if self.is_free(a) {
                    if run_len == 0 {
                        run_start = a;
                    }
                    run_len += 1;
                    if run_len == len {
                        return Some(Run::new(run_start, len));
                    }
                } else {
                    run_len = 0;
                }
            }
            None
        };
        let from = from.clamp(lo, hi);
        scan(from, hi).or_else(|| scan(lo, (from + len).min(hi)))
    }

    /// Finds the *largest* free run within `[lo, hi)` of length at most
    /// `cap`, searching backward preference for big-area allocation.
    pub fn find_largest_free_run(&self, lo: SectorAddr, hi: SectorAddr, cap: u32) -> Option<Run> {
        let mut best: Option<Run> = None;
        let mut run_start = lo;
        let mut run_len = 0u32;
        for a in lo..hi {
            if self.is_free(a) {
                if run_len == 0 {
                    run_start = a;
                }
                run_len += 1;
                if run_len >= cap {
                    return Some(Run::new(run_start, cap));
                }
            } else {
                if run_len > best.map_or(0, |r| r.len) {
                    best = Some(Run::new(run_start, run_len));
                }
                run_len = 0;
            }
        }
        if run_len > best.map_or(0, |r| r.len) {
            best = Some(Run::new(run_start, run_len));
        }
        best
    }

    /// Counts free extents and the largest free extent in `[lo, hi)` —
    /// the fragmentation metrics for the allocator ablation (§5.6).
    pub fn fragmentation(&self, lo: SectorAddr, hi: SectorAddr) -> (u32, u32) {
        let mut extents = 0;
        let mut largest = 0;
        let mut run = 0u32;
        for a in lo..hi {
            if self.is_free(a) {
                run += 1;
            } else {
                if run > 0 {
                    extents += 1;
                    largest = largest.max(run);
                }
                run = 0;
            }
        }
        if run > 0 {
            extents += 1;
            largest = largest.max(run);
        }
        (extents, largest)
    }

    /// Serializes the bitmap (not the shadow — shadow state is volatile by
    /// definition) for the controlled-shutdown save (§5.5).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8 + 4);
        out.extend_from_slice(&self.sectors.to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Restores a bitmap saved by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < 4 {
            return Err("VAM save truncated".into());
        }
        let sectors = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
        let n = (sectors as usize).div_ceil(64);
        if bytes.len() < 4 + n * 8 {
            return Err("VAM save truncated".into());
        }
        let mut words = Vec::with_capacity(n);
        for i in 0..n {
            let at = 4 + i * 8;
            words.push(u64::from_le_bytes([
                bytes[at],
                bytes[at + 1],
                bytes[at + 2],
                bytes[at + 3],
                bytes[at + 4],
                bytes[at + 5],
                bytes[at + 6],
                bytes[at + 7],
            ]));
        }
        Ok(Self {
            words,
            sectors,
            shadow: vec![0; n],
        })
    }
}

/// A mask of `len` contiguous bits starting at `bit` (`bit + len ≤ 64`,
/// `len ≥ 1`).
fn mask(bit: u32, len: u32) -> u64 {
    let block = if len == 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    block << bit
}

/// Applies `f(word, mask)` for each 64-bit word `run` touches, with
/// `mask` selecting exactly the run's bits within that word — the
/// word-parallel loop shared by free, allocate, and shadow-free. A run
/// of S sectors costs ⌈S/64⌉ + 1 word operations instead of S bit
/// operations.
fn for_run_words(words: &mut [u64], run: Run, f: impl Fn(&mut u64, u64)) {
    let end = run.end();
    let mut a = run.start;
    while a < end {
        let word_end = (a / 64 + 1) * 64;
        let upto = end.min(word_end);
        f(&mut words[a as usize / 64], mask(a % 64, upto - a));
        a = upto;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vam_with_free(sectors: u32, free: Run) -> Vam {
        let mut v = Vam::new_all_allocated(sectors);
        v.free_run(free);
        v
    }

    #[test]
    fn new_vam_is_fully_allocated() {
        let v = Vam::new_all_allocated(100);
        assert_eq!(v.free_count(), 0);
        assert!(!v.is_free(0));
    }

    #[test]
    fn free_then_allocate_roundtrip() {
        let mut v = Vam::new_all_allocated(100);
        v.free_run(Run::new(10, 5));
        assert_eq!(v.free_count(), 5);
        assert!(v.is_free(12));
        v.allocate_run(Run::new(10, 2));
        assert_eq!(v.free_count(), 3);
        assert!(!v.is_free(10));
        assert!(v.is_free(12));
    }

    #[test]
    fn find_free_run_scans_forward_with_wrap() {
        let mut v = Vam::new_all_allocated(128);
        v.free_run(Run::new(5, 3));
        v.free_run(Run::new(60, 10));
        // From 20, the forward scan finds 60.
        assert_eq!(v.find_free_run(4, 0, 128, 20), Some(Run::new(60, 4)));
        // A run of 3 from 70 wraps around to 5.
        assert_eq!(v.find_free_run(3, 0, 128, 70), Some(Run::new(5, 3)));
        // No run of 11 exists.
        assert_eq!(v.find_free_run(11, 0, 128, 0), None);
    }

    #[test]
    fn find_free_run_respects_bounds() {
        let v = vam_with_free(128, Run::new(5, 20));
        assert_eq!(v.find_free_run(4, 10, 128, 0), Some(Run::new(10, 4)));
        assert_eq!(v.find_free_run(4, 0, 8, 0), None); // Only 3 free below 8.
    }

    #[test]
    fn shadow_frees_not_allocatable_until_commit() {
        let mut v = Vam::new_all_allocated(64);
        v.shadow_free_run(Run::new(8, 4));
        assert_eq!(v.free_count(), 0);
        assert_eq!(v.shadow_count(), 4);
        assert_eq!(v.find_free_run(2, 0, 64, 0), None);
        v.commit_shadow();
        assert_eq!(v.free_count(), 4);
        assert_eq!(v.shadow_count(), 0);
        assert_eq!(v.find_free_run(2, 0, 64, 0), Some(Run::new(8, 2)));
    }

    #[test]
    fn largest_free_run_found() {
        let mut v = Vam::new_all_allocated(128);
        v.free_run(Run::new(5, 3));
        v.free_run(Run::new(20, 9));
        v.free_run(Run::new(100, 6));
        assert_eq!(v.find_largest_free_run(0, 128, 100), Some(Run::new(20, 9)));
        // Cap short-circuits.
        assert_eq!(v.find_largest_free_run(0, 128, 2), Some(Run::new(5, 2)));
        // Empty region.
        assert_eq!(v.find_largest_free_run(40, 90, 10), None);
    }

    #[test]
    fn fragmentation_counts_extents() {
        let mut v = Vam::new_all_allocated(64);
        v.free_run(Run::new(0, 4));
        v.free_run(Run::new(10, 2));
        v.free_run(Run::new(62, 2));
        let (extents, largest) = v.fragmentation(0, 64);
        assert_eq!(extents, 3);
        assert_eq!(largest, 4);
    }

    #[test]
    fn save_restore_roundtrip() {
        let mut v = Vam::new_all_allocated(200);
        v.free_run(Run::new(3, 7));
        v.free_run(Run::new(150, 20));
        v.shadow_free_run(Run::new(100, 5)); // Volatile: not saved.
        let restored = Vam::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(restored.free_count(), v.free_count());
        assert_eq!(restored.shadow_count(), 0);
        assert!(restored.is_free(5));
        assert!(!restored.is_free(100));
    }

    #[test]
    fn mask_covers_word_boundaries() {
        assert_eq!(mask(0, 64), u64::MAX);
        assert_eq!(mask(0, 1), 1);
        assert_eq!(mask(63, 1), 1 << 63);
        assert_eq!(mask(4, 3), 0b111 << 4);
    }

    #[test]
    fn word_ops_cross_word_boundaries() {
        let mut v = Vam::new_all_allocated(256);
        // 60..=130 spans three words with partial ends.
        v.free_run(Run::new(60, 71));
        assert_eq!(v.free_count(), 71);
        assert!(!v.is_free(59));
        assert!(v.is_free(60));
        assert!(v.is_free(130));
        assert!(!v.is_free(131));
        v.allocate_run(Run::new(64, 64)); // exactly one full word
        assert_eq!(v.free_count(), 7);
        assert!(v.is_free(63));
        assert!(!v.is_free(64));
        assert!(!v.is_free(127));
        assert!(v.is_free(128));
    }

    #[test]
    fn merge_or_unions_free_and_shadow() {
        let mut a = Vam::new_all_allocated(200);
        a.free_run(Run::new(0, 10));
        a.shadow_free_run(Run::new(50, 5));
        let mut b = Vam::new_all_allocated(200);
        b.free_run(Run::new(5, 10));
        b.shadow_free_run(Run::new(52, 5));
        a.merge_or(&b);
        assert_eq!(a.free_count(), 15);
        assert_eq!(a.shadow_count(), 7);
        assert!(a.is_free(0) && a.is_free(14) && !a.is_free(15));
    }

    #[test]
    fn subtract_removes_claims_from_all_free() {
        let mut free = Vam::new_all_allocated(128);
        free.free_run(Run::new(0, 128));
        let mut claimed = Vam::new_all_allocated(128);
        claimed.free_run(Run::new(30, 40)); // "claimed" bits
        free.subtract(&claimed);
        assert_eq!(free.free_count(), 128 - 40);
        assert!(free.is_free(29));
        assert!(!free.is_free(30));
        assert!(!free.is_free(69));
        assert!(free.is_free(70));
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        assert!(Vam::from_bytes(&[1, 2]).is_err());
        let v = Vam::new_all_allocated(200);
        let mut b = v.to_bytes();
        b.truncate(b.len() - 1);
        assert!(Vam::from_bytes(&b).is_err());
    }
}
