//! Property tests: the page-oriented B-tree behaves exactly like
//! `std::collections::BTreeMap` under arbitrary operation sequences, while
//! maintaining its structural invariants and never leaking pages.

use cedar_btree::{BTree, MemStore};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    // Small key space so inserts and deletes collide often.
    (0u32..64).prop_map(|i| format!("k{i:03}").into_bytes())
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Entry size 4 + 4 + vlen must stay below the smallest generated
        // page size's max entry: (128 - 3) / 4 = 31.
        (arb_key(), proptest::collection::vec(any::<u8>(), 0..22))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        arb_key().prop_map(Op::Delete),
        arb_key().prop_map(Op::Get),
        (arb_key(), arb_key()).prop_map(|(a, b)| Op::Range(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_std_btreemap(ops in proptest::collection::vec(arb_op(), 1..400), page_size in 128usize..1024) {
        let mut store = MemStore::new(page_size);
        let mut tree = BTree::create(&mut store).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    let got = tree.insert(&mut store, k, v).unwrap();
                    let want = model.insert(k.clone(), v.clone());
                    prop_assert_eq!(got, want);
                }
                Op::Delete(k) => {
                    let got = tree.delete(&mut store, k).unwrap();
                    let want = model.remove(k);
                    prop_assert_eq!(got, want);
                }
                Op::Get(k) => {
                    let got = tree.get(&mut store, k).unwrap();
                    let want = model.get(k).cloned();
                    prop_assert_eq!(got, want);
                }
                Op::Range(a, b) => {
                    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                    let got = tree.collect_range(&mut store, lo, Some(hi)).unwrap();
                    let want: Vec<_> = model
                        .range::<Vec<u8>, _>(lo.clone()..hi.clone())
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }

        tree.check_invariants(&mut store).unwrap();

        // Full scan equals the model, in order.
        let got = tree.collect_range(&mut store, &[], None).unwrap();
        let want: Vec<_> = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn pages_not_leaked_after_full_delete(
        keys in proptest::collection::btree_set(arb_key(), 1..150),
        page_size in 128usize..512,
    ) {
        let mut store = MemStore::new(page_size);
        let mut tree = BTree::create(&mut store).unwrap();
        for k in &keys {
            tree.insert(&mut store, k, b"some value bytes").unwrap();
        }
        for k in &keys {
            prop_assert!(tree.delete(&mut store, k).unwrap().is_some());
        }
        prop_assert_eq!(tree.len(&mut store).unwrap(), 0);
        // Only the root leaf remains live.
        prop_assert_eq!(store.live_pages(), 1);
    }

    #[test]
    fn invariants_hold_after_every_mutation(
        ops in proptest::collection::vec(arb_op(), 1..120),
    ) {
        let mut store = MemStore::new(192); // Small pages: frequent splits/merges.
        let mut tree = BTree::create(&mut store).unwrap();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(&mut store, k, v).unwrap();
                }
                Op::Delete(k) => {
                    tree.delete(&mut store, k).unwrap();
                }
                _ => continue,
            }
            tree.check_invariants(&mut store).unwrap();
        }
    }
}
