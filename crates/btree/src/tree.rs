//! B-tree algorithms: lookup, insert with splits, delete with
//! steal/merge rebalancing, and ordered range scans.
//!
//! The tree is deliberately stateless apart from the root page id: every
//! operation takes the [`PageStore`] explicitly, because the two file
//! systems wrap very different stores around the same algorithms. Pages are
//! written children-first, which is exactly the order that leaves a
//! *torn* multi-page update visible to a crash in CFS (the failure FSD's
//! logging removes).

use crate::node::{Node, MAX_ENTRY_FRACTION};
use crate::store::{PageId, PageStore, StoreError};
use std::fmt;

/// Errors from tree operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BTreeError {
    /// The underlying page store failed.
    Store(StoreError),
    /// A page did not decode as a valid node, or tree structure is
    /// inconsistent — in CFS this is what a crash mid-split produces.
    Corrupt(String),
    /// The entry is too large to ever fit in a node.
    EntryTooLarge {
        /// Encoded size of the offending entry.
        size: usize,
        /// Largest admissible encoded entry size for this page size.
        max: usize,
    },
}

impl fmt::Display for BTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Store(e) => write!(f, "store error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt b-tree: {msg}"),
            Self::EntryTooLarge { size, max } => {
                write!(f, "entry of {size} bytes exceeds maximum {max}")
            }
        }
    }
}

impl std::error::Error for BTreeError {}

impl From<StoreError> for BTreeError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

type Result<T> = std::result::Result<T, BTreeError>;

/// Outcome of an insert one level down: the child split, promoting `sep`.
struct Split {
    sep: Vec<u8>,
    right: PageId,
}

/// A B-tree rooted at a page in some [`PageStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTree {
    root: PageId,
}

impl BTree {
    /// Largest admissible encoded entry (`4 + key + value` bytes) for a
    /// given page size; a node can always hold at least
    /// [`MAX_ENTRY_FRACTION`] such entries.
    pub fn max_entry_size(page_size: usize) -> usize {
        (page_size - 3) / MAX_ENTRY_FRACTION
    }

    /// Creates a new empty tree in `store`.
    pub fn create<S: PageStore>(store: &mut S) -> Result<Self> {
        let root = store.alloc_page()?;
        store.write_page(root, &Node::empty_leaf().encode(store.page_size()))?;
        Ok(Self { root })
    }

    /// Reattaches to an existing tree rooted at `root`.
    pub fn open(root: PageId) -> Self {
        Self { root }
    }

    /// Builds a tree bottom-up from `entries`, which must be strictly
    /// ascending by key.
    ///
    /// Leaves are greedily packed full (in key order the packing never
    /// has to split), then each internal level is packed over the level
    /// below, with the separator for child *i+1* its subtree's smallest
    /// key — the same separator [`BTree::insert`]'s leaf split would
    /// have promoted. Every page is written exactly once, so loading N
    /// entries costs O(pages) page writes instead of the N-insert
    /// rebuild's O(N · depth) reads and writes. This is what makes the
    /// scavenger's name-table rebuild scale to millions of files.
    pub fn bulk_load<S: PageStore>(store: &mut S, entries: &[(Vec<u8>, Vec<u8>)]) -> Result<Self> {
        let page_size = store.page_size();
        let max = Self::max_entry_size(page_size);
        for pair in entries.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err(BTreeError::Corrupt(
                    "bulk load input not strictly ascending".to_string(),
                ));
            }
        }
        for (k, v) in entries {
            let size = 4 + k.len() + v.len();
            if size > max {
                return Err(BTreeError::EntryTooLarge { size, max });
            }
        }
        if entries.is_empty() {
            return Self::create(store);
        }

        // Pack leaves: each holds as many consecutive entries as fit.
        let mut level: Vec<(Vec<u8>, PageId)> = Vec::new();
        let header = Node::empty_leaf().encoded_size();
        let mut start = 0;
        let mut size = header;
        for (i, (k, v)) in entries.iter().enumerate() {
            let entry = 4 + k.len() + v.len();
            if size + entry > page_size && i > start {
                level.push(Self::write_leaf(store, &entries[start..i])?);
                start = i;
                size = header;
            }
            size += entry;
        }
        level.push(Self::write_leaf(store, &entries[start..])?);

        // Stack internal levels until one node covers everything.
        while level.len() > 1 {
            level = Self::pack_internal_level(store, level)?;
        }
        Ok(Self { root: level[0].1 })
    }

    /// Writes one packed leaf, returning `(smallest key, page id)`.
    fn write_leaf<S: PageStore>(
        store: &mut S,
        entries: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Vec<u8>, PageId)> {
        let id = store.alloc_page()?;
        Self::save(store, id, &Node::Leaf(entries.to_vec()))?;
        Ok((entries[0].0.clone(), id))
    }

    /// Packs one internal level over `below` (each item the smallest key
    /// in that child's subtree plus its page id), returning the level
    /// built. A trailing node is never left with a single child: the
    /// packing stops one short when only one item would remain.
    fn pack_internal_level<S: PageStore>(
        store: &mut S,
        below: Vec<(Vec<u8>, PageId)>,
    ) -> Result<Vec<(Vec<u8>, PageId)>> {
        let page_size = store.page_size();
        let mut level = Vec::new();
        let mut i = 0;
        while i < below.len() {
            // 3-byte header + 4 bytes for the first child, then
            // (2 + key + 4) per further child.
            let mut size = 3 + 4;
            let mut j = i + 1;
            while j < below.len() {
                let added = 2 + below[j].0.len() + 4;
                if size + added > page_size {
                    break;
                }
                size += added;
                j += 1;
            }
            // Never leave a lone child for the trailing node: give up
            // one of ours instead (entry-size bounds guarantee any node
            // fits at least two children).
            if j + 1 == below.len() && j - i >= 2 {
                j -= 1;
            }
            let keys = below[i + 1..j].iter().map(|(k, _)| k.clone()).collect();
            let children = below[i..j].iter().map(|&(_, id)| id).collect();
            let id = store.alloc_page()?;
            Self::save(store, id, &Node::Internal { keys, children })?;
            level.push((below[i].0.clone(), id));
            i = j;
        }
        Ok(level)
    }

    /// The current root page id. The owner must persist this across
    /// restarts (it changes when the root splits or collapses).
    pub fn root(&self) -> PageId {
        self.root
    }

    fn load<S: PageStore>(store: &mut S, id: PageId) -> Result<Node> {
        let page = store.read_page(id)?;
        Node::decode(&page).map_err(|e| BTreeError::Corrupt(format!("page {id}: {e}")))
    }

    fn save<S: PageStore>(store: &mut S, id: PageId, node: &Node) -> Result<()> {
        store.write_page(id, &node.encode(store.page_size()))?;
        Ok(())
    }

    /// Index of the child an operation on `key` routes to.
    fn route(keys: &[Vec<u8>], key: &[u8]) -> usize {
        keys.partition_point(|sep| sep.as_slice() <= key)
    }

    // ----- lookup -------------------------------------------------------------

    /// Returns the value stored under `key`, if any.
    pub fn get<S: PageStore>(&self, store: &mut S, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut id = self.root;
        loop {
            match Self::load(store, id)? {
                Node::Leaf(entries) => {
                    return Ok(entries
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone()));
                }
                Node::Internal { keys, children } => {
                    id = children[Self::route(&keys, key)];
                }
            }
        }
    }

    // ----- insert -------------------------------------------------------------

    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    pub fn insert<S: PageStore>(
        &mut self,
        store: &mut S,
        key: &[u8],
        value: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        let entry_size = 4 + key.len() + value.len();
        let max = Self::max_entry_size(store.page_size());
        if entry_size > max {
            return Err(BTreeError::EntryTooLarge {
                size: entry_size,
                max,
            });
        }
        let (old, split) = Self::insert_rec(store, self.root, key, value)?;
        if let Some(split) = split {
            // The root split: grow the tree by one level.
            let new_root = store.alloc_page()?;
            let node = Node::Internal {
                keys: vec![split.sep],
                children: vec![self.root, split.right],
            };
            Self::save(store, new_root, &node)?;
            self.root = new_root;
        }
        Ok(old)
    }

    fn insert_rec<S: PageStore>(
        store: &mut S,
        id: PageId,
        key: &[u8],
        value: &[u8],
    ) -> Result<(Option<Vec<u8>>, Option<Split>)> {
        let node = Self::load(store, id)?;
        match node {
            Node::Leaf(mut entries) => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(std::mem::replace(&mut entries[i].1, value.to_vec())),
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), value.to_vec()));
                        None
                    }
                };
                let node = Node::Leaf(entries);
                if node.fits(store.page_size()) {
                    Self::save(store, id, &node)?;
                    return Ok((old, None));
                }
                // Split the leaf by accumulated encoded size.
                let Node::Leaf(entries) = node else {
                    unreachable!()
                };
                let (left, right) = split_leaf(entries, store.page_size());
                let sep = right[0].0.clone();
                let right_id = store.alloc_page()?;
                Self::save(store, right_id, &Node::Leaf(right))?;
                Self::save(store, id, &Node::Leaf(left))?;
                Ok((
                    old,
                    Some(Split {
                        sep,
                        right: right_id,
                    }),
                ))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = Self::route(&keys, key);
                let (old, child_split) = Self::insert_rec(store, children[idx], key, value)?;
                let Some(cs) = child_split else {
                    return Ok((old, None));
                };
                keys.insert(idx, cs.sep);
                children.insert(idx + 1, cs.right);
                let node = Node::Internal { keys, children };
                if node.fits(store.page_size()) {
                    Self::save(store, id, &node)?;
                    return Ok((old, None));
                }
                let Node::Internal { keys, children } = node else {
                    unreachable!()
                };
                let (left, promoted, right) = split_internal(keys, children, store.page_size());
                let right_id = store.alloc_page()?;
                Self::save(store, right_id, &right)?;
                Self::save(store, id, &left)?;
                Ok((
                    old,
                    Some(Split {
                        sep: promoted,
                        right: right_id,
                    }),
                ))
            }
        }
    }

    // ----- delete -------------------------------------------------------------

    /// Removes `key`, returning its value if it was present.
    pub fn delete<S: PageStore>(&mut self, store: &mut S, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let (old, _) = Self::delete_rec(store, self.root, key)?;
        // If the root is an internal node with a single child, collapse it.
        if let Node::Internal { keys, children } = Self::load(store, self.root)? {
            if keys.is_empty() {
                let only = children[0];
                store.free_page(self.root)?;
                self.root = only;
            }
        }
        Ok(old)
    }

    /// Returns `(old value, child underflowed)`.
    fn delete_rec<S: PageStore>(
        store: &mut S,
        id: PageId,
        key: &[u8],
    ) -> Result<(Option<Vec<u8>>, bool)> {
        let node = Self::load(store, id)?;
        let threshold = store.page_size() / 3;
        match node {
            Node::Leaf(mut entries) => {
                let old = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Some(entries.remove(i).1),
                    Err(_) => return Ok((None, false)),
                };
                let node = Node::Leaf(entries);
                let under = node.encoded_size() < threshold;
                Self::save(store, id, &node)?;
                Ok((old, under))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = Self::route(&keys, key);
                let (old, child_under) = Self::delete_rec(store, children[idx], key)?;
                if old.is_none() || !child_under {
                    return Ok((old, false));
                }
                Self::rebalance_child(store, &mut keys, &mut children, idx)?;
                let node = Node::Internal { keys, children };
                let under = node.encoded_size() < threshold;
                Self::save(store, id, &node)?;
                Ok((old, under))
            }
        }
    }

    /// Restores the size invariant of `children[idx]` by stealing from or
    /// merging with an adjacent sibling, updating `keys`/`children` in
    /// place.
    fn rebalance_child<S: PageStore>(
        store: &mut S,
        keys: &mut Vec<Vec<u8>>,
        children: &mut Vec<PageId>,
        idx: usize,
    ) -> Result<()> {
        // Prefer the right sibling; fall back to the left (idx 0 has none
        // on the left, the last child none on the right).
        let (left_idx, right_idx) = if idx + 1 < children.len() {
            (idx, idx + 1)
        } else if idx > 0 {
            (idx - 1, idx)
        } else {
            return Ok(()); // Root child with no siblings: nothing to do.
        };
        let left_id = children[left_idx];
        let right_id = children[right_idx];
        let left = Self::load(store, left_id)?;
        let right = Self::load(store, right_id)?;
        let page_size = store.page_size();
        let threshold = page_size / 3;
        let sep = keys[left_idx].clone();

        match (left, right) {
            (Node::Leaf(mut l), Node::Leaf(mut r)) => {
                let merged_size =
                    Node::Leaf(Vec::new()).encoded_size() + leaf_payload(&l) + leaf_payload(&r);
                if merged_size <= page_size {
                    // Merge right into left; drop the separator.
                    l.append(&mut r);
                    Self::save(store, left_id, &Node::Leaf(l))?;
                    store.free_page(right_id)?;
                    keys.remove(left_idx);
                    children.remove(right_idx);
                } else {
                    // Steal: move entries across until both sides are above
                    // threshold (possible because together they exceed a
                    // page while each entry is small).
                    while Node::Leaf(l.clone()).encoded_size() < threshold {
                        l.push(r.remove(0));
                    }
                    while Node::Leaf(r.clone()).encoded_size() < threshold {
                        r.insert(0, l.pop().expect("donor leaf empty"));
                    }
                    keys[left_idx] = r[0].0.clone();
                    Self::save(store, left_id, &Node::Leaf(l))?;
                    Self::save(store, right_id, &Node::Leaf(r))?;
                }
            }
            (
                Node::Internal {
                    keys: mut lk,
                    children: mut lc,
                },
                Node::Internal {
                    keys: mut rk,
                    children: mut rc,
                },
            ) => {
                let merged = {
                    let mut keys = lk.clone();
                    keys.push(sep.clone());
                    keys.extend(rk.iter().cloned());
                    let mut ch = lc.clone();
                    ch.extend(rc.iter().cloned());
                    Node::Internal { keys, children: ch }
                };
                if merged.fits(page_size) {
                    Self::save(store, left_id, &merged)?;
                    store.free_page(right_id)?;
                    keys.remove(left_idx);
                    children.remove(right_idx);
                } else {
                    // Rotate one entry through the parent separator.
                    let left_size = Node::Internal {
                        keys: lk.clone(),
                        children: lc.clone(),
                    }
                    .encoded_size();
                    let mut sep = sep;
                    let internal_size = |keys: &[Vec<u8>]| -> usize {
                        3 + 4 + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
                    };
                    if left_size < threshold {
                        // Borrow from the right sibling.
                        while internal_size(&lk) < threshold {
                            lk.push(std::mem::replace(&mut sep, rk.remove(0)));
                            lc.push(rc.remove(0));
                        }
                    } else {
                        // Borrow from the left sibling.
                        while internal_size(&rk) < threshold {
                            rk.insert(0, std::mem::replace(&mut sep, lk.pop().expect("donor")));
                            rc.insert(0, lc.pop().expect("donor"));
                        }
                    }
                    keys[left_idx] = sep;
                    Self::save(
                        store,
                        left_id,
                        &Node::Internal {
                            keys: lk,
                            children: lc,
                        },
                    )?;
                    Self::save(
                        store,
                        right_id,
                        &Node::Internal {
                            keys: rk,
                            children: rc,
                        },
                    )?;
                }
            }
            _ => {
                return Err(BTreeError::Corrupt(
                    "siblings at different levels".to_string(),
                ))
            }
        }
        Ok(())
    }

    // ----- scans --------------------------------------------------------------

    /// Visits all entries with `lo <= key < hi` (unbounded above when `hi`
    /// is `None`) in key order. The callback returns `false` to stop early.
    pub fn for_each_range<S: PageStore>(
        &self,
        store: &mut S,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        Self::scan_rec(store, self.root, lo, hi, f)?;
        Ok(())
    }

    /// Visits every entry in key order.
    pub fn for_each<S: PageStore>(
        &self,
        store: &mut S,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<()> {
        self.for_each_range(store, &[], None, f)
    }

    /// Collects all entries with `lo <= key < hi` (test/demo convenience).
    pub fn collect_range<S: PageStore>(
        &self,
        store: &mut S,
        lo: &[u8],
        hi: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(store, lo, hi, &mut |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Number of entries in the tree (full scan).
    pub fn len<S: PageStore>(&self, store: &mut S) -> Result<usize> {
        let mut n = 0;
        self.for_each(store, &mut |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Returns `false` if the callback stopped the scan.
    fn scan_rec<S: PageStore>(
        store: &mut S,
        id: PageId,
        lo: &[u8],
        hi: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<bool> {
        match Self::load(store, id)? {
            Node::Leaf(entries) => {
                for (k, v) in &entries {
                    if k.as_slice() < lo {
                        continue;
                    }
                    if let Some(hi) = hi {
                        if k.as_slice() >= hi {
                            return Ok(false);
                        }
                    }
                    if !f(k, v) {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Node::Internal { keys, children } => {
                let start = keys.partition_point(|sep| sep.as_slice() <= lo);
                let end = match hi {
                    Some(hi) => keys.partition_point(|sep| sep.as_slice() < hi),
                    None => keys.len(),
                };
                for &child in &children[start..=end] {
                    if !Self::scan_rec(store, child, lo, hi, f)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    // ----- integrity ------------------------------------------------------------

    /// Exhaustively checks the structural invariants: uniform leaf depth,
    /// key ordering within and across nodes, separator correctness, and
    /// that every node fits its page. Used by tests and by the FSD
    /// consistency checker.
    pub fn check_invariants<S: PageStore>(&self, store: &mut S) -> Result<()> {
        Self::check_rec(store, self.root, None, None)?;
        Ok(())
    }

    /// Returns the subtree depth.
    fn check_rec<S: PageStore>(
        store: &mut S,
        id: PageId,
        lower: Option<&[u8]>,
        upper: Option<&[u8]>,
    ) -> Result<usize> {
        let node = Self::load(store, id)?;
        if !node.fits(store.page_size()) {
            return Err(BTreeError::Corrupt(format!("page {id} overflows")));
        }
        let in_bounds = |k: &[u8]| lower.is_none_or(|lo| k >= lo) && upper.is_none_or(|hi| k < hi);
        match node {
            Node::Leaf(entries) => {
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(BTreeError::Corrupt(format!("page {id} keys unsorted")));
                    }
                }
                for (k, _) in &entries {
                    if !in_bounds(k) {
                        return Err(BTreeError::Corrupt(format!(
                            "page {id} key out of separator bounds"
                        )));
                    }
                }
                Ok(0)
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(BTreeError::Corrupt(format!("page {id} malformed")));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(BTreeError::Corrupt(format!("page {id} seps unsorted")));
                    }
                }
                for k in &keys {
                    if !in_bounds(k) {
                        return Err(BTreeError::Corrupt(format!(
                            "page {id} separator out of bounds"
                        )));
                    }
                }
                let mut depth = None;
                for (i, &child) in children.iter().enumerate() {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(keys[i - 1].as_slice())
                    };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(keys[i].as_slice())
                    };
                    let d = Self::check_rec(store, child, lo, hi)?;
                    if *depth.get_or_insert(d) != d {
                        return Err(BTreeError::Corrupt(format!(
                            "page {id} children at unequal depths"
                        )));
                    }
                }
                Ok(depth.unwrap_or(0) + 1)
            }
        }
    }
}

/// Key/value pairs of one leaf page.
type LeafEntries = Vec<(Vec<u8>, Vec<u8>)>;

/// Splits leaf entries at roughly half the encoded payload.
fn split_leaf(entries: LeafEntries, page_size: usize) -> (LeafEntries, LeafEntries) {
    let total: usize = entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum();
    let mut acc = 0;
    let mut split_at = entries.len() - 1; // Right side always gets ≥ 1 entry.
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 4 + k.len() + v.len();
        if acc >= total / 2 && i + 1 < entries.len() {
            split_at = i + 1;
            break;
        }
    }
    let split_at = split_at.max(1);
    let mut left = entries;
    let right = left.split_off(split_at);
    debug_assert!(Node::Leaf(left.clone()).fits(page_size));
    debug_assert!(Node::Leaf(right.clone()).fits(page_size));
    (left, right)
}

/// Splits an overfull internal node, returning `(left, promoted key, right)`.
fn split_internal(
    keys: Vec<Vec<u8>>,
    children: Vec<PageId>,
    page_size: usize,
) -> (Node, Vec<u8>, Node) {
    let total: usize = keys.iter().map(|k| 2 + k.len() + 4).sum();
    let mut acc = 0;
    let mut mid = keys.len() / 2;
    for (i, k) in keys.iter().enumerate() {
        acc += 2 + k.len() + 4;
        if acc >= total / 2 && i + 1 < keys.len() {
            mid = i;
            break;
        }
    }
    let mid = mid.clamp(1, keys.len() - 2).max(1);
    let mut keys = keys;
    let mut children = children;
    let right_keys = keys.split_off(mid + 1);
    let promoted = keys.pop().expect("mid >= 1");
    let right_children = children.split_off(mid + 1);
    let left = Node::Internal { keys, children };
    let right = Node::Internal {
        keys: right_keys,
        children: right_children,
    };
    debug_assert!(left.fits(page_size));
    debug_assert!(right.fits(page_size));
    (left, promoted, right)
}

/// Encoded payload bytes of leaf entries (without the node header).
fn leaf_payload(entries: &[(Vec<u8>, Vec<u8>)]) -> usize {
    entries.iter().map(|(k, v)| 4 + k.len() + v.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    const PS: usize = 256;

    fn key(i: u32) -> Vec<u8> {
        format!("key{i:06}").into_bytes()
    }

    fn val(i: u32) -> Vec<u8> {
        format!("value-{i}").into_bytes()
    }

    #[test]
    fn empty_tree_lookup_misses() {
        let mut s = MemStore::new(PS);
        let t = BTree::create(&mut s).unwrap();
        assert_eq!(t.get(&mut s, b"nope").unwrap(), None);
        assert_eq!(t.len(&mut s).unwrap(), 0);
    }

    #[test]
    fn insert_get_single() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        assert_eq!(t.insert(&mut s, b"a", b"1").unwrap(), None);
        assert_eq!(t.get(&mut s, b"a").unwrap(), Some(b"1".to_vec()));
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        t.insert(&mut s, b"a", b"1").unwrap();
        assert_eq!(t.insert(&mut s, b"a", b"2").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(&mut s, b"a").unwrap(), Some(b"2".to_vec()));
        assert_eq!(t.len(&mut s).unwrap(), 1);
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..500 {
            t.insert(&mut s, &key(i * 7919 % 500), &val(i)).unwrap();
        }
        t.check_invariants(&mut s).unwrap();
        let all = t.collect_range(&mut s, &[], None).unwrap();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        for i in 0..500 {
            assert!(t.get(&mut s, &key(i)).unwrap().is_some(), "missing {i}");
        }
    }

    #[test]
    fn delete_missing_returns_none() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        t.insert(&mut s, b"a", b"1").unwrap();
        assert_eq!(t.delete(&mut s, b"b").unwrap(), None);
        assert_eq!(t.len(&mut s).unwrap(), 1);
    }

    #[test]
    fn delete_returns_value_and_removes() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        t.insert(&mut s, b"a", b"1").unwrap();
        assert_eq!(t.delete(&mut s, b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(&mut s, b"a").unwrap(), None);
    }

    #[test]
    fn delete_everything_shrinks_tree_to_root() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..300 {
            t.insert(&mut s, &key(i), &val(i)).unwrap();
        }
        for i in 0..300 {
            assert!(t.delete(&mut s, &key(i)).unwrap().is_some(), "{i}");
            t.check_invariants(&mut s).unwrap();
        }
        assert_eq!(t.len(&mut s).unwrap(), 0);
        // All pages but the root leaf were returned to the store.
        assert_eq!(s.live_pages(), 1);
    }

    #[test]
    fn interleaved_insert_delete_matches_model() {
        use std::collections::BTreeMap;
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        let mut model = BTreeMap::new();
        let mut x: u64 = 12345;
        for step in 0..3000u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = key((x >> 33) as u32 % 200);
            if x.is_multiple_of(3) {
                let got = t.delete(&mut s, &k).unwrap();
                assert_eq!(got, model.remove(&k), "step {step}");
            } else {
                let v = val(step);
                let got = t.insert(&mut s, &k, &v).unwrap();
                assert_eq!(got, model.insert(k, v), "step {step}");
            }
        }
        t.check_invariants(&mut s).unwrap();
        let all = t.collect_range(&mut s, &[], None).unwrap();
        assert_eq!(all.len(), model.len());
        for ((k, v), (mk, mv)) in all.iter().zip(model.iter()) {
            assert_eq!((k, v), (mk, mv));
        }
    }

    #[test]
    fn range_scan_respects_bounds() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..100 {
            t.insert(&mut s, &key(i), &val(i)).unwrap();
        }
        let r = t.collect_range(&mut s, &key(10), Some(&key(20))).unwrap();
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, key(10));
        assert_eq!(r[9].0, key(19));
    }

    #[test]
    fn range_scan_early_stop() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..100 {
            t.insert(&mut s, &key(i), &val(i)).unwrap();
        }
        let mut seen = 0;
        t.for_each(&mut s, &mut |_, _| {
            seen += 1;
            seen < 5
        })
        .unwrap();
        assert_eq!(seen, 5);
    }

    #[test]
    fn prefix_scan_finds_directory() {
        // List a "subdirectory" by name prefix, the way FS enumerates.
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for d in ["docs", "src", "tmp"] {
            for i in 0..20 {
                t.insert(&mut s, format!("{d}/f{i:02}").as_bytes(), b"x")
                    .unwrap();
            }
        }
        let r = t.collect_range(&mut s, b"src/", Some(b"src0")).unwrap();
        assert_eq!(r.len(), 20);
        assert!(r.iter().all(|(k, _)| k.starts_with(b"src/")));
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        let big = vec![0u8; PS];
        assert!(matches!(
            t.insert(&mut s, b"k", &big),
            Err(BTreeError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn root_survives_reopen() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..200 {
            t.insert(&mut s, &key(i), &val(i)).unwrap();
        }
        let reopened = BTree::open(t.root());
        assert_eq!(reopened.get(&mut s, &key(123)).unwrap(), Some(val(123)));
    }

    #[test]
    fn large_values_near_max_entry() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        let max = BTree::max_entry_size(PS);
        let v = vec![7u8; max - 4 - 8];
        for i in 0..50u32 {
            t.insert(&mut s, format!("big{i:04}").as_bytes(), &v)
                .unwrap();
        }
        t.check_invariants(&mut s).unwrap();
        assert_eq!(t.len(&mut s).unwrap(), 50);
    }

    #[test]
    fn bulk_load_empty_is_empty_tree() {
        let mut s = MemStore::new(PS);
        let t = BTree::bulk_load(&mut s, &[]).unwrap();
        t.check_invariants(&mut s).unwrap();
        assert_eq!(t.len(&mut s).unwrap(), 0);
        assert_eq!(t.get(&mut s, b"x").unwrap(), None);
    }

    #[test]
    fn bulk_load_matches_insert_built_tree_contents() {
        for n in [1usize, 2, 7, 64, 500, 2000] {
            let entries: Vec<(Vec<u8>, Vec<u8>)> =
                (0..n as u32).map(|i| (key(i), val(i))).collect();
            let mut s = MemStore::new(PS);
            let t = BTree::bulk_load(&mut s, &entries).unwrap();
            t.check_invariants(&mut s).unwrap();
            let all = t.collect_range(&mut s, &[], None).unwrap();
            assert_eq!(all, entries, "n = {n}");
            for (k, v) in &entries {
                assert_eq!(t.get(&mut s, k).unwrap().as_ref(), Some(v));
            }
        }
    }

    #[test]
    fn bulk_load_writes_far_fewer_pages_than_inserts() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..2000u32).map(|i| (key(i), val(i))).collect();
        let mut bulk_store = MemStore::new(PS);
        BTree::bulk_load(&mut bulk_store, &entries).unwrap();
        let mut insert_store = MemStore::new(PS);
        let mut t = BTree::create(&mut insert_store).unwrap();
        for (k, v) in &entries {
            t.insert(&mut insert_store, k, v).unwrap();
        }
        assert!(
            bulk_store.ops.1 * 10 < insert_store.ops.1,
            "bulk {} vs insert {}",
            bulk_store.ops.1,
            insert_store.ops.1
        );
        // Same number of live pages, give or take packing density.
        assert!(bulk_store.live_pages() <= insert_store.live_pages());
    }

    #[test]
    fn bulk_load_supports_mutation_afterwards() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..800u32).map(|i| (key(i * 2), val(i))).collect();
        let mut s = MemStore::new(PS);
        let mut t = BTree::bulk_load(&mut s, &entries).unwrap();
        for i in 0..200u32 {
            t.insert(&mut s, &key(i * 2 + 1), &val(i)).unwrap();
        }
        for i in 0..100u32 {
            assert!(t.delete(&mut s, &key(i * 4)).unwrap().is_some());
        }
        t.check_invariants(&mut s).unwrap();
        assert_eq!(t.len(&mut s).unwrap(), 800 + 200 - 100);
    }

    #[test]
    fn bulk_load_rejects_unsorted_and_duplicate_keys() {
        let mut s = MemStore::new(PS);
        let unsorted = vec![(key(2), val(0)), (key(1), val(1))];
        assert!(matches!(
            BTree::bulk_load(&mut s, &unsorted),
            Err(BTreeError::Corrupt(_))
        ));
        let dup = vec![(key(1), val(0)), (key(1), val(1))];
        assert!(matches!(
            BTree::bulk_load(&mut s, &dup),
            Err(BTreeError::Corrupt(_))
        ));
    }

    #[test]
    fn bulk_load_rejects_oversized_entry() {
        let mut s = MemStore::new(PS);
        let big = vec![(key(1), vec![0u8; PS])];
        assert!(matches!(
            BTree::bulk_load(&mut s, &big),
            Err(BTreeError::EntryTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_page_surfaces_as_corrupt_error() {
        let mut s = MemStore::new(PS);
        let mut t = BTree::create(&mut s).unwrap();
        for i in 0..100 {
            t.insert(&mut s, &key(i), &val(i)).unwrap();
        }
        // Smash the root.
        s.write_page(t.root(), &vec![0xFF; PS]).unwrap();
        assert!(matches!(
            t.get(&mut s, &key(1)),
            Err(BTreeError::Corrupt(_))
        ));
    }
}
