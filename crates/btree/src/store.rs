//! The page-store abstraction the B-tree runs on.

use std::fmt;

/// Identifier of a logical page within a store.
pub type PageId = u32;

/// Errors a page store can raise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The machine crashed mid-operation; the caller must unwind to
    /// recovery. Maps from `cedar_disk::DiskError::Crashed`.
    Crashed,
    /// The store is out of pages.
    Full,
    /// Any other I/O failure (bad sector with no surviving replica, etc.).
    Io(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Crashed => write!(f, "machine crashed"),
            Self::Full => write!(f, "page store is full"),
            Self::Io(msg) => write!(f, "page store I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A store of fixed-size logical pages.
///
/// The B-tree reads and writes whole pages through this trait; allocation
/// of new pages (for splits) and freeing (for joins) also go through it.
/// Implementations decide durability: write-through (CFS), or
/// cache-then-log (FSD).
pub trait PageStore {
    /// Size in bytes of every logical page in this store.
    fn page_size(&self) -> usize;

    /// Reads a page. The returned buffer is exactly [`Self::page_size`]
    /// bytes.
    fn read_page(&mut self, id: PageId) -> Result<Vec<u8>, StoreError>;

    /// Writes a page. `data` is exactly [`Self::page_size`] bytes.
    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError>;

    /// Allocates a fresh page and returns its id. Its contents are
    /// unspecified until first written.
    fn alloc_page(&mut self) -> Result<PageId, StoreError>;

    /// Returns a page to the free pool.
    fn free_page(&mut self, id: PageId) -> Result<(), StoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(StoreError::Crashed.to_string(), "machine crashed");
        assert_eq!(StoreError::Full.to_string(), "page store is full");
        assert!(StoreError::Io("x".into()).to_string().contains('x'));
    }
}
