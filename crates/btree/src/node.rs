//! On-page node format.
//!
//! Nodes are serialized into fixed-size pages with a hand-rolled layout —
//! the on-disk encoding is itself part of the artifact being reproduced, so
//! no serialization framework is used.
//!
//! Leaf page: `[1u8][count u16][ (klen u16, vlen u16, key, value)* ]`.
//! Internal page: `[2u8][count u16][child0 u32][ (klen u16, key, child u32)* ]`,
//! where `count` is the number of separator keys and separator `i` is a copy
//! of the smallest key in child `i + 1`.

/// A node must be able to hold at least this many maximum-size entries;
/// entries larger than `(page_size - 3) / MAX_ENTRY_FRACTION` are rejected.
pub const MAX_ENTRY_FRACTION: usize = 4;

const LEAF_TAG: u8 = 1;
const INTERNAL_TAG: u8 = 2;
const HEADER: usize = 3;

/// An in-memory B-tree node, decoded from (or about to be encoded to) a
/// page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Sorted `(key, value)` pairs.
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    /// Separator keys and child page ids; `children.len() == keys.len() + 1`.
    Internal {
        /// Separator keys: `keys[i]` is the smallest key reachable through
        /// `children[i + 1]`.
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u32>,
    },
}

impl Node {
    /// Creates an empty leaf.
    pub fn empty_leaf() -> Self {
        Node::Leaf(Vec::new())
    }

    /// Serialized size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Node::Leaf(entries) => {
                HEADER
                    + entries
                        .iter()
                        .map(|(k, v)| 4 + k.len() + v.len())
                        .sum::<usize>()
            }
            Node::Internal { keys, .. } => {
                HEADER + 4 + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
            }
        }
    }

    /// Returns `true` if the node fits in a page of `page_size` bytes.
    pub fn fits(&self, page_size: usize) -> bool {
        self.encoded_size() <= page_size
    }

    /// Number of entries (leaf) or separator keys (internal).
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }

    /// Returns `true` if the node holds no entries / separator keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodes the node into a `page_size`-byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if the node does not fit (callers split before encoding).
    pub fn encode(&self, page_size: usize) -> Vec<u8> {
        assert!(self.fits(page_size), "node overflows page");
        // Every length below is bounded by the fits() check (a page is far
        // smaller than u16::MAX entries or bytes), so saturation never fires.
        let len16 = |n: usize| u16::try_from(n).unwrap_or(u16::MAX).to_le_bytes();
        let mut out = vec![0u8; page_size];
        match self {
            Node::Leaf(entries) => {
                out[0] = LEAF_TAG;
                out[1..3].copy_from_slice(&len16(entries.len()));
                let mut at = HEADER;
                for (k, v) in entries {
                    out[at..at + 2].copy_from_slice(&len16(k.len()));
                    out[at + 2..at + 4].copy_from_slice(&len16(v.len()));
                    at += 4;
                    out[at..at + k.len()].copy_from_slice(k);
                    at += k.len();
                    out[at..at + v.len()].copy_from_slice(v);
                    at += v.len();
                }
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "malformed internal node");
                out[0] = INTERNAL_TAG;
                out[1..3].copy_from_slice(&len16(keys.len()));
                let mut at = HEADER;
                out[at..at + 4].copy_from_slice(&children[0].to_le_bytes());
                at += 4;
                for (k, c) in keys.iter().zip(&children[1..]) {
                    out[at..at + 2].copy_from_slice(&len16(k.len()));
                    at += 2;
                    out[at..at + k.len()].copy_from_slice(k);
                    at += k.len();
                    out[at..at + 4].copy_from_slice(&c.to_le_bytes());
                    at += 4;
                }
            }
        }
        out
    }

    /// Decodes a node from a page buffer.
    pub fn decode(page: &[u8]) -> Result<Self, String> {
        if page.len() < HEADER {
            return Err("page too small for node header".into());
        }
        let count = u16::from_le_bytes([page[1], page[2]]) as usize;
        let mut at = HEADER;
        let take = |at: &mut usize, n: usize| -> Result<&[u8], String> {
            if *at + n > page.len() {
                return Err("node entry runs off page".into());
            }
            let s = &page[*at..*at + n];
            *at += n;
            Ok(s)
        };
        let le16 = |s: &[u8]| u16::from_le_bytes([s[0], s[1]]) as usize;
        let le32 = |s: &[u8]| u32::from_le_bytes([s[0], s[1], s[2], s[3]]);
        match page[0] {
            LEAF_TAG => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = le16(take(&mut at, 2)?);
                    let vlen = le16(take(&mut at, 2)?);
                    let k = take(&mut at, klen)?.to_vec();
                    let v = take(&mut at, vlen)?.to_vec();
                    entries.push((k, v));
                }
                Ok(Node::Leaf(entries))
            }
            INTERNAL_TAG => {
                let mut children = Vec::with_capacity(count + 1);
                let mut keys = Vec::with_capacity(count);
                children.push(le32(take(&mut at, 4)?));
                for _ in 0..count {
                    let klen = le16(take(&mut at, 2)?);
                    keys.push(take(&mut at, klen)?.to_vec());
                    children.push(le32(take(&mut at, 4)?));
                }
                Ok(Node::Internal { keys, children })
            }
            t => Err(format!("unknown node tag {t}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let n = Node::Leaf(vec![
            (b"alpha".to_vec(), b"1".to_vec()),
            (b"beta".to_vec(), b"two".to_vec()),
        ]);
        let page = n.encode(256);
        assert_eq!(Node::decode(&page).unwrap(), n);
    }

    #[test]
    fn internal_roundtrip() {
        let n = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![4, 9],
        };
        let page = n.encode(128);
        assert_eq!(Node::decode(&page).unwrap(), n);
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let n = Node::empty_leaf();
        assert_eq!(Node::decode(&n.encode(64)).unwrap(), n);
    }

    #[test]
    fn encoded_size_matches_layout() {
        let n = Node::Leaf(vec![(vec![0; 3], vec![0; 5])]);
        assert_eq!(n.encoded_size(), 3 + 4 + 3 + 5);
        let m = Node::Internal {
            keys: vec![vec![0; 3]],
            children: vec![1, 2],
        };
        assert_eq!(m.encoded_size(), 3 + 4 + 2 + 3 + 4);
    }

    #[test]
    fn fits_respects_page_size() {
        let n = Node::Leaf(vec![(vec![0; 100], vec![0; 100])]);
        assert!(n.fits(256));
        assert!(!n.fits(128));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn encode_overflow_panics() {
        let n = Node::Leaf(vec![(vec![0; 100], vec![0; 100])]);
        let _ = n.encode(64);
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(Node::decode(&[]).is_err());
        assert!(Node::decode(&[9, 0, 0]).is_err());
        // Leaf claiming one entry but truncated.
        assert!(Node::decode(&[1, 1, 0]).is_err());
        // Entry length running off the page.
        let mut p = vec![1u8, 1, 0, 255, 255, 0, 0];
        p.resize(16, 0);
        assert!(Node::decode(&p).is_err());
    }

    #[test]
    fn zeroed_page_decodes_as_empty_leaf_error() {
        // An all-zero page has tag 0, which is invalid — freshly allocated
        // pages must be written before being read back as nodes.
        assert!(Node::decode(&[0u8; 64]).is_err());
    }
}
