//! A page-oriented B-tree over an abstract page store.
//!
//! Both Cedar file systems keep their file name table in a B-tree (§5.1 of
//! the paper). What differs is *how the pages reach the disk*:
//!
//! * **CFS** writes name-table pages synchronously and non-atomically — a
//!   crash in the middle of a split or join leaves the tree inconsistent,
//!   repaired only by the hour-long scavenge (§5.3);
//! * **FSD** applies updates to cached copies and writes the page images to
//!   a redo log, making multi-page updates atomic.
//!
//! This crate therefore separates the tree algorithms from page I/O: the
//! tree operates on a [`PageStore`], and each file system supplies a store
//! with its own durability semantics. Keys and values are arbitrary byte
//! strings ordered lexicographically; entries are variable length, as Cedar
//! file names are.

#![deny(unsafe_code)]

pub mod mem;
pub mod node;
pub mod store;
pub mod tree;

pub use mem::MemStore;
pub use node::{Node, MAX_ENTRY_FRACTION};
pub use store::{PageId, PageStore, StoreError};
pub use tree::{BTree, BTreeError};

/// Result alias for tree operations.
pub type Result<T> = std::result::Result<T, BTreeError>;
