//! An in-memory page store for tests and for volatile structures.

use crate::store::{PageId, PageStore, StoreError};
use std::collections::HashMap;

/// A [`PageStore`] backed by a hash map. Used by unit tests and as the
/// model in property tests; also handy for building throwaway trees.
#[derive(Clone, Debug)]
pub struct MemStore {
    page_size: usize,
    pages: HashMap<PageId, Vec<u8>>,
    free: Vec<PageId>,
    next: PageId,
    /// Counters useful in tests: (reads, writes, allocs, frees).
    pub ops: (u64, u64, u64, u64),
}

impl MemStore {
    /// Creates an empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        Self {
            page_size,
            pages: HashMap::new(),
            free: Vec::new(),
            next: 0,
            ops: (0, 0, 0, 0),
        }
    }

    /// Number of live (allocated, not freed) pages.
    pub fn live_pages(&self) -> usize {
        self.pages.len()
    }
}

impl PageStore for MemStore {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_page(&mut self, id: PageId) -> Result<Vec<u8>, StoreError> {
        self.ops.0 += 1;
        self.pages
            .get(&id)
            .cloned()
            .ok_or_else(|| StoreError::Io(format!("page {id} not allocated")))
    }

    fn write_page(&mut self, id: PageId, data: &[u8]) -> Result<(), StoreError> {
        assert_eq!(data.len(), self.page_size);
        self.ops.1 += 1;
        self.pages.insert(id, data.to_vec());
        Ok(())
    }

    fn alloc_page(&mut self) -> Result<PageId, StoreError> {
        self.ops.2 += 1;
        let id = self.free.pop().unwrap_or_else(|| {
            let id = self.next;
            self.next += 1;
            id
        });
        self.pages.insert(id, vec![0; self.page_size]);
        Ok(id)
    }

    fn free_page(&mut self, id: PageId) -> Result<(), StoreError> {
        self.ops.3 += 1;
        if self.pages.remove(&id).is_none() {
            return Err(StoreError::Io(format!("double free of page {id}")));
        }
        self.free.push(id);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_write_read_roundtrip() {
        let mut s = MemStore::new(256);
        let id = s.alloc_page().unwrap();
        s.write_page(id, &vec![7u8; 256]).unwrap();
        assert_eq!(s.read_page(id).unwrap(), vec![7u8; 256]);
    }

    #[test]
    fn free_page_recycled() {
        let mut s = MemStore::new(64);
        let a = s.alloc_page().unwrap();
        s.free_page(a).unwrap();
        let b = s.alloc_page().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn double_free_is_error() {
        let mut s = MemStore::new(64);
        let a = s.alloc_page().unwrap();
        s.free_page(a).unwrap();
        assert!(s.free_page(a).is_err());
    }

    #[test]
    fn read_unallocated_is_error() {
        let mut s = MemStore::new(64);
        assert!(s.read_page(99).is_err());
    }
}
