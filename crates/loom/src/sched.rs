//! The cooperative scheduler: one runnable thread at a time, every
//! synchronization operation a scheduling decision, decisions replayed
//! from a prefix and recorded for depth-first backtracking.
//!
//! Model threads are real OS threads parked on one internal condvar;
//! "scheduling" a thread means setting `active` to its id and waking
//! everyone (each waiter rechecks `active == me`). All model state —
//! thread statuses, mutex holders, rwlock reader sets, condvar wait
//! queues — lives behind a single internal mutex, and the scheduler
//! recovers that mutex from poison so a panicking model thread (which
//! the engine's poison tests do on purpose) cannot wedge the check.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Resource ids are global (never reused), so an object accidentally
/// kept alive across executions cannot alias a fresh one.
static NEXT_RESOURCE: AtomicUsize = AtomicUsize::new(0);

/// Allocates a fresh model-resource id (mutex, rwlock, or condvar).
pub(crate) fn alloc_resource() -> usize {
    NEXT_RESOURCE.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler handle for the calling thread, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs (or clears) the calling thread's scheduler handle.
pub(crate) fn set_current(v: Option<(Arc<Sched>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedLock(usize),
    BlockedRead(usize),
    BlockedWrite(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Done,
}

#[derive(Clone, Debug, Default)]
struct RwState {
    writer: Option<usize>,
    readers: Vec<usize>,
}

struct State {
    threads: Vec<Status>,
    panicked: Vec<bool>,
    joined: Vec<bool>,
    active: usize,
    /// Replay prefix: decision k takes candidate `prefix[k]` (clamped).
    prefix: Vec<usize>,
    /// Recorded decisions: (choice taken, number of candidates).
    trace: Vec<(usize, usize)>,
    preemptions: usize,
    bound: usize,
    deadlock: bool,
    mutexes: BTreeMap<usize, Option<usize>>,
    rwlocks: BTreeMap<usize, RwState>,
    /// Condvar wait queues in FIFO order.
    cvs: BTreeMap<usize, Vec<usize>>,
}

pub(crate) struct Sched {
    state: StdMutex<State>,
    cv: StdCondvar,
}

impl Sched {
    pub(crate) fn new(prefix: Vec<usize>, bound: usize) -> Self {
        Self {
            state: StdMutex::new(State {
                threads: Vec::new(),
                panicked: Vec::new(),
                joined: Vec::new(),
                active: 0,
                prefix,
                trace: Vec::new(),
                preemptions: 0,
                bound,
                deadlock: false,
                mutexes: BTreeMap::new(),
                rwlocks: BTreeMap::new(),
                cvs: BTreeMap::new(),
            }),
            cv: StdCondvar::new(),
        }
    }

    /// The internal lock, recovered from poison (a model thread that
    /// panics mid-operation must not wedge the scheduler).
    fn slock(&self) -> StdMutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn swait<'a>(&self, g: StdMutexGuard<'a, State>) -> StdMutexGuard<'a, State> {
        match self.cv.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Registers a new model thread (Ready, not active until chosen).
    pub(crate) fn register(&self) -> usize {
        let mut st = self.slock();
        st.threads.push(Status::Ready);
        st.panicked.push(false);
        st.joined.push(false);
        st.threads.len() - 1
    }

    /// Picks the next active thread among the Ready ones. `me_ready`
    /// says the caller could itself continue (choosing someone else is
    /// then a preemption, subject to the bound). With no candidate and
    /// live threads remaining, flags a deadlock.
    fn pick_next(&self, st: &mut State, me: usize, me_ready: bool) {
        let mut candidates: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if me_ready && st.preemptions >= st.bound && candidates.contains(&me) {
            candidates = vec![me];
        }
        if candidates.is_empty() {
            if !st.threads.iter().all(|s| *s == Status::Done) {
                st.deadlock = true;
            }
            self.cv.notify_all();
            return;
        }
        let k = st.trace.len();
        let choice = if k < st.prefix.len() {
            st.prefix[k].min(candidates.len() - 1)
        } else {
            0
        };
        st.trace.push((choice, candidates.len()));
        let chosen = candidates[choice];
        if me_ready && chosen != me {
            st.preemptions += 1;
        }
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Parks until this thread is both Ready and chosen. Panics (after
    /// releasing the scheduler lock) if a deadlock was flagged — unless
    /// the caller is already unwinding (a guard being released during a
    /// deadlock teardown must not double-panic into an abort); such
    /// callers proceed without exclusivity, which is safe because the
    /// underlying std primitives still serialize them and the execution
    /// is already condemned.
    fn wait_turn<'a>(
        &self,
        mut st: StdMutexGuard<'a, State>,
        me: usize,
    ) -> StdMutexGuard<'a, State> {
        loop {
            if st.deadlock {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                panic!("loom: deadlock (thread {me} unblockable)");
            }
            if st.active == me && st.threads[me] == Status::Ready {
                return st;
            }
            st = self.swait(st);
        }
    }

    /// Parks a freshly spawned thread until the scheduler first picks
    /// it (the spawner keeps the schedule until its next decision).
    pub(crate) fn first_turn(&self, me: usize) {
        let st = self.slock();
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// A plain scheduling point: the caller stays runnable and another
    /// thread may be chosen (a preemption).
    pub(crate) fn yield_now(&self, me: usize) {
        let mut st = self.slock();
        self.pick_next(&mut st, me, true);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Blocks until the model mutex `lid` is free and owned by `me`.
    pub(crate) fn acquire_mutex(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        self.pick_next(&mut st, me, true);
        st = self.wait_turn(st, me);
        loop {
            let holder = st.mutexes.entry(lid).or_insert(None);
            if holder.is_none() {
                *holder = Some(me);
                return;
            }
            st.threads[me] = Status::BlockedLock(lid);
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
        }
    }

    /// Releases model mutex `lid`, waking its blocked acquirers (they
    /// re-contend under the next decisions).
    pub(crate) fn release_mutex(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        st.mutexes.insert(lid, None);
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedLock(lid) {
                *s = Status::Ready;
            }
        }
        self.pick_next(&mut st, me, true);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Blocks until rwlock `lid` admits a shared reader.
    pub(crate) fn acquire_read(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        self.pick_next(&mut st, me, true);
        st = self.wait_turn(st, me);
        loop {
            let rw = st.rwlocks.entry(lid).or_default();
            if rw.writer.is_none() {
                rw.readers.push(me);
                return;
            }
            st.threads[me] = Status::BlockedRead(lid);
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
        }
    }

    /// Blocks until rwlock `lid` admits the exclusive writer.
    pub(crate) fn acquire_write(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        self.pick_next(&mut st, me, true);
        st = self.wait_turn(st, me);
        loop {
            let rw = st.rwlocks.entry(lid).or_default();
            if rw.writer.is_none() && rw.readers.is_empty() {
                rw.writer = Some(me);
                return;
            }
            st.threads[me] = Status::BlockedWrite(lid);
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
        }
    }

    /// Drops a shared-reader slot on rwlock `lid`.
    pub(crate) fn release_read(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        let rw = st.rwlocks.entry(lid).or_default();
        rw.readers.retain(|r| *r != me);
        let empty = rw.readers.is_empty();
        if empty {
            for s in st.threads.iter_mut() {
                if *s == Status::BlockedWrite(lid) {
                    *s = Status::Ready;
                }
            }
        }
        self.pick_next(&mut st, me, true);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Drops the exclusive-writer slot on rwlock `lid`.
    pub(crate) fn release_write(&self, me: usize, lid: usize) {
        let mut st = self.slock();
        st.rwlocks.entry(lid).or_default().writer = None;
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedWrite(lid) || *s == Status::BlockedRead(lid) {
                *s = Status::Ready;
            }
        }
        self.pick_next(&mut st, me, true);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Atomically releases mutex `lid` and joins condvar `cvid`'s wait
    /// queue; returns once notified *and* scheduled. The caller
    /// re-acquires the mutex itself (a fresh decision point).
    pub(crate) fn cv_wait(&self, me: usize, cvid: usize, lid: usize) {
        let mut st = self.slock();
        st.mutexes.insert(lid, None);
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedLock(lid) {
                *s = Status::Ready;
            }
        }
        st.cvs.entry(cvid).or_default().push(me);
        st.threads[me] = Status::BlockedCv(cvid);
        self.pick_next(&mut st, me, false);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Wakes one (FIFO) or all waiters of condvar `cvid`.
    pub(crate) fn notify(&self, me: usize, cvid: usize, all: bool) {
        let mut st = self.slock();
        let queue = st.cvs.entry(cvid).or_default();
        let woken: Vec<usize> = if all {
            std::mem::take(queue)
        } else if queue.is_empty() {
            Vec::new()
        } else {
            vec![queue.remove(0)]
        };
        for t in woken {
            st.threads[t] = Status::Ready;
        }
        self.pick_next(&mut st, me, true);
        let st = self.wait_turn(st, me);
        drop(st);
    }

    /// Blocks until thread `target` finishes (model-level half of join;
    /// the real `JoinHandle::join` then returns immediately).
    pub(crate) fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.slock();
        st.joined[target] = true;
        if st.threads[target] != Status::Done {
            st.threads[me] = Status::BlockedJoin(target);
            self.pick_next(&mut st, me, false);
            st = self.wait_turn(st, me);
        } else {
            self.pick_next(&mut st, me, true);
            st = self.wait_turn(st, me);
        }
        drop(st);
    }

    /// Marks `me` finished (normally or by panic), wakes joiners, and
    /// hands the schedule to the next thread.
    pub(crate) fn finish(&self, me: usize, panicked: bool) {
        let mut st = self.slock();
        st.threads[me] = Status::Done;
        st.panicked[me] = panicked;
        for s in st.threads.iter_mut() {
            if *s == Status::BlockedJoin(me) {
                *s = Status::Ready;
            }
        }
        self.pick_next(&mut st, me, false);
        drop(st);
    }

    /// Controller side: waits for every model thread to finish; true if
    /// the execution deadlocked. Threads that deadlocked panic
    /// themselves awake, so this terminates either way.
    pub(crate) fn wait_all_done(&self) -> bool {
        let mut st = self.slock();
        while !st.threads.iter().all(|s| *s == Status::Done) {
            st = self.swait(st);
        }
        st.deadlock
    }

    /// True if a non-root thread panicked and nobody joined it (its
    /// failure would otherwise vanish).
    pub(crate) fn unjoined_panic(&self) -> bool {
        let st = self.slock();
        st.panicked
            .iter()
            .zip(st.joined.iter())
            .skip(1)
            .any(|(p, j)| *p && !*j)
    }

    /// The recorded decision trace of the finished execution.
    pub(crate) fn take_trace(&self) -> Vec<(usize, usize)> {
        std::mem::take(&mut self.slock().trace)
    }
}

/// A scheduling point for the calling thread, if it is a model thread
/// (no-op otherwise — the shims degrade to plain std behaviour outside
/// a model).
pub(crate) fn yield_point() {
    if let Some((s, me)) = current() {
        s.yield_now(me);
    }
}
