//! Drop-in `std::thread` shims: spawned threads register with the
//! calling thread's model scheduler (when one is running) and park
//! until chosen; `join` blocks at the model level first, so the real
//! `JoinHandle::join` returns immediately afterwards. Outside a model
//! everything forwards straight to std.

use crate::sched;
use std::io;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

pub use std::thread::{current, Result, ThreadId};

/// Thread factory mirroring `std::thread::Builder`.
#[derive(Debug)]
pub struct Builder {
    inner: std::thread::Builder,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self {
            inner: std::thread::Builder::new(),
        }
    }

    /// Names the thread-to-be.
    pub fn name(self, name: String) -> Self {
        Self {
            inner: self.inner.name(name),
        }
    }

    /// Spawns the thread. Under a model, the child is registered with
    /// the scheduler and parks until first chosen; the spawn itself is
    /// a scheduling point for the parent.
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((s, me)) = sched::current() {
            let tid = s.register();
            let s2 = Arc::clone(&s);
            let real = self.inner.spawn(move || {
                sched::set_current(Some((Arc::clone(&s2), tid)));
                s2.first_turn(tid);
                let r = catch_unwind(AssertUnwindSafe(f));
                s2.finish(tid, r.is_err());
                match r {
                    Ok(v) => v,
                    Err(p) => resume_unwind(p),
                }
            })?;
            s.yield_now(me);
            Ok(JoinHandle {
                real,
                tid: Some(tid),
            })
        } else {
            Ok(JoinHandle {
                real: self.inner.spawn(f)?,
                tid: None,
            })
        }
    }
}

/// Spawns a thread with default settings — see [`Builder::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

/// Owned permission to join a thread, mirroring
/// `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    real: std::thread::JoinHandle<T>,
    tid: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, yielding its result (`Err` with
    /// the panic payload if it panicked). Under a model the wait is a
    /// scheduling point that blocks at the model level.
    pub fn join(self) -> Result<T> {
        if let Some(tid) = self.tid {
            if let Some((s, me)) = sched::current() {
                s.join_wait(me, tid);
            }
        }
        self.real.join()
    }
}

/// Sleeps under std; under a model, a plain scheduling point (model
/// time does not advance — a sleep-based schedule is just one more
/// interleaving to explore).
pub fn sleep(dur: Duration) {
    if sched::current().is_some() {
        sched::yield_point();
    } else {
        std::thread::sleep(dur);
    }
}

/// Cooperatively gives up the current timeslice: a scheduling point
/// under a model, `std::thread::yield_now` otherwise.
pub fn yield_now() {
    if sched::current().is_some() {
        sched::yield_point();
    } else {
        std::thread::yield_now();
    }
}
