//! A miniature model checker for the workspace's threaded engine,
//! API-compatible with the subset of the `loom` crate the engine needs
//! (the build environment has no crates.io access, so it is grown
//! in-tree).
//!
//! # What it checks
//!
//! [`model`] runs a closure many times, each time under a different
//! thread interleaving. The closure builds its threads and locks from
//! this crate's shims ([`sync`], [`thread`]); every lock acquisition,
//! release, condvar operation, atomic access, spawn, and join is a
//! *scheduling point* where a cooperative scheduler picks which thread
//! runs next. Exactly one thread is ever runnable: real OS threads are
//! parked on a scheduler condvar until chosen, so an execution is a
//! deterministic sequence of scheduling decisions. The decision
//! sequences are enumerated depth-first with a preemption bound
//! ([`Model::preemption_bound`]) — the standard context-bounding result
//! is that most real concurrency bugs manifest within two preemptions —
//! and a schedule cap as a backstop.
//!
//! A schedule **fails** if any thread panics (assertion failures
//! propagate out of [`model`]) or if the scheduler finds every live
//! thread blocked (deadlock — reported with a panic rather than a
//! hang).
//!
//! # What it does not check
//!
//! Interleavings only: weak-memory reorderings are *not* modeled —
//! atomics execute with the host's (sequentially consistent under the
//! single-runnable-thread regime) semantics regardless of the
//! `Ordering` argument. The `cedar-lint` `condvar-discipline` rule
//! statically checks that publish atomics carry `Release`/`Acquire`
//! orderings instead.
//!
//! Poison semantics come for free: the shims wrap the real `std::sync`
//! primitives, so a thread that panics while holding a guard poisons
//! the underlying lock exactly as in production, and the engine's
//! poison-recovery paths run unmodified.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod sched;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Exploration bounds for [`Model::check`].
#[derive(Clone, Copy, Debug)]
pub struct Model {
    /// Maximum forced preemptions per execution (a switch away from a
    /// thread that could have kept running). 2 catches the classic
    /// bugs; raise it for a deeper (much larger) search.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; hitting it stops with a note on
    /// stderr rather than failing.
    pub max_schedules: usize,
}

impl Default for Model {
    fn default() -> Self {
        Self {
            preemption_bound: 2,
            max_schedules: 10_000,
        }
    }
}

impl Model {
    /// Explores interleavings of `f` until the decision tree is
    /// exhausted or [`Model::max_schedules`] is hit. Panics (with the
    /// failing thread's payload) on the first schedule where a thread
    /// panics or the threads deadlock.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            let s = Arc::new(sched::Sched::new(prefix.clone(), self.preemption_bound));
            let root = s.register();
            let (s2, fr) = (Arc::clone(&s), Arc::clone(&f));
            let handle = std::thread::Builder::new()
                .name("loom-root".into())
                .spawn(move || {
                    sched::set_current(Some((Arc::clone(&s2), root)));
                    let r = catch_unwind(AssertUnwindSafe(|| fr()));
                    s2.finish(root, r.is_err());
                    if let Err(p) = r {
                        resume_unwind(p);
                    }
                })
                .expect("loom: cannot spawn root thread");
            let deadlocked = s.wait_all_done();
            let root_result = handle.join();
            if deadlocked {
                panic!(
                    "loom: deadlock detected (schedule {executions}): every live thread is blocked"
                );
            }
            if let Err(p) = root_result {
                eprintln!("loom: schedule {executions} failed");
                resume_unwind(p);
            }
            if s.unjoined_panic() {
                panic!(
                    "loom: a spawned thread panicked and was never joined (schedule {executions})"
                );
            }
            let trace = s.take_trace();
            // Depth-first backtrack: rerun with the deepest decision
            // that still has an unexplored alternative advanced by one.
            prefix = trace.iter().map(|&(choice, _)| choice).collect();
            let mut k = trace.len();
            loop {
                if k == 0 {
                    return; // Tree exhausted: all schedules pass.
                }
                k -= 1;
                let (choice, candidates) = trace[k];
                if choice + 1 < candidates {
                    prefix.truncate(k);
                    prefix.push(choice + 1);
                    break;
                }
            }
            if executions >= self.max_schedules {
                eprintln!(
                    "loom: stopping after {executions} schedules (cap reached; \
                     exploration incomplete)"
                );
                return;
            }
        }
    }
}

/// Explores interleavings of `f` with the default bounds — see
/// [`Model::check`].
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Model::default().check(f)
}
