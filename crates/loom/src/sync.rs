//! Drop-in `std::sync` shims: the same types and signatures the engine
//! already uses, but every acquisition, release, condvar operation, and
//! atomic access is a scheduling point when the calling thread belongs
//! to a running model.
//!
//! Each primitive wraps its real `std::sync` counterpart, so data is
//! still protected by a real lock and — crucially — poison semantics
//! are inherited rather than simulated: a model thread that panics
//! while holding a guard poisons the underlying std mutex, and the
//! engine's poison-recovery paths run unmodified. Outside a model
//! (TLS has no scheduler), every shim degrades to plain std behaviour.

use crate::sched;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::OnceLock;
use std::sync::RwLockWriteGuard as StdWriteGuard;
use std::sync::{Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard as StdReadGuard};

pub use std::sync::{Arc, LockResult, PoisonError};

/// Model resource ids are allocated lazily on first contention-relevant
/// use, so constructing a primitive stays `const`-friendly and cheap.
fn lazy_id(slot: &OnceLock<usize>) -> usize {
    *slot.get_or_init(sched::alloc_resource)
}

// ---------------------------------------------------------------------------
// Mutex

/// A mutual-exclusion lock whose acquisitions are scheduling points.
pub struct Mutex<T> {
    id: OnceLock<usize>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(t: T) -> Self {
        Self {
            id: OnceLock::new(),
            inner: StdMutex::new(t),
        }
    }

    fn id(&self) -> usize {
        lazy_id(&self.id)
    }

    /// Acquires the lock, blocking the calling model thread until the
    /// scheduler can grant it. Returns `Err` wrapping a live guard when
    /// another thread panicked while holding the lock, exactly as std.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((s, me)) = sched::current() {
            s.acquire_mutex(me, self.id());
        }
        wrap_guard(self, self.inner.lock())
    }

    /// Consumes the mutex, returning its data (poison surfaced as std).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner
            .into_inner()
            .map_err(|p| PoisonError::new(p.into_inner()))
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

fn wrap_guard<'a, T>(
    lock: &'a Mutex<T>,
    r: LockResult<StdMutexGuard<'a, T>>,
) -> LockResult<MutexGuard<'a, T>> {
    match r {
        Ok(g) => Ok(MutexGuard {
            lock,
            inner: Some(g),
            defused: false,
        }),
        Err(p) => Err(PoisonError::new(MutexGuard {
            lock,
            inner: Some(p.into_inner()),
            defused: false,
        })),
    }
}

/// RAII guard for [`Mutex`]; dropping it is a scheduling point.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Set by [`Condvar::wait`], which releases the lock itself.
    defused: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("defused guard dereferenced")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("defused guard dereferenced")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.defused {
            return;
        }
        // Release the real lock first (poisoning it if unwinding), then
        // tell the model — by the time another thread is scheduled, the
        // std mutex is free for it.
        drop(self.inner.take());
        if let Some((s, me)) = sched::current() {
            s.release_mutex(me, self.lock.id());
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(g) => fmt::Debug::fmt(&**g, f),
            None => f.write_str("<defused>"),
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar

/// A condition variable whose waits and notifies are scheduling points.
///
/// Model waits park on the scheduler (FIFO queue per condvar), not on
/// the real `std::sync::Condvar`, so lost-wakeup and wake-ordering
/// interleavings are explored deterministically.
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    fn id(&self) -> usize {
        lazy_id(&self.id)
    }

    /// Atomically releases `guard`'s mutex and waits to be notified,
    /// then re-acquires the mutex. Poison is reported exactly as std:
    /// `Err` wraps a live guard when the mutex was poisoned.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        if let Some((s, me)) = sched::current() {
            guard.defused = true;
            drop(guard.inner.take()); // free the real mutex
            drop(guard);
            s.cv_wait(me, self.id(), lock.id());
            lock.lock()
        } else {
            guard.defused = true;
            let std_guard = guard.inner.take().expect("defused guard in wait");
            drop(guard);
            wrap_guard(lock, self.inner.wait(std_guard))
        }
    }

    /// Wakes one waiter (the longest-parked one, under a model).
    pub fn notify_one(&self) {
        if let Some((s, me)) = sched::current() {
            s.notify(me, self.id(), false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((s, me)) = sched::current() {
            s.notify(me, self.id(), true);
        } else {
            self.inner.notify_all();
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock

/// A reader-writer lock whose acquisitions are scheduling points.
pub struct RwLock<T> {
    id: OnceLock<usize>,
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked reader-writer lock.
    pub fn new(t: T) -> Self {
        Self {
            id: OnceLock::new(),
            inner: StdRwLock::new(t),
        }
    }

    fn id(&self) -> usize {
        lazy_id(&self.id)
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        if let Some((s, me)) = sched::current() {
            s.acquire_read(me, self.id());
        }
        match self.inner.read() {
            Ok(g) => Ok(RwLockReadGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(RwLockReadGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        if let Some((s, me)) = sched::current() {
            s.acquire_write(me, self.id());
        }
        match self.inner.write() {
            Ok(g) => Ok(RwLockWriteGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(RwLockWriteGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdReadGuard<'a, T>>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("read guard")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((s, me)) = sched::current() {
            s.release_read(me, self.lock.id());
        }
    }
}

/// Exclusive RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<StdWriteGuard<'a, T>>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("write guard")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("write guard")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((s, me)) = sched::current() {
            s.release_write(me, self.lock.id());
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics

/// Model-aware atomic integers and flags.
///
/// Each operation is a scheduling point, so interleavings around the
/// engine's epoch counter and stats are explored. Orderings are
/// accepted (and forwarded to the host atomic) but weak-memory
/// reordering is *not* modeled — the `condvar-discipline` lint checks
/// publish orderings statically instead.
pub mod atomic {
    use crate::sched;

    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_shim {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-aware wrapper over the std atomic of the same name:
            /// every operation is a scheduling point.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub fn new(v: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$std::new(v),
                    }
                }

                /// Loads the value.
                pub fn load(&self, order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.load(order)
                }

                /// Stores a value.
                pub fn store(&self, v: $ty, order: Ordering) {
                    sched::yield_point();
                    self.inner.store(v, order);
                }

                /// Swaps in a value, returning the previous one.
                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.swap(v, order)
                }
            }
        };
    }

    atomic_shim!(AtomicU64, AtomicU64, u64);
    atomic_shim!(AtomicUsize, AtomicUsize, usize);
    atomic_shim!(AtomicBool, AtomicBool, bool);

    macro_rules! atomic_arith {
        ($name:ident, $ty:ty) => {
            impl $name {
                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.fetch_add(v, order)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.fetch_sub(v, order)
                }
            }
        };
    }

    atomic_arith!(AtomicU64, u64);
    atomic_arith!(AtomicUsize, usize);
}
