//! Self-tests for the miniature model checker: it must catch the
//! classic bugs (lost update, lock-order deadlock), pass correct code,
//! explore condvar hand-offs, and preserve std poison semantics.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn finds_lost_update_in_racy_increment() {
    // Non-atomic read-modify-write: two threads load, then store
    // load+1. The model must find the interleaving where both load 0
    // and the final value is 1.
    let r = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    loom::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    assert!(r.is_err(), "model missed the lost-update race");
}

#[test]
fn mutex_protected_increment_is_exact() {
    // The same counter under a mutex: every interleaving must total 2.
    loom::model(|| {
        let c = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&c);
                loom::thread::spawn(move || {
                    let mut g = c.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*c.lock().unwrap(), 2);
    });
}

#[test]
fn detects_lock_order_deadlock() {
    // a-then-b in one thread, b-then-a in the other: the model must
    // find the schedule where each holds one and blocks on the other.
    let r = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = loom::thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = h.join();
        });
    }));
    let msg = r
        .err()
        .map(|p| {
            p.downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
        .expect("model missed the deadlock");
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn condvar_handoff_completes_in_every_schedule() {
    // Producer flips a flag under the mutex and notifies; consumer
    // waits in a predicate loop. Must terminate whether the notify
    // lands before or after the consumer first checks.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = loom::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        h.join().unwrap();
    });
}

#[test]
fn panic_while_holding_guard_poisons_the_lock() {
    // A thread that dies holding the guard must leave the mutex
    // poisoned — the engine's plock recovery depends on this.
    loom::model(|| {
        let m = Arc::new(Mutex::new(7u64));
        let m2 = Arc::clone(&m);
        let h = loom::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("die holding the lock");
        });
        assert!(h.join().is_err());
        match m.lock() {
            Ok(_) => panic!("lock should be poisoned"),
            Err(p) => assert_eq!(*p.into_inner(), 7),
        };
    });
}

#[test]
fn unjoined_panicked_thread_fails_the_model() {
    // A spawned thread that panics and is never joined must not pass
    // silently.
    let r = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let h = loom::thread::spawn(|| panic!("dropped on the floor"));
            // Forget the handle without joining.
            std::mem::forget(h);
        });
    }));
    assert!(r.is_err(), "unjoined panic went unnoticed");
}
