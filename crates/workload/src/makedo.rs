//! A MakeDo-like compile workload.
//!
//! "The MakeDo program used as a benchmark is typical of clients that
//! intensively use the file system" (§7), and "Bulk updates are often
//! done to the file name table \[Schm82\]. These updates are normally
//! localized to a subdirectory" (§5.4). The workload below captures that
//! shape: list the package directory, read the sources and their cached
//! interface files, compile (create object files and a new version of
//! each output, deleting the stale one), and finish with a bulk
//! property touch over the whole subdirectory — the hot-spot pattern
//! group commit wins on.

use crate::sizes::SizeDistribution;
use crate::steps::Step;

/// Parameters of the MakeDo-like workload.
#[derive(Clone, Copy, Debug)]
pub struct MakeDoParams {
    /// Source files in the package.
    pub sources: usize,
    /// Cached remote interface files consulted per compile.
    pub interfaces: usize,
    /// Rounds of compilation (each round touches every source).
    pub rounds: usize,
    /// RNG seed for file sizes.
    pub seed: u64,
}

impl Default for MakeDoParams {
    fn default() -> Self {
        Self {
            sources: 25,
            interfaces: 40,
            rounds: 2,
            seed: 1987,
        }
    }
}

/// Builds the workload. The returned steps are split into a *setup*
/// phase (populating the package — run before measurement starts) and
/// the *measured* compile phase.
pub fn makedo_workload(params: MakeDoParams) -> (Vec<Step>, Vec<Step>) {
    let mut sizes = SizeDistribution::new(params.seed);
    let mut setup = Vec::new();
    let mut measured = Vec::new();

    // Setup: the package sources and the interface cache already exist.
    for i in 0..params.sources {
        setup.push(Step::Create {
            name: format!("pkg/Source{i:03}.mesa"),
            bytes: sizes.sample(),
        });
    }
    for i in 0..params.interfaces {
        setup.push(Step::Create {
            name: format!("cache/Interface{i:03}.bcd"),
            bytes: sizes.sample().min(8_000),
        });
    }
    // A previous build's outputs, to be superseded.
    for i in 0..params.sources {
        setup.push(Step::Create {
            name: format!("pkg/Source{i:03}.bcd"),
            bytes: sizes.sample().min(20_000),
        });
    }

    // Measured: the compile.
    for _round in 0..params.rounds {
        measured.push(Step::List {
            prefix: "pkg/".into(),
        });
        for i in 0..params.sources {
            // Read the source and a few interfaces (two read fully, three
            // more merely consulted — the last-used-time touch of §5.4).
            measured.push(Step::Read {
                name: format!("pkg/Source{i:03}.mesa"),
            });
            for j in 0..2 {
                measured.push(Step::Read {
                    name: format!("cache/Interface{:03}.bcd", (i * 2 + j) % params.interfaces),
                });
            }
            for j in 0..3 {
                measured.push(Step::Touch {
                    name: format!("cache/Interface{:03}.bcd", (i * 3 + j) % params.interfaces),
                });
            }
            // Replace the output: delete stale, create fresh.
            measured.push(Step::Delete {
                name: format!("pkg/Source{i:03}.bcd"),
            });
            measured.push(Step::Create {
                name: format!("pkg/Source{i:03}.bcd"),
                bytes: sizes.sample().min(20_000),
            });
        }
        // The bulk property update over the subdirectory (§5.4).
        for i in 0..params.sources {
            measured.push(Step::Touch {
                name: format!("pkg/Source{i:03}.bcd"),
            });
        }
        measured.push(Step::List {
            prefix: "pkg/".into(),
        });
    }
    (setup, measured)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let (s1, m1) = makedo_workload(MakeDoParams::default());
        let (s2, m2) = makedo_workload(MakeDoParams::default());
        assert_eq!(s1, s2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn workload_has_the_right_shape() {
        let p = MakeDoParams::default();
        let (setup, measured) = makedo_workload(p);
        // Setup creates sources + interfaces + old outputs.
        let setup_creates = setup
            .iter()
            .filter(|s| matches!(s, Step::Create { .. }))
            .count();
        assert_eq!(setup_creates, p.sources * 2 + p.interfaces);
        // Measured: every round deletes and recreates every output.
        let deletes = measured
            .iter()
            .filter(|s| matches!(s, Step::Delete { .. }))
            .count();
        assert_eq!(deletes, p.sources * p.rounds);
        // And performs the bulk touch.
        let touches = measured
            .iter()
            .filter(|s| matches!(s, Step::Touch { .. }))
            .count();
        assert_eq!(touches, p.rounds * (p.sources * 3 + p.sources));
    }

    #[test]
    fn every_measured_name_exists_when_needed() {
        // Replaying against the in-memory model must not hit a missing
        // file.
        use crate::memfs::MemFs;
        use crate::steps::run;
        let (setup, measured) = makedo_workload(MakeDoParams::default());
        let m = cedar_vol::fs::SyncFs::new(MemFs::default());
        run(&setup, &m).unwrap();
        run(&measured, &m).unwrap();
    }
}
