//! Million-file volume synthesis for the scale benchmarks.
//!
//! The scavenge-scale bench needs volumes holding 10^4..10^6 files whose
//! *count* is the experimental variable — content is irrelevant, but
//! synthesis time is not. This module provides deterministic plans built
//! for that: fixed-width zero-padded names (creation order equals key
//! order, so the name-table B-tree grows along its right edge instead of
//! splitting randomly) and a replay fast path that reuses one content
//! buffer instead of regenerating per-file data a million times.

use crate::steps::Step;
use cedar_vol::fs::{CedarFsError, FsBackend};

/// Name of file `i` under `prefix` — fixed width, so lexicographic
/// order equals creation order up to 10^8 files.
pub fn scale_name(prefix: &str, i: usize) -> String {
    format!("{prefix}/s{i:08}")
}

/// A deterministic plan creating `files` files of `bytes` each.
///
/// The plan is plain [`Step`] data, replayable through the usual
/// harness; [`populate_scale`] applies the same population directly
/// when synthesis speed matters more than step bookkeeping.
pub fn scale_plan(prefix: &str, files: usize, bytes: u64) -> Vec<Step> {
    (0..files)
        .map(|i| Step::Create {
            name: scale_name(prefix, i),
            bytes,
        })
        .collect()
}

/// Creates `files` files of `bytes` each directly on a backend — the
/// fast path behind [`scale_plan`]: same names, same sizes, but one
/// shared content buffer (all-zero) instead of per-file generation.
pub fn populate_scale(
    fs: &mut dyn FsBackend,
    prefix: &str,
    files: usize,
    bytes: usize,
) -> Result<(), CedarFsError> {
    let data = vec![0u8; bytes];
    for i in 0..files {
        fs.create(&scale_name(prefix, i), &data)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use cedar_vol::fs::FsBackend;

    #[test]
    fn names_sort_in_creation_order() {
        let names: Vec<_> = (0..1500).map(|i| scale_name("vol", i)).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn plan_matches_direct_population() {
        let plan = scale_plan("p", 25, 512);
        assert_eq!(plan.len(), 25);
        let mut fs = MemFs::default();
        populate_scale(&mut fs, "p", 25, 512).unwrap();
        for step in &plan {
            match step {
                Step::Create { name, bytes } => {
                    let info = fs.open(name).expect("populated file missing");
                    assert_eq!(info.bytes, *bytes);
                }
                other => panic!("unexpected step {other:?}"),
            }
        }
    }
}
