//! The paper's file-size distribution.
//!
//! §5.6: "A large fraction of files are small. A measurement of one
//! system shows 50% of files are less that 4,000 bytes but use only 8% of
//! the sectors." The sampler below reproduces both numbers: half the
//! files are uniform in 1..4000 bytes, and the other half follow a
//! long-tailed distribution calibrated so the small half holds ~8 % of
//! the total sectors.

use crate::rng::WorkloadRng;

/// Sector size used for the sector-count arithmetic.
const SECTOR: u64 = cedar_disk::SECTOR_BYTES_U64;

/// A two-population file-size sampler.
#[derive(Clone, Debug)]
pub struct SizeDistribution {
    rng: WorkloadRng,
}

impl SizeDistribution {
    /// Creates a sampler with a fixed seed (deterministic workloads).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: WorkloadRng::new(seed),
        }
    }

    /// Draws one file size in bytes.
    pub fn sample(&mut self) -> u64 {
        if self.rng.chance(0.5) {
            // Small file: under 4000 bytes.
            self.rng.range(1, 4000)
        } else {
            // Large file: log-uniform between 4 KB and ~80 KB, mean
            // ≈ 25 KB, so the small half ends up holding ≈ 8 % of the
            // sectors.
            let exp = self.rng.range_f64(12.0, 16.3);
            exp.exp2() as u64
        }
    }

    /// Draws `n` sizes.
    pub fn sample_many(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample()).collect()
    }
}

/// Fraction of files under 4000 bytes and the fraction of total sectors
/// they occupy — the paper's (0.50, 0.08) measurement.
pub fn small_file_shares(sizes: &[u64]) -> (f64, f64) {
    let sectors = |b: u64| b.div_ceil(SECTOR);
    let small: Vec<u64> = sizes.iter().copied().filter(|&b| b < 4000).collect();
    let small_sectors: u64 = small.iter().map(|&b| sectors(b)).sum();
    let total_sectors: u64 = sizes.iter().map(|&b| sectors(b)).sum();
    (
        small.len() as f64 / sizes.len() as f64,
        small_sectors as f64 / total_sectors as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = SizeDistribution::new(7).sample_many(100);
        let b = SizeDistribution::new(7).sample_many(100);
        assert_eq!(a, b);
        let c = SizeDistribution::new(8).sample_many(100);
        assert_ne!(a, c);
    }

    #[test]
    fn reproduces_the_papers_measurement() {
        let sizes = SizeDistribution::new(42).sample_many(20_000);
        let (count_share, sector_share) = small_file_shares(&sizes);
        assert!(
            (0.46..0.54).contains(&count_share),
            "small-file count share {count_share:.3} (paper: 0.50)"
        );
        assert!(
            (0.05..0.12).contains(&sector_share),
            "small-file sector share {sector_share:.3} (paper: 0.08)"
        );
    }

    #[test]
    fn sizes_are_positive_and_bounded() {
        let sizes = SizeDistribution::new(1).sample_many(1000);
        assert!(sizes.iter().all(|&b| b >= 1));
        assert!(sizes.iter().all(|&b| b < 1 << 20), "under a megabyte");
    }
}
