//! Workload generators for the Cedar FS reproduction.
//!
//! Everything here is pure data: a workload is a vector of
//! [`steps::Step`]s that the benchmark harness replays against any of the
//! three file systems through the [`steps::Workbench`] adapter trait.
//! Generators are seeded and fully deterministic.

pub mod makedo;
pub mod rng;
pub mod sizes;
pub mod steps;

pub use makedo::makedo_workload;
pub use sizes::SizeDistribution;
pub use steps::{Step, Workbench, WorkloadStats};
