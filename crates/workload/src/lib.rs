//! Workload generators for the Cedar FS reproduction.
//!
//! Everything here is pure data: a workload is a vector of
//! [`steps::Step`]s that the benchmark harness replays against any
//! backend through the `cedar_vol::fs::FileSystem` trait. Generators
//! are seeded and fully deterministic. [`multi`] stamps out N
//! independent think-timed client scripts for the group-commit
//! scheduler; [`memfs::MemFs`] is the in-memory model conformance
//! tests compare real backends against.

#![deny(unsafe_code)]

pub mod makedo;
pub mod memfs;
pub mod multi;
pub mod population;
pub mod rng;
pub mod sizes;
pub mod steps;

pub use makedo::{makedo_workload, MakeDoParams};
pub use memfs::MemFs;
pub use multi::{multi_client_workload, ClientScript, MultiClientParams, TimedStep};
pub use population::{populate_scale, scale_name, scale_plan};
pub use sizes::SizeDistribution;
pub use steps::{Step, WorkloadStats};
