//! A small deterministic PRNG for workload generation.
//!
//! splitmix64 — statistically plenty for sampling file sizes and think
//! times, fully reproducible from a `u64` seed, and dependency-free (the
//! build environment has no crates.io access, so `rand` is out).

/// Seeded splitmix64 generator.
#[derive(Clone, Debug)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + ((self.next_u64() as u128 * (hi - lo) as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = WorkloadRng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = WorkloadRng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = WorkloadRng::new(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn range_respects_bounds_and_chance_is_calibrated() {
        let mut r = WorkloadRng::new(3);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        let heads = (0..10_000).filter(|_| r.chance(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }
}
