//! Workload steps and the adapter trait the harness drives file systems
//! through.

/// One step of a replayable workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Create a file of the given size (content is generated
    /// deterministically from the name).
    Create {
        /// File name (path-like).
        name: String,
        /// Size in bytes.
        bytes: u64,
    },
    /// Open a file and read all of it.
    Read {
        /// File name.
        name: String,
    },
    /// Open a file without reading (property access / cache touch).
    Touch {
        /// File name.
        name: String,
    },
    /// Delete a file.
    Delete {
        /// File name.
        name: String,
    },
    /// List a directory (by name prefix) with properties.
    List {
        /// Directory prefix.
        prefix: String,
    },
}

/// The adapter each file system implements so one workload replays
/// against all three (the adapters live in the bench crate).
pub trait Workbench {
    /// Creates a file.
    fn create(&mut self, name: &str, data: &[u8]) -> Result<(), String>;
    /// Opens and reads a file fully.
    fn read(&mut self, name: &str) -> Result<Vec<u8>, String>;
    /// Opens a file without reading its data.
    fn touch(&mut self, name: &str) -> Result<(), String>;
    /// Deletes a file.
    fn delete(&mut self, name: &str) -> Result<(), String>;
    /// Lists a directory with properties, returning the entry count.
    fn list(&mut self, prefix: &str) -> Result<usize, String>;
}

/// Aggregate results of a workload run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Steps executed.
    pub steps: u64,
    /// Bytes written via creates.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Entries returned by lists.
    pub listed: u64,
}

/// Deterministic file content derived from the name (verifiable on read).
pub fn content_for(name: &str, bytes: u64) -> Vec<u8> {
    let seed = name
        .bytes()
        .fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
    (0..bytes)
        .map(|i| (seed.wrapping_add(i).wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
        .collect()
}

/// Replays a workload against a file system.
pub fn run(steps: &[Step], bench: &mut dyn Workbench) -> Result<WorkloadStats, String> {
    let mut stats = WorkloadStats::default();
    for step in steps {
        stats.steps += 1;
        match step {
            Step::Create { name, bytes } => {
                let data = content_for(name, *bytes);
                bench.create(name, &data)?;
                stats.bytes_written += bytes;
            }
            Step::Read { name } => {
                stats.bytes_read += bench.read(name)?.len() as u64;
            }
            Step::Touch { name } => bench.touch(name)?,
            Step::Delete { name } => bench.delete(name)?,
            Step::List { prefix } => {
                stats.listed += bench.list(prefix)? as u64;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A trivial in-memory workbench for testing the replay loop.
    #[derive(Default)]
    struct MemBench {
        files: HashMap<String, Vec<u8>>,
    }

    impl Workbench for MemBench {
        fn create(&mut self, name: &str, data: &[u8]) -> Result<(), String> {
            self.files.insert(name.into(), data.to_vec());
            Ok(())
        }
        fn read(&mut self, name: &str) -> Result<Vec<u8>, String> {
            self.files.get(name).cloned().ok_or_else(|| "missing".into())
        }
        fn touch(&mut self, name: &str) -> Result<(), String> {
            self.files
                .contains_key(name)
                .then_some(())
                .ok_or_else(|| "missing".into())
        }
        fn delete(&mut self, name: &str) -> Result<(), String> {
            self.files.remove(name).map(|_| ()).ok_or_else(|| "missing".into())
        }
        fn list(&mut self, prefix: &str) -> Result<usize, String> {
            Ok(self.files.keys().filter(|k| k.starts_with(prefix)).count())
        }
    }

    #[test]
    fn replay_accumulates_stats() {
        let steps = vec![
            Step::Create {
                name: "d/a".into(),
                bytes: 100,
            },
            Step::Create {
                name: "d/b".into(),
                bytes: 50,
            },
            Step::Read { name: "d/a".into() },
            Step::List { prefix: "d/".into() },
            Step::Delete { name: "d/b".into() },
        ];
        let mut bench = MemBench::default();
        let stats = run(&steps, &mut bench).unwrap();
        assert_eq!(stats.steps, 5);
        assert_eq!(stats.bytes_written, 150);
        assert_eq!(stats.bytes_read, 100);
        assert_eq!(stats.listed, 2);
        assert!(bench.files.contains_key("d/a"));
        assert!(!bench.files.contains_key("d/b"));
    }

    #[test]
    fn content_is_deterministic_and_name_dependent() {
        assert_eq!(content_for("x", 32), content_for("x", 32));
        assert_ne!(content_for("x", 32), content_for("y", 32));
        assert_eq!(content_for("x", 0).len(), 0);
    }

    #[test]
    fn replay_propagates_errors() {
        let steps = vec![Step::Read {
            name: "absent".into(),
        }];
        assert!(run(&steps, &mut MemBench::default()).is_err());
    }
}
