//! Workload steps and the replay loop.
//!
//! A workload is pure data — a vector of [`Step`]s — replayed against
//! any backend through the shared-reference [`FileSystem`] trait
//! (`cedar_vol::fs`), so one generated script drives CFS, FSD, and FFS
//! identically — from one thread or many (the replay loop takes
//! `&dyn FileSystem`, so N threads can replay disjoint scripts against
//! one service concurrently).

use cedar_vol::fs::{CedarFsError, FileSystem, FsBackend};

/// One step of a replayable workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Create a file of the given size (content is generated
    /// deterministically from the name).
    Create {
        /// File name (path-like).
        name: String,
        /// Size in bytes.
        bytes: u64,
    },
    /// Open a file and read all of it.
    Read {
        /// File name.
        name: String,
    },
    /// Open a file without reading (property access / cache touch).
    Touch {
        /// File name.
        name: String,
    },
    /// Delete a file.
    Delete {
        /// File name.
        name: String,
    },
    /// List a directory (by name prefix) with properties.
    List {
        /// Directory prefix.
        prefix: String,
    },
}

impl Step {
    /// Rewrites the step to live under `prefix/` — how one script is
    /// stamped out per client in the multi-client workload.
    pub fn prefixed(&self, prefix: &str) -> Step {
        let p = |n: &str| format!("{prefix}/{n}");
        match self {
            Step::Create { name, bytes } => Step::Create {
                name: p(name),
                bytes: *bytes,
            },
            Step::Read { name } => Step::Read { name: p(name) },
            Step::Touch { name } => Step::Touch { name: p(name) },
            Step::Delete { name } => Step::Delete { name: p(name) },
            Step::List { prefix: pre } => Step::List { prefix: p(pre) },
        }
    }
}

/// Aggregate results of a workload run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Steps executed.
    pub steps: u64,
    /// Bytes written via creates.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Entries returned by lists.
    pub listed: u64,
}

impl WorkloadStats {
    /// Accumulates another run's totals into this one.
    pub fn absorb(&mut self, other: &WorkloadStats) {
        self.steps += other.steps;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
        self.listed += other.listed;
    }
}

/// Deterministic file content derived from the name (verifiable on read).
pub fn content_for(name: &str, bytes: u64) -> Vec<u8> {
    let seed = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    (0..bytes)
        .map(|i| (seed.wrapping_add(i).wrapping_mul(0x9E3779B97F4A7C15) >> 56) as u8)
        .collect()
}

/// Executes a single step, folding its effect into `stats`.
pub fn run_step(
    step: &Step,
    fs: &dyn FileSystem,
    stats: &mut WorkloadStats,
) -> Result<(), CedarFsError> {
    stats.steps += 1;
    match step {
        Step::Create { name, bytes } => {
            let data = content_for(name, *bytes);
            fs.create(name, &data)?;
            stats.bytes_written += bytes;
        }
        Step::Read { name } => {
            stats.bytes_read += fs.read(name)?.len() as u64;
        }
        Step::Touch { name } => {
            fs.open(name)?;
        }
        Step::Delete { name } => fs.delete(name)?,
        Step::List { prefix } => {
            stats.listed += fs.list(prefix)?.len() as u64;
        }
    }
    Ok(())
}

/// Replays a workload against a file system.
pub fn run(steps: &[Step], fs: &dyn FileSystem) -> Result<WorkloadStats, CedarFsError> {
    let mut stats = WorkloadStats::default();
    for step in steps {
        run_step(step, fs, &mut stats)?;
    }
    Ok(stats)
}

/// Executes a single step against an exclusively-held backend (for
/// single-owner callers — fault-injection drivers, population phases —
/// that hold a raw volume rather than a shared service).
pub fn run_step_backend(
    step: &Step,
    fs: &mut dyn FsBackend,
    stats: &mut WorkloadStats,
) -> Result<(), CedarFsError> {
    stats.steps += 1;
    match step {
        Step::Create { name, bytes } => {
            let data = content_for(name, *bytes);
            fs.create(name, &data)?;
            stats.bytes_written += bytes;
        }
        Step::Read { name } => {
            stats.bytes_read += fs.read(name)?.len() as u64;
        }
        Step::Touch { name } => {
            fs.open(name)?;
        }
        Step::Delete { name } => fs.delete(name)?,
        Step::List { prefix } => {
            stats.listed += fs.list(prefix)?.len() as u64;
        }
    }
    Ok(())
}

/// Replays a workload against an exclusively-held backend.
pub fn run_backend(steps: &[Step], fs: &mut dyn FsBackend) -> Result<WorkloadStats, CedarFsError> {
    let mut stats = WorkloadStats::default();
    for step in steps {
        run_step_backend(step, fs, &mut stats)?;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use cedar_vol::fs::SyncFs;

    #[test]
    fn replay_accumulates_stats() {
        let steps = vec![
            Step::Create {
                name: "d/a".into(),
                bytes: 100,
            },
            Step::Create {
                name: "d/b".into(),
                bytes: 50,
            },
            Step::Read { name: "d/a".into() },
            Step::List {
                prefix: "d/".into(),
            },
            Step::Delete { name: "d/b".into() },
        ];
        let fs = SyncFs::new(MemFs::default());
        let stats = run(&steps, &fs).unwrap();
        assert_eq!(stats.steps, 5);
        assert_eq!(stats.bytes_written, 150);
        assert_eq!(stats.bytes_read, 100);
        assert_eq!(stats.listed, 2);
        assert_eq!(fs.list("d/").unwrap().len(), 1);
    }

    #[test]
    fn content_is_deterministic_and_name_dependent() {
        assert_eq!(content_for("x", 32), content_for("x", 32));
        assert_ne!(content_for("x", 32), content_for("y", 32));
        assert_eq!(content_for("x", 0).len(), 0);
    }

    #[test]
    fn replay_propagates_errors() {
        let steps = vec![Step::Read {
            name: "absent".into(),
        }];
        assert!(run(&steps, &SyncFs::new(MemFs::default())).is_err());
    }

    #[test]
    fn prefixing_rewrites_every_name() {
        let s = Step::Create {
            name: "pkg/a".into(),
            bytes: 1,
        };
        assert_eq!(
            s.prefixed("c07"),
            Step::Create {
                name: "c07/pkg/a".into(),
                bytes: 1
            }
        );
        let l = Step::List {
            prefix: "pkg/".into(),
        };
        assert_eq!(
            l.prefixed("c07"),
            Step::List {
                prefix: "c07/pkg/".into()
            }
        );
    }
}
