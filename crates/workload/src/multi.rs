//! Multi-client workload generation.
//!
//! §5.4's case for group commit is *concurrency*: "the log is only
//! forced once for all of these transactions" when many clients commit
//! inside one half-second window. This module stamps out N independent
//! MakeDo-style clients, each under its own `c{nn}/` namespace with its
//! own derived seed and its own *think times* — the simulated pause
//! between a client's operations. The commit scheduler interleaves the
//! scripts by ready time; more clients means more operations per window
//! and fewer log forces per operation.
//!
//! Everything is derived from one `u64` seed, so a given
//! (seed, clients) pair always produces the identical interleaving.

use crate::makedo::{makedo_workload, MakeDoParams};
use crate::rng::WorkloadRng;
use crate::steps::Step;

/// One step plus the client's think time *before* issuing it, in
/// simulated microseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimedStep {
    /// Pause before the step (editor time, compile CPU, coffee).
    pub think_us: u64,
    /// The operation.
    pub step: Step,
}

/// One simulated client's full script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientScript {
    /// Client index (0-based).
    pub id: usize,
    /// Namespace prefix (`c{id:02}`); every name in the script is under it.
    pub prefix: String,
    /// Population steps, replayed before measurement with no think time.
    pub setup: Vec<Step>,
    /// The measured, think-timed operation stream.
    pub steps: Vec<TimedStep>,
}

/// Parameters for the multi-client workload.
#[derive(Clone, Copy, Debug)]
pub struct MultiClientParams {
    /// Number of simulated clients.
    pub clients: usize,
    /// Per-client MakeDo shape (sources/interfaces/rounds).
    pub makedo: MakeDoParams,
    /// Think time range `[lo, hi)` in µs, uniform per step.
    pub think_us: (u64, u64),
    /// Master seed; per-client seeds are derived from it.
    pub seed: u64,
}

impl Default for MultiClientParams {
    fn default() -> Self {
        Self {
            clients: 8,
            makedo: MakeDoParams {
                sources: 6,
                interfaces: 10,
                rounds: 1,
                seed: 0, // replaced per client
            },
            // Mean 100 ms: a busy interactive client (§7 calls MakeDo
            // "typical of clients that intensively use the file system").
            think_us: (50_000, 150_000),
            seed: 1987,
        }
    }
}

/// Builds N deterministic, namespace-disjoint client scripts.
pub fn multi_client_workload(params: MultiClientParams) -> Vec<ClientScript> {
    assert!(params.clients >= 1, "need at least one client");
    assert!(params.think_us.0 < params.think_us.1, "empty think range");
    (0..params.clients)
        .map(|id| {
            // Distinct size streams and think streams per client.
            let derived = params
                .seed
                .wrapping_add((id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            let (setup, measured) = makedo_workload(MakeDoParams {
                seed: derived,
                ..params.makedo
            });
            let prefix = format!("c{id:02}");
            let mut think = WorkloadRng::new(derived ^ 0x7468696e6b); // "think"
            ClientScript {
                id,
                setup: setup.iter().map(|s| s.prefixed(&prefix)).collect(),
                steps: measured
                    .iter()
                    .map(|s| TimedStep {
                        think_us: think.range(params.think_us.0, params.think_us.1),
                        step: s.prefixed(&prefix),
                    })
                    .collect(),
                prefix,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfs::MemFs;
    use crate::steps::{run, run_step, WorkloadStats};

    #[test]
    fn deterministic_and_client_disjoint() {
        let p = MultiClientParams {
            clients: 3,
            ..Default::default()
        };
        let a = multi_client_workload(p);
        let b = multi_client_workload(p);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Namespaces are disjoint and scripts differ across clients.
        for c in &a {
            for t in &c.steps {
                let name = match &t.step {
                    Step::Create { name, .. }
                    | Step::Read { name }
                    | Step::Touch { name }
                    | Step::Delete { name } => name,
                    Step::List { prefix } => prefix,
                };
                assert!(name.starts_with(&format!("{}/", c.prefix)), "{name}");
            }
        }
        assert_ne!(a[0].steps[0].think_us, a[1].steps[0].think_us);
    }

    #[test]
    fn scripts_replay_cleanly_in_any_interleaving() {
        // All clients against one shared store, round-robin interleaved:
        // disjoint namespaces mean no script sees another's files.
        let clients = multi_client_workload(MultiClientParams {
            clients: 4,
            ..Default::default()
        });
        let fs = cedar_vol::fs::SyncFs::new(MemFs::default());
        for c in &clients {
            run(&c.setup, &fs).unwrap();
        }
        let mut stats = WorkloadStats::default();
        let mut cursors = vec![0usize; clients.len()];
        loop {
            let mut progressed = false;
            for (i, c) in clients.iter().enumerate() {
                if cursors[i] < c.steps.len() {
                    run_step(&c.steps[cursors[i]].step, &fs, &mut stats).unwrap();
                    cursors[i] += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(
            stats.steps,
            clients.iter().map(|c| c.steps.len() as u64).sum::<u64>()
        );
    }

    #[test]
    fn think_times_are_in_range() {
        let p = MultiClientParams::default();
        for c in multi_client_workload(p) {
            for t in &c.steps {
                assert!((p.think_us.0..p.think_us.1).contains(&t.think_us));
            }
        }
    }
}
