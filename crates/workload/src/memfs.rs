//! An in-memory reference [`FsBackend`] with Cedar versioning
//! semantics.
//!
//! Used as the *model* in conformance tests: replay a script against
//! `MemFs` and against a real backend and the visible name → contents
//! map must match. It simulates nothing — no clock, no disk — so its
//! [`FsBackend::stats`] are all zero. Wrap it in
//! `cedar_vol::fs::SyncFs` when a shared-reference `FileSystem` model
//! is needed (the concurrent conformance suite does exactly that).

use cedar_vol::fs::{validate_name, CedarFsError, FileInfo, FsBackend, FsStats};
use std::collections::BTreeMap;

/// In-memory versioned file store.
#[derive(Clone, Debug, Default)]
pub struct MemFs {
    /// name → stack of version contents (index 0 is version 1).
    files: BTreeMap<String, Vec<Vec<u8>>>,
}

impl MemFs {
    fn newest(&self, name: &str) -> Result<(&Vec<u8>, u32), CedarFsError> {
        let versions = self
            .files
            .get(name)
            .ok_or_else(|| CedarFsError::NotFound(name.to_string()))?;
        Ok((versions.last().unwrap(), versions.len() as u32))
    }
}

impl FsBackend for MemFs {
    fn kind(&self) -> &'static str {
        "mem"
    }

    fn create(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        validate_name(name)?;
        let versions = self.files.entry(name.to_string()).or_default();
        versions.push(data.to_vec());
        Ok(FileInfo {
            name: name.to_string(),
            version: versions.len() as u32,
            bytes: data.len() as u64,
        })
    }

    fn open(&mut self, name: &str) -> Result<FileInfo, CedarFsError> {
        let (data, version) = self.newest(name)?;
        Ok(FileInfo {
            name: name.to_string(),
            version,
            bytes: data.len() as u64,
        })
    }

    fn read(&mut self, name: &str) -> Result<Vec<u8>, CedarFsError> {
        Ok(self.newest(name)?.0.clone())
    }

    fn write(&mut self, name: &str, data: &[u8]) -> Result<FileInfo, CedarFsError> {
        // The model mirrors Cedar versioning: overwrite = next version.
        FsBackend::create(self, name, data)
    }

    fn delete(&mut self, name: &str) -> Result<(), CedarFsError> {
        let versions = self
            .files
            .get_mut(name)
            .ok_or_else(|| CedarFsError::NotFound(name.to_string()))?;
        versions.pop();
        if versions.is_empty() {
            self.files.remove(name);
        }
        Ok(())
    }

    fn list(&mut self, prefix: &str) -> Result<Vec<FileInfo>, CedarFsError> {
        Ok(self
            .files
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(name, versions)| FileInfo {
                name: name.clone(),
                version: versions.len() as u32,
                bytes: versions.last().unwrap().len() as u64,
            })
            .collect())
    }

    fn sync(&mut self) -> Result<(), CedarFsError> {
        Ok(())
    }

    fn stats(&self) -> FsStats {
        FsStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_stack_and_unstack() {
        let mut fs = MemFs::default();
        fs.create("a", b"1").unwrap();
        let info = fs.create("a", b"22").unwrap();
        assert_eq!((info.version, info.bytes), (2, 2));
        assert_eq!(fs.read("a").unwrap(), b"22");
        fs.delete("a").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"1");
        fs.delete("a").unwrap();
        assert!(matches!(fs.read("a"), Err(CedarFsError::NotFound(_))));
    }

    #[test]
    fn list_is_prefix_filtered_and_sorted() {
        let mut fs = MemFs::default();
        for n in ["b/x", "a/y", "a/x", "c"] {
            fs.create(n, b"d").unwrap();
        }
        let names: Vec<String> = fs.list("a/").unwrap().into_iter().map(|i| i.name).collect();
        assert_eq!(names, vec!["a/x", "a/y"]);
    }
}
