//! Plain-text table rendering in the paper's style.

/// A simple aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n{}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", cell, w = widths[i] + 2));
                } else {
                    s.push_str(&format!("{:>w$}", cell, w = widths[i] + 2));
                }
            }
            s
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(
            &"  "
                .chars()
                .chain("-".repeat(total - 2).chars())
                .collect::<String>(),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a speed-up/ratio with two decimals and an `×`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["op", "value"]);
        t.row(&["create".into(), "42".into()]);
        t.row(&["x".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("create"));
        assert!(s.contains("123456"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
