//! Plain-text table rendering in the paper's style.

use cedar_disk::DiskStats;

/// A simple aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n{}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("  ");
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", cell, w = widths[i] + 2));
                } else {
                    s.push_str(&format!("{:>w$}", cell, w = widths[i] + 2));
                }
            }
            s
        };
        out.push_str(&line(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len() + 2;
        out.push_str(
            &"  "
                .chars()
                .chain("-".repeat(total - 2).chars())
                .collect::<String>(),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders the §6 disk-time breakdown — the components of `busy_us`
/// (seek / rotation / lost revolutions / transfer) with their shares —
/// as one line for the bench binaries.
pub fn disk_breakdown(label: &str, s: &DiskStats) -> String {
    let busy = s.busy_us();
    let pct = |part: u64| {
        if busy == 0 {
            0.0
        } else {
            100.0 * part as f64 / busy as f64
        }
    };
    format!(
        concat!(
            "{}: disk busy {:.3} s = seek {:.3} s ({:.0}%) ",
            "+ rotation {:.3} s ({:.0}%) + lost-rev {:.3} s ({:.0}%, {} revs) ",
            "+ transfer {:.3} s ({:.0}%)"
        ),
        label,
        busy as f64 / 1e6,
        s.seek_us as f64 / 1e6,
        pct(s.seek_us),
        s.rotation_us as f64 / 1e6,
        pct(s.rotation_us),
        s.lost_rev_us as f64 / 1e6,
        pct(s.lost_rev_us),
        s.lost_revolutions,
        s.transfer_us as f64 / 1e6,
        pct(s.transfer_us),
    )
}

/// The same breakdown as a JSON object fragment (hand-rolled — no serde
/// in the build environment).
pub fn disk_breakdown_json(s: &DiskStats) -> String {
    format!(
        concat!(
            "{{\"busy_us\": {}, \"seek_us\": {}, \"rotation_us\": {}, ",
            "\"lost_rev_us\": {}, \"lost_revolutions\": {}, \"transfer_us\": {}, ",
            "\"reads\": {}, \"writes\": {}, \"label_ops\": {}, ",
            "\"sectors_read\": {}, \"sectors_written\": {}, \"seeks\": {}, ",
            "\"short_seeks\": {}}}"
        ),
        s.busy_us(),
        s.seek_us,
        s.rotation_us,
        s.lost_rev_us,
        s.lost_revolutions,
        s.transfer_us,
        s.reads,
        s.writes,
        s.label_ops,
        s.sectors_read,
        s.sectors_written,
        s.seeks,
        s.short_seeks,
    )
}

/// Formats a speed-up/ratio with two decimals and an `×`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["op", "value"]);
        t.row(&["create".into(), "42".into()]);
        t.row(&["x".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("create"));
        assert!(s.contains("123456"));
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn breakdown_components_and_json_agree() {
        let s = DiskStats {
            seek_us: 1_000_000,
            rotation_us: 500_000,
            lost_rev_us: 250_000,
            lost_revolutions: 15,
            transfer_us: 250_000,
            ..Default::default()
        };
        let line = disk_breakdown("run", &s);
        assert!(line.contains("disk busy 2.000 s"));
        assert!(line.contains("seek 1.000 s (50%)"));
        assert!(line.contains("lost-rev 0.250 s (12%, 15 revs)"));
        let json = disk_breakdown_json(&s);
        assert!(json.contains("\"busy_us\": 2000000"));
        assert!(json.contains("\"lost_revolutions\": 15"));
    }

    #[test]
    fn breakdown_of_idle_disk_has_no_nans() {
        let line = disk_breakdown("idle", &DiskStats::default());
        assert!(line.contains("(0%)"));
    }
}
