//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or in-text
//! measurement of the paper (the index lives in `DESIGN.md`); this
//! library holds what they share — volume construction on the paper's
//! 300 MB Trident-class disk, the `cedar_vol::fs::FileSystem` trait
//! everything is driven through, the multi-client scheduler driver,
//! and table rendering.

#![deny(unsafe_code)]

pub mod adapters;
pub mod driver;
pub mod report;
pub mod setup;

pub use adapters::{CedarFsError, FileSystem, FsBackend, Session, SyncFs};
pub use driver::{drive_clients, drive_threads, populate_setup, MultiClientRun, ThreadedRun};
pub use report::{disk_breakdown, disk_breakdown_json, Table};
pub use setup::{cfs_t300, ffs_t300, fsd_t300, ms, populate};
