//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or in-text
//! measurement of the paper (the index lives in `DESIGN.md`); this
//! library holds what they share — volume construction on the paper's
//! 300 MB Trident-class disk, [`cedar_workload::Workbench`] adapters for
//! the three file systems, and table rendering.

pub mod adapters;
pub mod report;
pub mod setup;

pub use adapters::{CfsBench, FfsBench, FsdBench};
pub use report::Table;
pub use setup::{cfs_t300, ffs_t300, fsd_t300, populate, ms};
