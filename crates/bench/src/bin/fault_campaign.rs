//! `fault_campaign` — the media-fault injection campaign (E-FAULT).
//!
//! Enumerates (media-fault shape × crash point × torn tail) over a
//! MakeDo workload on a tiny FSD volume and checks every recovered
//! volume against an in-memory [`MemFs`] model: the surviving state
//! must be exactly the last commit boundary, the boundary before it
//! (the crash tore the in-flight force), or the full live state (the
//! in-flight group landed whole). A separate block destroys both log
//! meta replicas after a clean shutdown so recovery has to climb past
//! replica repair to the leader-page scavenger — there the recovered
//! volume must equal the live model exactly.
//!
//! MakeDo file sizes are capped so the script fits the 1 MB campaign
//! volume; the script shape (names, versions, deletes, recreation
//! order) is unchanged.
//!
//! `--smoke` runs a reduced grid for CI. The full run writes
//! `BENCH_fault_campaign.json` and enforces the campaign gates:
//! at least 200 scenarios, zero failures, and every rung of the
//! escalation ladder (redo, replica scrub, scavenge) exercised.

use cedar_bench::adapters::{CedarFsError, FsBackend, FsdVolume};
use cedar_bench::Table;
use cedar_disk::{CpuModel, CrashPlan, FaultPlan, Label, PageKind, SimDisk};
use cedar_fsd::{FsdConfig, FsdLayout, RecoveryRung, ReplMode, ReplSession, ReplSessionConfig};
use cedar_workload::steps::{run_step_backend, Step, WorkloadStats};
use cedar_workload::{makedo_workload, MakeDoParams, MemFs};
use std::collections::VecDeque;

/// Volume configuration for every scenario: tiny geometry, free CPU
/// (media behaviour is what is under test, not timing).
fn config() -> FsdConfig {
    config_with(1)
}

fn config_with(scavenge_workers: usize) -> FsdConfig {
    FsdConfig {
        nt_pages: 48,
        log_sectors: 128,
        cpu: CpuModel::FREE,
        scavenge_workers,
        ..FsdConfig::default()
    }
}

/// Largest file the campaign volume accepts without churn; MakeDo
/// sizes above this are clamped.
const MAX_FILE_BYTES: u64 = 2_500;

/// Measured steps between explicit syncs (the commit boundaries the
/// oracle snapshots).
const SYNC_EVERY: usize = 7;

/// One media-fault shape, resolved against the live volume after the
/// setup phase (so log-cursor-relative targets are meaningful).
struct FaultKind {
    name: &'static str,
    plan: fn(&FsdVolume) -> FaultPlan,
}

/// The fault grid. Latent faults fail once and are repaired by the
/// first successful rewrite; transient faults only cost revolutions;
/// grown defects reject writes forever and must be remapped to spares.
const KINDS: &[FaultKind] = &[
    FaultKind {
        name: "clean",
        plan: |_| FaultPlan::none(),
    },
    FaultKind {
        name: "latent-boot",
        plan: |v| FaultPlan::none().with_latent(v.layout().boot_a),
    },
    FaultKind {
        name: "latent-nt",
        plan: |v| FaultPlan::none().with_latent(v.layout().nt_a_sector(1)),
    },
    FaultKind {
        name: "latent-nt-pair",
        plan: |v| {
            FaultPlan::none()
                .with_latent(v.layout().nt_a_sector(0))
                .with_latent(v.layout().nt_a_sector(2))
        },
    },
    FaultKind {
        name: "latent-log-meta",
        plan: |v| FaultPlan::none().with_latent(v.layout().log_start),
    },
    FaultKind {
        name: "latent-log-tail",
        plan: |v| FaultPlan::none().with_latent(v.next_log_sector()),
    },
    FaultKind {
        name: "latent-vam",
        plan: |v| FaultPlan::none().with_latent(v.layout().vam_a),
    },
    FaultKind {
        name: "transient-nt",
        plan: |v| FaultPlan::none().with_transient(v.layout().nt_a_sector(1), 2),
    },
    FaultKind {
        name: "transient-log",
        plan: |v| FaultPlan::none().with_transient(v.next_log_sector(), 1),
    },
    FaultKind {
        name: "latent-mixed",
        plan: |v| {
            let l = v.layout();
            FaultPlan::none()
                .with_latent(l.boot_a)
                .with_latent(l.nt_a_sector(3))
                .with_latent(l.log_start)
        },
    },
    FaultKind {
        name: "grown-log-next",
        plan: |v| FaultPlan::none().with_grown(v.next_log_sector()),
    },
    FaultKind {
        name: "grown-nt",
        plan: |v| FaultPlan::none().with_grown(v.layout().nt_a_sector(2)),
    },
    FaultKind {
        name: "grown-vam",
        plan: |v| FaultPlan::none().with_grown(v.layout().vam_a),
    },
];

/// What one scenario's boot did and which model boundary it matched.
struct Outcome {
    rung: RecoveryRung,
    matched: &'static str,
    scrubbed: u64,
    remapped: u64,
    boot_us: u64,
}

/// Per-kind tallies for the report table.
#[derive(Default)]
struct KindTally {
    scenarios: u64,
    redo: u64,
    scrub: u64,
    scavenge: u64,
    matched_committed: u64,
    matched_previous: u64,
    matched_live: u64,
    scrubbed: u64,
    remapped: u64,
    max_boot_us: u64,
}

impl KindTally {
    fn absorb(&mut self, o: &Outcome) {
        self.scenarios += 1;
        match o.rung {
            RecoveryRung::Redo => self.redo += 1,
            RecoveryRung::ReplicaScrub => self.scrub += 1,
            RecoveryRung::Scavenge => self.scavenge += 1,
        }
        match o.matched {
            "committed" => self.matched_committed += 1,
            "previous" => self.matched_previous += 1,
            _ => self.matched_live += 1,
        }
        self.scrubbed += o.scrubbed;
        self.remapped += o.remapped;
        self.max_boot_us = self.max_boot_us.max(o.boot_us);
    }
}

/// The MakeDo script with sizes clamped to the campaign volume.
fn campaign_script() -> (Vec<Step>, Vec<Step>) {
    let (setup, measured) = makedo_workload(MakeDoParams {
        sources: 5,
        interfaces: 8,
        rounds: 2,
        seed: 11,
    });
    let clamp = |steps: Vec<Step>| {
        steps
            .into_iter()
            .map(|s| match s {
                Step::Create { name, bytes } => Step::Create {
                    name,
                    bytes: bytes.min(MAX_FILE_BYTES),
                },
                other => other,
            })
            .collect()
    };
    (clamp(setup), clamp(measured))
}

/// True when the recovered volume's visible state (names and newest
/// contents) equals the model's.
fn matches_model(fs: &mut FsdVolume, model: &MemFs) -> bool {
    let mut m = model.clone();
    let mut want = match m.list("") {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut got = match FsBackend::list(fs, "") {
        Ok(g) => g,
        Err(_) => return false,
    };
    want.sort_by(|a, b| a.name.cmp(&b.name));
    got.sort_by(|a, b| a.name.cmp(&b.name));
    if want.len() != got.len() {
        return false;
    }
    for (w, g) in want.iter().zip(&got) {
        if w.name != g.name {
            return false;
        }
        let want_data = match m.read(&w.name) {
            Ok(d) => d,
            Err(_) => return false,
        };
        match FsBackend::read(fs, &g.name) {
            Ok(d) if d == want_data => {}
            _ => return false,
        }
    }
    true
}

/// Replays the setup phase on both the volume and the model, then
/// syncs. Returns the synced volume and model, or why it failed.
fn setup_volume(setup: &[Step]) -> Result<(FsdVolume, MemFs), String> {
    let mut v =
        FsdVolume::format(SimDisk::tiny(), config()).map_err(|e| format!("format failed: {e}"))?;
    let mut live = MemFs::default();
    let mut stats = WorkloadStats::default();
    for step in setup {
        run_step_backend(step, &mut v, &mut stats)
            .map_err(|e| format!("setup step failed: {e}"))?;
        run_step_backend(step, &mut live, &mut stats)
            .map_err(|e| format!("model setup step failed: {e}"))?;
    }
    v.sync().map_err(|e| format!("setup sync failed: {e}"))?;
    Ok((v, live))
}

/// One crash scenario: install the fault plan, schedule the crash,
/// replay the measured phase with periodic syncs, then reboot and
/// check the recovered state against the commit-boundary models.
fn run_crash_scenario(
    kind: &FaultKind,
    crash_after: u64,
    damaged_tail: u8,
    setup: &[Step],
    measured: &[Step],
) -> Result<Outcome, String> {
    let (mut v, mut live) = setup_volume(setup)?;
    let plan = (kind.plan)(&v);
    v.disk_mut().set_fault_plan(&plan);
    v.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: crash_after,
        damaged_tail,
    });

    let mut committed = live.clone();
    let mut previous = committed.clone();
    let mut stats = WorkloadStats::default();
    let mut crashed = false;
    for (i, step) in measured.iter().enumerate() {
        match run_step_backend(step, &mut v, &mut stats) {
            Ok(()) => {
                run_step_backend(step, &mut live, &mut stats)
                    .map_err(|e| format!("model diverged on {step:?}: {e}"))?;
            }
            Err(e) if e.is_crash() => {
                crashed = true;
                break;
            }
            // The tiny volume may legitimately fill; skip the step on
            // both sides. A NotFound is only benign if the model agrees
            // the name is absent (its create was one of the skips).
            Err(CedarFsError::NoSpace) => {}
            Err(CedarFsError::NotFound(n)) if live.read(&n).is_err() => {}
            Err(e) => return Err(format!("non-crash failure on {step:?}: {e}")),
        }
        if i % SYNC_EVERY == SYNC_EVERY - 1 {
            match v.sync() {
                Ok(()) => {
                    previous = committed;
                    committed = live.clone();
                }
                Err(e) if e.is_crash() => {
                    crashed = true;
                    break;
                }
                Err(e) => return Err(format!("sync failed: {e}")),
            }
        }
    }
    if !crashed {
        v.disk_mut().crash_now();
    }

    let mut disk = v.into_disk();
    disk.reboot();
    let (mut v2, report) =
        FsdVolume::boot(disk, config()).map_err(|e| format!("boot failed: {e}"))?;
    v2.verify().map_err(|e| format!("verify failed: {e}"))?;

    let matched = if matches_model(&mut v2, &committed) {
        "committed"
    } else if matches_model(&mut v2, &previous) {
        "previous"
    } else if matches_model(&mut v2, &live) {
        "live"
    } else {
        return Err("recovered state matches no commit boundary".into());
    };
    Ok(Outcome {
        rung: report.rung,
        matched,
        scrubbed: report.scrubbed_sectors,
        remapped: report.remapped_sectors,
        boot_us: report.total_us(),
    })
}

/// How a scavenge scenario wounds the cleanly shut-down disk.
struct ScavengeCase {
    name: &'static str,
    /// (soft-damage targets, hard-damage targets) resolved from the
    /// volume before shutdown; both log meta replicas always die.
    extra_soft: fn(&FsdVolume) -> Vec<u32>,
    hard_metas: bool,
    /// Scavenger decode/verify workers: 1 is the serial pipeline, more
    /// runs the parallel checker — same required outcome either way.
    workers: usize,
}

const SCAVENGE_CASES: &[ScavengeCase] = &[
    ScavengeCase {
        name: "soft-both-metas",
        extra_soft: |_| Vec::new(),
        hard_metas: false,
        workers: 1,
    },
    ScavengeCase {
        name: "hard-both-metas",
        extra_soft: |_| Vec::new(),
        hard_metas: true,
        workers: 1,
    },
    ScavengeCase {
        name: "metas+boot-a",
        extra_soft: |v| vec![v.layout().boot_a],
        hard_metas: false,
        workers: 1,
    },
    ScavengeCase {
        name: "metas+nt-page",
        extra_soft: |v| vec![v.layout().nt_a_sector(1)],
        hard_metas: false,
        workers: 1,
    },
    ScavengeCase {
        name: "parallel-scavenger",
        extra_soft: |v| vec![v.layout().nt_a_sector(1)],
        hard_metas: true,
        workers: 8,
    },
];

/// One scavenge scenario: run the whole script, shut down cleanly,
/// destroy both log meta replicas (plus the case's extras), and boot.
/// With no in-flight work the scavenged volume must equal the live
/// model exactly.
fn run_scavenge_scenario(
    case: &ScavengeCase,
    setup: &[Step],
    measured: &[Step],
) -> Result<Outcome, String> {
    let (mut v, mut live) = setup_volume(setup)?;
    let mut stats = WorkloadStats::default();
    for step in measured {
        match run_step_backend(step, &mut v, &mut stats) {
            Ok(()) => {
                run_step_backend(step, &mut live, &mut stats)
                    .map_err(|e| format!("model diverged on {step:?}: {e}"))?;
            }
            Err(CedarFsError::NoSpace) => {}
            Err(CedarFsError::NotFound(n)) if live.read(&n).is_err() => {}
            Err(e) => return Err(format!("workload failure on {step:?}: {e}")),
        }
    }
    let meta_a = v.layout().log_start;
    let meta_b = v.layout().log_start + 2;
    let extras = (case.extra_soft)(&v);
    v.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    let mut disk = v.into_disk();
    if case.hard_metas {
        disk.hard_damage_sector(meta_a);
        disk.hard_damage_sector(meta_b);
    } else {
        disk.damage_sector(meta_a);
        disk.damage_sector(meta_b);
    }
    for s in extras {
        disk.damage_sector(s);
    }
    disk.reboot();
    let (mut v2, report) = FsdVolume::boot(disk, config_with(case.workers))
        .map_err(|e| format!("boot failed: {e}"))?;
    v2.verify().map_err(|e| format!("verify failed: {e}"))?;
    if report.rung != RecoveryRung::Scavenge {
        return Err(format!("expected scavenge rung, got {:?}", report.rung));
    }
    if !matches_model(&mut v2, &live) {
        return Err("scavenged state does not equal the live model".into());
    }
    Ok(Outcome {
        rung: report.rung,
        matched: "live",
        scrubbed: report.scrubbed_sectors,
        remapped: report.remapped_sectors,
        boot_us: report.total_us(),
    })
}

/// Out-of-band image rot (wild byte flips, label smashes) applied after
/// a clean shutdown — §5.8's "malicious" class, outside the
/// replica-covered fault model, so the gate is weaker than the boundary
/// oracle: the forced scavenge must rebuild a *verifying* tree (rot may
/// cost files, recorded as losses, but never consistency) and must not
/// panic or refuse a scavengeable image.
struct CorruptCase {
    name: &'static str,
    /// Rots the image; resolved against the pre-shutdown layout.
    rot: fn(&mut SimDisk, &FsdLayout),
    /// Scavenger workers for the forced-scavenge boot.
    workers: usize,
}

/// First data-area sector carrying the given label kind.
fn first_live(disk: &SimDisk, l: &FsdLayout, kind: PageKind) -> Option<u32> {
    let (start, end) = l.data_area();
    (start..end).find(|&a| disk.peek_label(a).kind == kind)
}

const CORRUPT_CASES: &[CorruptCase] = &[
    CorruptCase {
        name: "flip-leader-byte",
        rot: |d, l| {
            if let Some(a) = first_live(d, l, PageKind::Leader) {
                d.corrupt_byte(a, 40, 0x40);
            }
        },
        workers: 1,
    },
    CorruptCase {
        name: "flip-nt-both-copies",
        rot: |d, l| {
            d.corrupt_byte(l.nt_a_sector(1), 17, 0x10);
            d.corrupt_byte(l.nt_b_sector(1), 17, 0x10);
        },
        workers: 1,
    },
    CorruptCase {
        name: "smash-data-label",
        rot: |d, l| {
            if let Some(a) = first_live(d, l, PageKind::Data) {
                d.corrupt_label(a, Label::new(0xDEAD, 7, PageKind::Leader));
            }
        },
        workers: 1,
    },
    CorruptCase {
        name: "flip-log-record",
        rot: |d, l| d.corrupt_byte(l.log_start + 4, 9, 0x04),
        workers: 1,
    },
    CorruptCase {
        name: "parallel-rot-scavenge",
        rot: |d, l| {
            if let Some(a) = first_live(d, l, PageKind::Leader) {
                d.corrupt_byte(a, 8, 0x80);
            }
        },
        workers: 8,
    },
];

/// One corrupted-image scenario: run the whole script, shut down
/// cleanly, rot the image out-of-band, destroy both log meta replicas,
/// and boot. The scavenger trusted nothing but labels and
/// software-check pages, so it must land a verifying tree.
fn run_corrupt_scenario(
    case: &CorruptCase,
    setup: &[Step],
    measured: &[Step],
) -> Result<Outcome, String> {
    let (mut v, _live) = setup_volume(setup)?;
    let mut stats = WorkloadStats::default();
    for step in measured {
        match run_step_backend(step, &mut v, &mut stats) {
            Ok(()) | Err(CedarFsError::NoSpace) | Err(CedarFsError::NotFound(_)) => {}
            Err(e) => return Err(format!("workload failure on {step:?}: {e}")),
        }
    }
    let layout = *v.layout();
    v.shutdown().map_err(|e| format!("shutdown failed: {e}"))?;
    let mut disk = v.into_disk();
    (case.rot)(&mut disk, &layout);
    disk.damage_sector(layout.log_start);
    disk.damage_sector(layout.log_start + 2);
    disk.reboot();
    match FsdVolume::boot(disk, config_with(case.workers)) {
        Ok((mut v2, report)) => {
            v2.verify()
                .map_err(|e| format!("rot accepted but tree inconsistent: {e}"))?;
            if report.rung != RecoveryRung::Scavenge {
                return Err(format!("expected scavenge rung, got {:?}", report.rung));
            }
            Ok(Outcome {
                rung: report.rung,
                matched: "live",
                scrubbed: report.scrubbed_sectors,
                remapped: report.remapped_sectors,
                boot_us: report.total_us(),
            })
        }
        Err(e) => Err(format!("typed refusal on a scavengeable image: {e}")),
    }
}

/// Replication failover block (ISSUE 10): the primary runs the measured
/// script under a media-fault plan and a scheduled crash while shipping
/// to a replica; when the primary dies, the replica is promoted and
/// must land on an *acknowledged* commit boundary within the mode's
/// loss bound — zero boundaries for sync and semi-sync, at most
/// [`REPL_MAX_LAG`] for async.
const REPL_MAX_LAG: usize = 4;

/// Acked-boundary snapshots kept for the promotion oracle.
const REPL_KEEP_BOUNDARIES: usize = REPL_MAX_LAG + 4;

fn run_repl_scenario(
    mode: ReplMode,
    kind: &FaultKind,
    crash_after: u64,
    damaged_tail: u8,
    setup: &[Step],
    measured: &[Step],
) -> Result<Outcome, String> {
    let (v, mut live) = setup_volume(setup)?;
    let mut cfg = ReplSessionConfig::for_mode(mode);
    cfg.max_lag_frames = REPL_MAX_LAG;
    let mut s =
        ReplSession::new(v, config(), cfg).map_err(|e| format!("replica install failed: {e}"))?;
    // Faults and the crash hit the primary only, after the install's
    // full-state transfer (the clone starts healthy).
    let plan = (kind.plan)(s.primary_mut());
    s.primary_mut().disk_mut().set_fault_plan(&plan);
    s.primary_mut().disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: crash_after,
        damaged_tail,
    });

    let mut boundaries: VecDeque<(u64, MemFs)> = VecDeque::new();
    let mut acked: u64 = 0;
    let mut stats = WorkloadStats::default();
    'steps: for (i, step) in measured.iter().enumerate() {
        match run_step_backend(step, s.primary_mut(), &mut stats) {
            Ok(()) => {
                run_step_backend(step, &mut live, &mut stats)
                    .map_err(|e| format!("model diverged on {step:?}: {e}"))?;
            }
            Err(e) if e.is_crash() => break 'steps,
            Err(CedarFsError::NoSpace) => {}
            Err(CedarFsError::NotFound(n)) if live.read(&n).is_err() => {}
            Err(e) => return Err(format!("non-crash failure on {step:?}: {e}")),
        }
        if i % SYNC_EVERY == SYNC_EVERY - 1 {
            match s.commit() {
                Ok(()) => {
                    acked += 1;
                    boundaries.push_back((acked, live.clone()));
                    while boundaries.len() > REPL_KEEP_BOUNDARIES {
                        boundaries.pop_front();
                    }
                }
                Err(e) if e.is_crash() => break 'steps,
                // A torn force can surface as a retryable shipping
                // refusal too; either way the boundary is unacked.
                Err(e) if e.is_retryable() => {}
                Err(e) => return Err(format!("commit failed: {e}")),
            }
        }
    }

    // The primary is dead (or the script ended): promote the replica.
    let out = s.failover().map_err(|e| format!("failover failed: {e}"))?;
    let mut v2 = out.volume;
    v2.verify()
        .map_err(|e| format!("promoted verify failed: {e}"))?;
    let loss = if acked == 0 {
        0
    } else {
        let mut found = None;
        for (id, model) in boundaries.iter().rev() {
            if matches_model(&mut v2, model) {
                found = Some(acked - id);
                break;
            }
        }
        match found {
            Some(l) => l,
            None => return Err("promoted state matches no acknowledged boundary".into()),
        }
    };
    let bound = match mode {
        ReplMode::Sync | ReplMode::SemiSync => 0,
        ReplMode::Async => REPL_MAX_LAG as u64,
    };
    if loss > bound {
        return Err(format!(
            "{} lost {loss} acknowledged boundaries (bound {bound})",
            mode.name()
        ));
    }
    Ok(Outcome {
        rung: out.report.rung,
        matched: if loss == 0 { "committed" } else { "previous" },
        scrubbed: out.report.scrubbed_sectors,
        remapped: out.report.remapped_sectors,
        boot_us: out.failover_us,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (setup, measured) = campaign_script();

    // The grid. Crash points are measured in sector writes from the
    // end of setup; the tail tears 0..=2 trailing sectors. The points
    // around 45–132 land inside forces on this script, so some crashes
    // tear the in-flight commit record (matching `previous`) or cut it
    // exactly at the group boundary (matching `live`).
    let (kinds, crash_afters, tails): (Vec<&FaultKind>, Vec<u64>, Vec<u8>) = if smoke {
        let keep = [
            "clean",
            "latent-boot",
            "latent-nt",
            "latent-log-meta",
            "grown-log-next",
        ];
        (
            KINDS.iter().filter(|k| keep.contains(&k.name)).collect(),
            vec![10, 91],
            vec![0, 1, 2],
        )
    } else {
        (
            KINDS.iter().collect(),
            vec![3, 10, 25, 45, 70, 91, 117, 150],
            vec![0, 1, 2],
        )
    };

    let mut tallies: Vec<(&str, KindTally)> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    let mut overall = KindTally::default();

    for kind in &kinds {
        let mut tally = KindTally::default();
        for &crash_after in &crash_afters {
            for &tail in &tails {
                match run_crash_scenario(kind, crash_after, tail, &setup, &measured) {
                    Ok(o) => {
                        tally.absorb(&o);
                        overall.absorb(&o);
                    }
                    Err(e) => {
                        overall.scenarios += 1;
                        failures.push(format!(
                            "{} crash={crash_after} tail={tail}: {e}",
                            kind.name
                        ));
                    }
                }
            }
        }
        tallies.push((kind.name, tally));
    }

    let mut scavenge_tally = KindTally::default();
    for case in SCAVENGE_CASES {
        match run_scavenge_scenario(case, &setup, &measured) {
            Ok(o) => {
                scavenge_tally.absorb(&o);
                overall.absorb(&o);
            }
            Err(e) => {
                overall.scenarios += 1;
                failures.push(format!("scavenge {}: {e}", case.name));
            }
        }
    }
    tallies.push(("scavenge-block", scavenge_tally));

    let mut corrupt_tally = KindTally::default();
    for case in CORRUPT_CASES {
        match run_corrupt_scenario(case, &setup, &measured) {
            Ok(o) => {
                corrupt_tally.absorb(&o);
                overall.absorb(&o);
            }
            Err(e) => {
                overall.scenarios += 1;
                failures.push(format!("corrupt {}: {e}", case.name));
            }
        }
    }
    tallies.push(("corrupt-block", corrupt_tally));

    // Replication failover block: primary media faults + crashes per
    // acknowledgement mode, promoted replica checked against the acked
    // commit boundaries (loss bound per mode).
    let repl_keep = if smoke {
        vec!["clean", "latent-nt"]
    } else {
        vec![
            "clean",
            "latent-nt",
            "latent-log-meta",
            "grown-nt",
            "transient-nt",
        ]
    };
    let repl_crashes: Vec<u64> = if smoke { vec![45] } else { vec![25, 70, 117] };
    let repl_kinds: Vec<&FaultKind> = KINDS
        .iter()
        .filter(|k| repl_keep.contains(&k.name))
        .collect();
    let mut repl_scenarios = 0u64;
    for mode in ReplMode::ALL {
        let mut tally = KindTally::default();
        for kind in &repl_kinds {
            for &crash_after in &repl_crashes {
                for tail in [0u8, 1] {
                    repl_scenarios += 1;
                    match run_repl_scenario(mode, kind, crash_after, tail, &setup, &measured) {
                        Ok(o) => {
                            tally.absorb(&o);
                            overall.absorb(&o);
                        }
                        Err(e) => {
                            overall.scenarios += 1;
                            failures.push(format!(
                                "repl {} {} crash={crash_after} tail={tail}: {e}",
                                mode.name(),
                                kind.name
                            ));
                        }
                    }
                }
            }
        }
        match mode {
            ReplMode::Sync => tallies.push(("repl-sync", tally)),
            ReplMode::SemiSync => tallies.push(("repl-semi-sync", tally)),
            ReplMode::Async => tallies.push(("repl-async", tally)),
        }
    }

    let mut t = Table::new(
        "fault campaign (per fault kind)",
        &[
            "fault kind",
            "runs",
            "redo",
            "scrub",
            "scavenge",
            "=committed",
            "=previous",
            "=live",
            "scrubbed",
            "remapped",
            "max boot ms",
        ],
    );
    for (name, k) in &tallies {
        t.row(&[
            (*name).to_string(),
            k.scenarios.to_string(),
            k.redo.to_string(),
            k.scrub.to_string(),
            k.scavenge.to_string(),
            k.matched_committed.to_string(),
            k.matched_previous.to_string(),
            k.matched_live.to_string(),
            k.scrubbed.to_string(),
            k.remapped.to_string(),
            format!("{:.3}", k.max_boot_us as f64 / 1e3),
        ]);
    }
    println!();
    t.print();

    println!(
        "\n{} scenarios: {} redo / {} replica-scrub / {} scavenge; \
         {} sectors scrubbed, {} remapped; {} failures",
        overall.scenarios,
        overall.redo,
        overall.scrub,
        overall.scavenge,
        overall.scrubbed,
        overall.remapped,
        failures.len()
    );
    for f in &failures {
        println!("FAIL {f}");
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fault_campaign\",\n",
            "  \"workload\": \"makedo\",\n",
            "  \"scenarios\": {},\n",
            "  \"failures\": {},\n",
            "  \"rungs\": {{\"redo\": {}, \"replica_scrub\": {}, \"scavenge\": {}}},\n",
            "  \"matched\": {{\"committed\": {}, \"previous\": {}, \"live\": {}}},\n",
            "  \"scrubbed_sectors\": {},\n",
            "  \"remapped_sectors\": {},\n",
            "  \"max_boot_us\": {}\n",
            "}}\n"
        ),
        overall.scenarios,
        failures.len(),
        overall.redo,
        overall.scrub,
        overall.scavenge,
        overall.matched_committed,
        overall.matched_previous,
        overall.matched_live,
        overall.scrubbed,
        overall.remapped,
        overall.max_boot_us,
    );
    print!("\nJSON:\n{json}");

    // Campaign gates: every scenario recovers to a commit boundary and
    // every rung of the escalation ladder is exercised.
    assert!(failures.is_empty(), "{} scenario failures", failures.len());
    assert!(
        overall.redo >= 1 && overall.scrub >= 1 && overall.scavenge >= 1,
        "escalation ladder not fully exercised: redo={} scrub={} scavenge={}",
        overall.redo,
        overall.scrub,
        overall.scavenge
    );
    assert!(
        repl_scenarios >= 12,
        "replication block too small: {repl_scenarios} scenarios"
    );
    if smoke {
        println!(
            "\nsmoke OK: {} scenarios, all rungs exercised, zero failures",
            overall.scenarios
        );
    } else {
        assert!(
            overall.scenarios >= 200,
            "campaign too small: {} scenarios",
            overall.scenarios
        );
        std::fs::write("BENCH_fault_campaign.json", &json)
            .expect("write BENCH_fault_campaign.json");
        println!("\nwrote BENCH_fault_campaign.json");
    }
}
