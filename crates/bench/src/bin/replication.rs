//! `replication` — log-shipping replication bench (E-REPL).
//!
//! Drives a [`ReplSession`] (primary + simulated link + replica) under
//! the MakeDo workload in each acknowledgement mode and reports, per
//! mode:
//!
//! * **replication lag** percentiles (commit-seal to replica-apply, in
//!   simulated µs);
//! * **ack latency** percentiles (what the client pays per commit under
//!   the mode's durability point);
//! * **failover time** percentiles across crash trials at varying
//!   points of the script, with the promoted replica checked against
//!   the acknowledged commit-boundary [`MemFs`] models;
//! * **catch-up resync** outcomes: a partition healed by cursor replay
//!   and a longer one (tiny retention) forced onto the full-state
//!   transfer fallback.
//!
//! The loss-bound gates are asserted on every run: sync and semi-sync
//! lose **zero** acknowledged commits in every trial; async loses at
//! most `max_lag_frames` commit boundaries; both resync legs converge.
//!
//! `--smoke` runs a reduced grid for CI. The full run writes
//! `BENCH_replication.json`.

use cedar_bench::adapters::{CedarFsError, FsBackend, FsdVolume};
use cedar_bench::Table;
use cedar_disk::{CpuModel, Micros, SimDisk};
use cedar_fsd::{FsdConfig, ReplMode, ReplSession, ReplSessionConfig, ResyncKind};
use cedar_workload::steps::{run_step_backend, Step, WorkloadStats};
use cedar_workload::{makedo_workload, MakeDoParams, MemFs};
use std::collections::VecDeque;

fn config() -> FsdConfig {
    FsdConfig {
        nt_pages: 48,
        log_sectors: 128,
        cpu: CpuModel::FREE,
        ..FsdConfig::default()
    }
}

/// Largest file the bench volume accepts without churn (as in the
/// fault campaign); MakeDo sizes above this are clamped.
const MAX_FILE_BYTES: u64 = 2_500;

/// Measured steps between commits (the acknowledged boundaries).
const COMMIT_EVERY: usize = 7;

/// Commit-boundary snapshots kept for the failover oracle; must exceed
/// the async lag bound so the matched boundary is always retained.
const KEEP_BOUNDARIES: usize = 16;

fn script(smoke: bool) -> (Vec<Step>, Vec<Step>) {
    let (setup, measured) = makedo_workload(MakeDoParams {
        sources: 5,
        interfaces: 8,
        rounds: if smoke { 1 } else { 2 },
        seed: 17,
    });
    let clamp = |steps: Vec<Step>| {
        steps
            .into_iter()
            .map(|s| match s {
                Step::Create { name, bytes } => Step::Create {
                    name,
                    bytes: bytes.min(MAX_FILE_BYTES),
                },
                other => other,
            })
            .collect()
    };
    (clamp(setup), clamp(measured))
}

fn session_cfg(mode: ReplMode) -> ReplSessionConfig {
    ReplSessionConfig::for_mode(mode)
}

/// Replays `setup` on a fresh volume and its model, commits, and wraps
/// the pair in a replication session.
fn setup_session(
    mode: ReplMode,
    cfg: ReplSessionConfig,
    setup: &[Step],
) -> Result<(ReplSession, MemFs), String> {
    let mut v = FsdVolume::format(SimDisk::tiny(), config()).map_err(|e| format!("format: {e}"))?;
    let mut live = MemFs::default();
    let mut stats = WorkloadStats::default();
    for step in setup {
        run_step_backend(step, &mut v, &mut stats).map_err(|e| format!("setup: {e}"))?;
        run_step_backend(step, &mut live, &mut stats).map_err(|e| format!("model setup: {e}"))?;
    }
    v.sync().map_err(|e| format!("setup sync: {e}"))?;
    let s = ReplSession::new(v, config(), cfg).map_err(|e| format!("install ({mode:?}): {e}"))?;
    Ok((s, live))
}

/// True when the volume's visible state equals the model's.
fn matches_model(fs: &mut FsdVolume, model: &MemFs) -> bool {
    let mut m = model.clone();
    let mut want = match m.list("") {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut got = match FsBackend::list(fs, "") {
        Ok(g) => g,
        Err(_) => return false,
    };
    want.sort_by(|a, b| a.name.cmp(&b.name));
    got.sort_by(|a, b| a.name.cmp(&b.name));
    if want.len() != got.len() {
        return false;
    }
    for (w, g) in want.iter().zip(&got) {
        if w.name != g.name {
            return false;
        }
        let want_data = match m.read(&w.name) {
            Ok(d) => d,
            Err(_) => return false,
        };
        match FsBackend::read(fs, &g.name) {
            Ok(d) if d == want_data => {}
            _ => return false,
        }
    }
    true
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs `measured[..upto]` on the session's primary and the model,
/// committing every [`COMMIT_EVERY`] steps. Snapshots each
/// *acknowledged* boundary `(id, model)` into `boundaries`. Commit
/// errors on a downed link are tolerated (the boundary just is not
/// acknowledged); any other failure is fatal.
#[allow(clippy::too_many_arguments)]
fn drive(
    s: &mut ReplSession,
    live: &mut MemFs,
    measured: &[Step],
    upto: usize,
    boundaries: &mut VecDeque<(u64, MemFs)>,
    acked: &mut u64,
    ack_samples: &mut Vec<Micros>,
    link_errors: &mut u64,
) -> Result<(), String> {
    let mut stats = WorkloadStats::default();
    for (i, step) in measured.iter().take(upto).enumerate() {
        match run_step_backend(step, s.primary_mut(), &mut stats) {
            Ok(()) => {
                run_step_backend(step, live, &mut stats)
                    .map_err(|e| format!("model diverged on {step:?}: {e}"))?;
            }
            Err(CedarFsError::NoSpace) => {}
            Err(CedarFsError::NotFound(n)) if live.read(&n).is_err() => {}
            Err(e) => return Err(format!("step {step:?}: {e}")),
        }
        if i % COMMIT_EVERY == COMMIT_EVERY - 1 {
            let t0 = s.primary_mut().clock().now();
            match s.commit() {
                Ok(()) => {
                    ack_samples.push(s.primary_mut().clock().now() - t0);
                    *acked += 1;
                    boundaries.push_back((*acked, live.clone()));
                    while boundaries.len() > KEEP_BOUNDARIES {
                        boundaries.pop_front();
                    }
                }
                Err(e) if e.is_retryable() => {
                    // Durable on the primary, not acknowledged: the
                    // loss-bound oracle must not count it.
                    *link_errors += 1;
                }
                Err(e) => return Err(format!("commit: {e}")),
            }
        }
    }
    Ok(())
}

/// Finds which acknowledged boundary the promoted volume matches and
/// returns the loss in boundaries behind the newest acknowledged one.
fn promoted_loss(
    promoted: &mut FsdVolume,
    boundaries: &VecDeque<(u64, MemFs)>,
    acked: u64,
) -> Result<u64, String> {
    if acked == 0 {
        return Ok(0);
    }
    for (id, model) in boundaries.iter().rev() {
        if matches_model(promoted, model) {
            return Ok(acked - id);
        }
    }
    Err("promoted replica matches no acknowledged boundary".into())
}

/// Per-mode aggregate for the table and the JSON.
#[derive(Default)]
struct ModeReport {
    commits: u64,
    link_errors: u64,
    lag: Vec<u64>,
    ack: Vec<u64>,
    failover: Vec<u64>,
    trials: u64,
    max_loss: u64,
    resync_replay_us: u64,
    resync_replay_frames: u64,
    resync_full_us: u64,
    resync_full_sectors: u64,
}

/// Steady-state run: full script, healthy link; collects lag and ack
/// percentile samples, then one failover trial at the end.
fn steady_state(
    mode: ReplMode,
    setup: &[Step],
    measured: &[Step],
    rep: &mut ModeReport,
) -> Result<(), String> {
    let (mut s, mut live) = setup_session(mode, session_cfg(mode), setup)?;
    let mut boundaries = VecDeque::new();
    let mut acked = 0;
    drive(
        &mut s,
        &mut live,
        measured,
        measured.len(),
        &mut boundaries,
        &mut acked,
        &mut rep.ack,
        &mut rep.link_errors,
    )?;
    // Final commit so the tail of the script is acknowledged too.
    if s.commit().is_ok() {
        acked += 1;
        boundaries.push_back((acked, live.clone()));
    }
    rep.commits += acked;
    rep.lag.extend(s.lag_samples().iter().copied());
    let out = s.failover().map_err(|e| format!("failover: {e}"))?;
    rep.failover.push(out.failover_us);
    rep.trials += 1;
    let mut v = out.volume;
    v.verify().map_err(|e| format!("promoted verify: {e}"))?;
    let loss = promoted_loss(&mut v, &boundaries, acked)?;
    rep.max_loss = rep.max_loss.max(loss);
    Ok(())
}

/// Crash trial: run a prefix of the script, then fail the primary over
/// (under `partition` the link is down for the trailing commits first,
/// so async accumulates acknowledged-but-unshipped lag).
fn failover_trial(
    mode: ReplMode,
    setup: &[Step],
    measured: &[Step],
    upto: usize,
    partition: bool,
    rep: &mut ModeReport,
) -> Result<(), String> {
    let mut cfg = session_cfg(mode);
    cfg.max_lag_frames = 4;
    let (mut s, mut live) = setup_session(mode, cfg, setup)?;
    let mut boundaries = VecDeque::new();
    let mut acked = 0;
    let split = if partition {
        upto.saturating_sub(20)
    } else {
        upto
    };
    drive(
        &mut s,
        &mut live,
        measured,
        split,
        &mut boundaries,
        &mut acked,
        &mut rep.ack,
        &mut rep.link_errors,
    )?;
    if partition {
        s.link_mut().force_down();
        let rest: Vec<Step> = measured[split..upto].to_vec();
        drive(
            &mut s,
            &mut live,
            &rest,
            rest.len(),
            &mut boundaries,
            &mut acked,
            &mut rep.ack,
            &mut rep.link_errors,
        )?;
    }
    rep.commits += acked;
    let out = s.failover().map_err(|e| format!("failover: {e}"))?;
    rep.failover.push(out.failover_us);
    rep.trials += 1;
    let mut v = out.volume;
    v.verify().map_err(|e| format!("promoted verify: {e}"))?;
    let loss = promoted_loss(&mut v, &boundaries, acked)?;
    rep.max_loss = rep.max_loss.max(loss);
    Ok(())
}

/// Partition + heal: cursor replay resync, then a lapped-log partition
/// (tiny retention) that must fall back to full-state transfer. Both
/// must reconverge, serve later commits, and fail over losslessly.
fn resync_scenarios(
    mode: ReplMode,
    setup: &[Step],
    measured: &[Step],
    rep: &mut ModeReport,
) -> Result<(), String> {
    // Leg 1: short partition, cursor replay.
    let mut cfg = session_cfg(mode);
    cfg.max_lag_frames = 64;
    cfg.retain_frames = 64;
    let (mut s, mut live) = setup_session(mode, cfg, setup)?;
    let mut boundaries = VecDeque::new();
    let mut acked = 0;
    let mid = measured.len() / 2;
    drive(
        &mut s,
        &mut live,
        measured,
        mid,
        &mut boundaries,
        &mut acked,
        &mut rep.ack,
        &mut rep.link_errors,
    )?;
    s.link_mut().force_down();
    let during: Vec<Step> = measured[mid..mid + 21.min(measured.len() - mid)].to_vec();
    drive(
        &mut s,
        &mut live,
        &during,
        during.len(),
        &mut boundaries,
        &mut acked,
        &mut rep.ack,
        &mut rep.link_errors,
    )?;
    let out = s.resync().map_err(|e| format!("resync: {e}"))?;
    if out.kind != ResyncKind::CursorReplay {
        return Err(format!("expected cursor replay, got {:?}", out.kind));
    }
    if s.frames_behind() != 0 {
        return Err("cursor replay did not converge".into());
    }
    rep.resync_replay_us = rep.resync_replay_us.max(out.resync_us);
    rep.resync_replay_frames += out.frames;
    // Everything durable on the primary has now shipped: snapshot.
    acked += 1;
    boundaries.push_back((acked, live.clone()));
    rep.commits += acked;
    let out = s.failover().map_err(|e| format!("failover: {e}"))?;
    let mut v = out.volume;
    v.verify().map_err(|e| format!("verify: {e}"))?;
    let loss = promoted_loss(&mut v, &boundaries, acked)?;
    if loss != 0 {
        return Err(format!("loss {loss} after converged resync"));
    }

    // Leg 2: retention of 2 frames, long partition — the log laps the
    // replica's cursor and only a full-state transfer reconverges.
    let mut cfg = session_cfg(mode);
    cfg.max_lag_frames = 64;
    cfg.retain_frames = 2;
    let (mut s, mut live) = setup_session(mode, cfg, setup)?;
    let mut boundaries = VecDeque::new();
    let mut acked = 0;
    s.link_mut().force_down();
    drive(
        &mut s,
        &mut live,
        measured,
        measured.len().min(63),
        &mut boundaries,
        &mut acked,
        &mut rep.ack,
        &mut rep.link_errors,
    )?;
    if !s.needs_full_transfer() {
        return Err("retention bound never lapped the cursor".into());
    }
    let out = s.resync().map_err(|e| format!("full resync: {e}"))?;
    if out.kind != ResyncKind::FullTransfer {
        return Err(format!("expected full transfer, got {:?}", out.kind));
    }
    if s.frames_behind() != 0 {
        return Err("full transfer did not converge".into());
    }
    rep.resync_full_us = rep.resync_full_us.max(out.resync_us);
    rep.resync_full_sectors += out.sectors;
    acked += 1;
    boundaries.push_back((acked, live.clone()));
    rep.commits += acked;
    let out = s.failover().map_err(|e| format!("failover: {e}"))?;
    let mut v = out.volume;
    v.verify().map_err(|e| format!("verify: {e}"))?;
    let loss = promoted_loss(&mut v, &boundaries, acked)?;
    if loss != 0 {
        return Err(format!("loss {loss} after full-transfer resync"));
    }
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (setup, measured) = script(smoke);

    // Crash points for the failover trials, as measured-step prefixes.
    let n = measured.len();
    let crash_points: Vec<usize> = if smoke {
        vec![n / 2, n]
    } else {
        vec![n / 4, n / 2, 3 * n / 4, n - 10, n]
    };

    let mut failures: Vec<String> = Vec::new();
    let mut reports: Vec<(ReplMode, ModeReport)> = Vec::new();

    for mode in ReplMode::ALL {
        let mut rep = ModeReport::default();
        if let Err(e) = steady_state(mode, &setup, &measured, &mut rep) {
            failures.push(format!("{} steady-state: {e}", mode.name()));
        }
        for &upto in &crash_points {
            for partition in [false, true] {
                if let Err(e) = failover_trial(mode, &setup, &measured, upto, partition, &mut rep) {
                    failures.push(format!(
                        "{} trial upto={upto} partition={partition}: {e}",
                        mode.name()
                    ));
                }
            }
        }
        if let Err(e) = resync_scenarios(mode, &setup, &measured, &mut rep) {
            failures.push(format!("{} resync: {e}", mode.name()));
        }
        rep.lag.sort_unstable();
        rep.ack.sort_unstable();
        rep.failover.sort_unstable();
        reports.push((mode, rep));
    }

    let mut t = Table::new(
        "replication (per mode)",
        &[
            "mode",
            "commits",
            "lag p50 µs",
            "lag p99 µs",
            "ack p50 µs",
            "ack p99 µs",
            "failover p50 µs",
            "failover p99 µs",
            "max loss",
            "replay µs",
            "full-xfer µs",
        ],
    );
    for (mode, r) in &reports {
        t.row(&[
            mode.name().to_string(),
            r.commits.to_string(),
            pct(&r.lag, 0.5).to_string(),
            pct(&r.lag, 0.99).to_string(),
            pct(&r.ack, 0.5).to_string(),
            pct(&r.ack, 0.99).to_string(),
            pct(&r.failover, 0.5).to_string(),
            pct(&r.failover, 0.99).to_string(),
            r.max_loss.to_string(),
            r.resync_replay_us.to_string(),
            r.resync_full_us.to_string(),
        ]);
    }
    println!();
    t.print();
    for f in &failures {
        println!("FAIL {f}");
    }

    let mut modes_json = String::new();
    for (i, (mode, r)) in reports.iter().enumerate() {
        if i > 0 {
            modes_json.push_str(",\n");
        }
        modes_json.push_str(&format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"commits\": {},\n",
                "      \"link_errors\": {},\n",
                "      \"lag_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
                "      \"ack_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}},\n",
                "      \"failover_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"trials\": {}}},\n",
                "      \"max_loss_boundaries\": {},\n",
                "      \"resync\": {{\"replay_us\": {}, \"replay_frames\": {}, \"full_us\": {}, \"full_sectors\": {}}}\n",
                "    }}"
            ),
            mode.name(),
            r.commits,
            r.link_errors,
            pct(&r.lag, 0.5),
            pct(&r.lag, 0.9),
            pct(&r.lag, 0.99),
            pct(&r.ack, 0.5),
            pct(&r.ack, 0.9),
            pct(&r.ack, 0.99),
            pct(&r.failover, 0.5),
            pct(&r.failover, 0.9),
            pct(&r.failover, 0.99),
            r.trials,
            r.max_loss,
            r.resync_replay_us,
            r.resync_replay_frames,
            r.resync_full_us,
            r.resync_full_sectors,
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"replication\",\n",
            "  \"workload\": \"makedo\",\n",
            "  \"failures\": {},\n",
            "  \"modes\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        failures.len(),
        modes_json,
    );
    print!("\nJSON:\n{json}");

    // The gates: every scenario passes; the per-mode loss bounds hold
    // (zero acknowledged loss for sync and semi-sync, bounded lag for
    // async); both resync legs converged in every mode.
    assert!(failures.is_empty(), "{} scenario failures", failures.len());
    for (mode, r) in &reports {
        match mode {
            ReplMode::Sync | ReplMode::SemiSync => {
                assert_eq!(r.max_loss, 0, "{} lost acknowledged commits", mode.name())
            }
            ReplMode::Async => assert!(
                r.max_loss <= 4,
                "async loss {} exceeds the lag bound",
                r.max_loss
            ),
        }
        assert!(
            r.resync_replay_frames > 0,
            "{}: no cursor replay",
            mode.name()
        );
        assert!(
            r.resync_full_sectors > 0,
            "{}: no full transfer",
            mode.name()
        );
    }

    if smoke {
        println!("\nsmoke OK: all modes within loss bounds, both resync legs converged");
    } else {
        std::fs::write("BENCH_replication.json", &json).expect("write BENCH_replication.json");
        println!("\nwrote BENCH_replication.json");
    }
}
