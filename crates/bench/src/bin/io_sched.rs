//! E-IOSCHED — rotation-aware scheduled submission vs naive in-order
//! submission on the MakeDo commit + writeback path.
//!
//! The §6 performance model prices every disk access as seek plus
//! rotation plus transfer (lost revolutions when the head just misses).
//! The
//! group commit's hot paths — the log force, the third-entry home-page
//! writeback, the shutdown sweep — all submit *batches* of requests, so
//! the `cedar_disk::sched` C-SCAN scheduler gets to reorder and coalesce
//! them where the in-order baseline pays a full seek + rotational wait
//! per request (both name-table replicas per page, ping-ponging between
//! the two copy regions). This bench runs the identical deterministic
//! MakeDo multi-client workload under both policies and attributes the
//! difference with the per-component breakdown.
//!
//! `--smoke` runs a reduced sweep for CI and only gates on "scheduled is
//! not slower"; the full run writes `BENCH_io_sched.json` and asserts
//! the ≥ 15% improvement the design is sized for.

use cedar_bench::driver::{drive_clients, MultiClientRun};
use cedar_bench::report::{disk_breakdown, disk_breakdown_json, f2};
use cedar_bench::Table;
use cedar_disk::{DiskStats, IoPolicy, SimClock, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume, SchedConfig};
use cedar_workload::{multi_client_workload, MultiClientParams};

fn policy_name(policy: IoPolicy) -> &'static str {
    match policy {
        IoPolicy::InOrder => "in_order",
        IoPolicy::Cscan => "cscan",
    }
}

/// One measured run of a policy.
struct PolicyRun {
    /// Disk-time delta over the whole run (setup, measured MakeDo phase,
    /// shutdown) — dominated by client reads and in-place data writes,
    /// which no scheduling can change.
    total: DiskStats,
    /// Disk-time delta over the commit + writeback window alone: the
    /// final group-commit force plus the home-page sweep (dirty
    /// name-table pages in both replicas, leaders, VAM) that `shutdown`
    /// performs. This is the batched path the scheduler targets and the
    /// number the ≥ 15% acceptance gate is on.
    commit_writeback: DiskStats,
    run: MultiClientRun,
}

/// One full run: format, MakeDo through the commit scheduler, controlled
/// shutdown. Identical op-for-op across policies.
fn run_policy(policy: IoPolicy, clients: usize, rounds: usize) -> PolicyRun {
    let vol = FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            io_policy: policy,
            ..Default::default()
        },
    )
    .expect("format FSD");
    let before = vol.disk_stats();
    let scripts = multi_client_workload(MultiClientParams {
        clients,
        makedo: cedar_workload::MakeDoParams {
            rounds,
            ..Default::default()
        },
        ..Default::default()
    });
    let (mut vol, run) =
        drive_clients(vol, SchedConfig::default(), &scripts).expect("drive clients");
    let before_cw = vol.disk_stats();
    vol.shutdown().expect("shutdown");
    let after = vol.disk_stats();
    PolicyRun {
        total: after.since(&before),
        commit_writeback: after.since(&before_cw),
        run,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, rounds) = if smoke { (4, 1) } else { (8, 2) };
    println!("I/O scheduling: C-SCAN + coalescing vs in-order submission");
    println!("({clients} MakeDo clients, simulated T-300, group commit + writeback + shutdown)");

    let base = run_policy(IoPolicy::InOrder, clients, rounds);
    let sched = run_policy(IoPolicy::Cscan, clients, rounds);
    assert_eq!(
        base.run.stats, sched.run.stats,
        "both policies must run the identical workload"
    );

    let mut t = Table::new(
        "Simulated disk time, MakeDo under group commit (§6 components)",
        &[
            "policy",
            "window",
            "busy (s)",
            "seek (s)",
            "rotation (s)",
            "lost-rev (s)",
            "transfer (s)",
            "ops",
            "seeks",
        ],
    );
    for (name, window, s) in [
        ("in-order", "whole run", &base.total),
        ("c-scan", "whole run", &sched.total),
        ("in-order", "commit+writeback", &base.commit_writeback),
        ("c-scan", "commit+writeback", &sched.commit_writeback),
    ] {
        t.row(&[
            name.to_string(),
            window.to_string(),
            format!("{:.3}", s.busy_us() as f64 / 1e6),
            format!("{:.3}", s.seek_us as f64 / 1e6),
            format!("{:.3}", s.rotation_us as f64 / 1e6),
            format!("{:.3}", s.lost_rev_us as f64 / 1e6),
            format!("{:.3}", s.transfer_us as f64 / 1e6),
            s.total_ops().to_string(),
            s.seeks.to_string(),
        ]);
    }
    t.print();
    println!();
    println!(
        "{}",
        disk_breakdown("in-order commit+writeback", &base.commit_writeback)
    );
    println!(
        "{}",
        disk_breakdown("c-scan   commit+writeback", &sched.commit_writeback)
    );

    let pct_lower = |b: &DiskStats, s: &DiskStats| {
        100.0 * (1.0 - s.busy_us() as f64 / b.busy_us().max(1) as f64)
    };
    let improvement = pct_lower(&base.commit_writeback, &sched.commit_writeback);
    let total_improvement = pct_lower(&base.total, &sched.total);
    println!(
        "\nscheduled busy time: {}% lower on commit+writeback, {}% lower whole-run",
        f2(improvement),
        f2(total_improvement)
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"io_sched\",\n",
            "  \"workload\": \"makedo\",\n",
            "  \"clients\": {},\n",
            "  \"ops\": {},\n",
            "  \"commit_writeback_improvement_pct\": {:.2},\n",
            "  \"whole_run_improvement_pct\": {:.2},\n",
            "  \"{}\": {{\"whole_run\": {}, \"commit_writeback\": {}}},\n",
            "  \"{}\": {{\"whole_run\": {}, \"commit_writeback\": {}}}\n",
            "}}\n"
        ),
        clients,
        base.run.report.ops,
        improvement,
        total_improvement,
        policy_name(IoPolicy::InOrder),
        disk_breakdown_json(&base.total),
        disk_breakdown_json(&base.commit_writeback),
        policy_name(IoPolicy::Cscan),
        disk_breakdown_json(&sched.total),
        disk_breakdown_json(&sched.commit_writeback),
    );
    print!("\nJSON:\n{json}");

    if smoke {
        // CI gate: the scheduler must never regress below the baseline.
        assert!(
            sched.commit_writeback.busy_us() <= base.commit_writeback.busy_us()
                && sched.total.busy_us() <= base.total.busy_us(),
            "scheduled busy time regressed above the in-order baseline"
        );
        println!("\nsmoke OK: scheduled <= in-order");
    } else {
        std::fs::write("BENCH_io_sched.json", &json).expect("write BENCH_io_sched.json");
        println!("\nwrote BENCH_io_sched.json");
        assert!(
            improvement >= 15.0,
            "expected >= 15% commit+writeback improvement, measured {improvement:.2}%"
        );
    }
}
