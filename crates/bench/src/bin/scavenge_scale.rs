//! E-SCAVENGE — recovery-scan scaling: serial vs pFSCK-style parallel.
//!
//! The paper's horror story is the hour-long CFS scavenge of a 300 MB
//! volume (§2, Table 2); the north star is millions of files. This
//! bench sweeps file count on scaled Trident-class volumes and times
//! the two whole-volume recovery scans both ways:
//!
//! * **FSD scavenge** (recovery rung 3): clean shutdown, then both log
//!   meta replicas destroyed — boot must rebuild the name table and
//!   the VAM from leader pages;
//! * **FSD VAM reconstruction** (rung 1 after a crash): log redo
//!   succeeds but the free map must be rebuilt from the name table.
//!
//! Serial runs use one decode worker; parallel runs spread decode,
//! entry verification and free-map sharding across [`WORKERS`] CPU
//! workers while the single simulated spindle keeps I/O serial. Both
//! legs boot clones of the *same* wounded disk, and the bench asserts
//! the recovered state is identical before trusting the times. CFS
//! rows show the same effect on the label-interpretation scavenger.
//!
//! `--smoke` runs one small row per file system (equality asserts
//! only); the full run writes `BENCH_scavenge_scale.json` and gates
//! ≥2× combined speedup at the largest file count. `--full` adds the
//! million-file row.

use cedar_bench::{ms, FsBackend, Table};
use cedar_cfs::{CfsConfig, CfsVolume};
use cedar_disk::{DiskGeometry, DiskTiming, SimClock, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume, RecoveryReport, RecoveryRung};
use cedar_workload::populate_scale;

/// Decode/verify workers for the parallel legs.
const WORKERS: usize = 8;

/// Bytes per populated file: one data sector next to each leader.
const FILE_BYTES: usize = cedar_disk::SECTOR_BYTES;

/// Combined scavenge + VAM-rebuild speedup gate at the largest row
/// (×100, so 200 = 2×).
const SPEEDUP_FLOOR_X100: u64 = 200;

/// Name-table pages for a target population (≈11 entries per 1 KB
/// page, plus internal nodes and insert-time slack).
fn nt_pages_for(files: usize) -> u32 {
    (files / 6 + 64) as u32
}

/// A Trident-class geometry (19 heads × 38 sectors, T-300 timing) with
/// enough cylinders for `files` leader+data pairs plus both name-table
/// copies, the log, and slack.
fn scaled_trident(files: usize) -> DiskGeometry {
    let needed = files as u32 * 2 + nt_pages_for(files) * 2 * 2 + 4096;
    let per_cylinder = 19 * 38;
    DiskGeometry {
        cylinders: needed.div_ceil(per_cylinder).max(64),
        heads: 19,
        sectors_per_track: 38,
    }
}

fn fsd_config(files: usize, workers: usize) -> FsdConfig {
    FsdConfig {
        nt_pages: nt_pages_for(files),
        scavenge_workers: workers,
        ..FsdConfig::default()
    }
}

/// One population, four boots: (serial, parallel) × (scavenge rung,
/// VAM-rebuild rung), all from clones of the same wounded disks.
struct FsdRow {
    files: usize,
    serial_scavenge_us: u64,
    parallel_scavenge_us: u64,
    serial_vam_us: u64,
    parallel_vam_us: u64,
    host_secs: f64,
}

impl FsdRow {
    fn speedup_x100(&self) -> u64 {
        let serial = self.serial_scavenge_us + self.serial_vam_us;
        let parallel = self.parallel_scavenge_us + self.parallel_vam_us;
        serial * 100 / parallel.max(1)
    }
}

fn boot_expecting(
    disk: SimDisk,
    config: FsdConfig,
    rung: RecoveryRung,
    files: usize,
) -> (FsdVolume, RecoveryReport) {
    let (mut vol, report) = FsdVolume::boot(disk, config).expect("boot");
    assert_eq!(report.rung, rung, "expected recovery rung {rung:?}");
    let listed = FsBackend::list(&mut vol, "pop").expect("list").len();
    assert_eq!(listed, files, "recovered volume lost files");
    (vol, report)
}

fn fsd_row(files: usize) -> FsdRow {
    let host_start = std::time::Instant::now();
    let geometry = scaled_trident(files);
    let disk = SimDisk::new(geometry, DiskTiming::TRIDENT_T300, SimClock::new());
    let mut vol = FsdVolume::format(disk, fsd_config(files, 1)).expect("format");
    populate_scale(&mut vol, "pop", files, FILE_BYTES).expect("populate");
    vol.force().expect("force");

    // Crash leg: the log replays but the VAM must be rebuilt (rung 1).
    let mut crash_disk = vol.disk_mut().clone();
    crash_disk.crash_now();
    crash_disk.reboot();

    // Scavenge leg: clean shutdown, then both log meta replicas die.
    vol.shutdown().expect("shutdown");
    let meta_a = vol.layout().log_start;
    let meta_b = vol.layout().log_start + 2;
    let mut scav_disk = vol.into_disk();
    scav_disk.damage_sector(meta_a);
    scav_disk.damage_sector(meta_b);
    scav_disk.reboot();

    let parallel_crash = crash_disk.clone();
    let (_, sr) = boot_expecting(crash_disk, fsd_config(files, 1), RecoveryRung::Redo, files);
    assert!(sr.vam_reconstructed, "crash leg must rebuild the VAM");
    let (_, pr) = boot_expecting(
        parallel_crash,
        fsd_config(files, WORKERS),
        RecoveryRung::Redo,
        files,
    );
    assert!(pr.vam_reconstructed);
    let (serial_vam_us, parallel_vam_us) = (sr.vam_us, pr.vam_us);

    let parallel_scav = scav_disk.clone();
    let (_, sr) = boot_expecting(
        scav_disk,
        fsd_config(files, 1),
        RecoveryRung::Scavenge,
        files,
    );
    let (_, pr) = boot_expecting(
        parallel_scav,
        fsd_config(files, WORKERS),
        RecoveryRung::Scavenge,
        files,
    );
    let (ss, ps) = (
        sr.scavenge.as_ref().expect("serial scavenge summary"),
        pr.scavenge.as_ref().expect("parallel scavenge summary"),
    );
    assert_eq!(ss.leaders_found, ps.leaders_found);
    assert_eq!(ss.files_rebuilt, ps.files_rebuilt);
    assert_eq!(ss.tombstones, ps.tombstones);
    assert_eq!(ss.unreadable_sectors, ps.unreadable_sectors);
    assert_eq!(ss.losses, ps.losses);

    FsdRow {
        files,
        serial_scavenge_us: sr.scavenge_us,
        parallel_scavenge_us: pr.scavenge_us,
        serial_vam_us,
        parallel_vam_us,
        host_secs: host_start.elapsed().as_secs_f64(),
    }
}

struct CfsRow {
    files: usize,
    serial_us: u64,
    parallel_us: u64,
}

fn cfs_config(files: usize, workers: usize) -> CfsConfig {
    CfsConfig {
        nt_pages: nt_pages_for(files),
        cpu: cedar_disk::CpuModel::DORADO,
        scavenge_workers: workers,
    }
}

fn cfs_row(files: usize) -> CfsRow {
    let geometry = scaled_trident(files);
    let disk = SimDisk::new(geometry, DiskTiming::TRIDENT_T300, SimClock::new());
    let mut vol = CfsVolume::format(disk, cfs_config(files, 1)).expect("format");
    populate_scale(&mut vol, "pop", files, FILE_BYTES).expect("populate");
    let mut disk = vol.into_disk();
    disk.crash_now();
    disk.reboot();
    let parallel_disk = disk.clone();

    let (mut serial, loaded) = CfsVolume::boot(disk, cfs_config(files, 1)).expect("boot");
    assert!(!loaded, "crash must leave the name table unloadable");
    let sr = serial.scavenge().expect("serial scavenge");
    let (mut parallel, _) =
        CfsVolume::boot(parallel_disk, cfs_config(files, WORKERS)).expect("boot");
    let pr = parallel.scavenge().expect("parallel scavenge");

    assert_eq!(sr.files_recovered, pr.files_recovered);
    assert_eq!(sr.damaged_headers, pr.damaged_headers);
    assert_eq!(sr.orphan_sectors, pr.orphan_sectors);
    assert_eq!(sr.ios, pr.ios);
    assert_eq!(sr.files_recovered, files);

    CfsRow {
        files,
        serial_us: sr.duration_us,
        parallel_us: pr.duration_us,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");

    let fsd_counts: &[usize] = if smoke {
        &[400]
    } else if full {
        &[1_000, 10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    let cfs_counts: &[usize] = if smoke { &[200] } else { &[1_000, 5_000] };

    println!(
        "Scavenge & VAM-rebuild scaling, serial vs {WORKERS} workers \
         (single simulated spindle; times are simulated)"
    );

    let mut fsd_rows = Vec::new();
    let mut t = Table::new(
        "FSD recovery scans vs population",
        &[
            "files",
            "scavenge serial",
            "scavenge parallel",
            "VAM serial",
            "VAM parallel",
            "combined speedup",
            "host s",
        ],
    );
    for &files in fsd_counts {
        let row = fsd_row(files);
        t.row(&[
            row.files.to_string(),
            format!("{:.1} ms", ms(row.serial_scavenge_us)),
            format!("{:.1} ms", ms(row.parallel_scavenge_us)),
            format!("{:.1} ms", ms(row.serial_vam_us)),
            format!("{:.1} ms", ms(row.parallel_vam_us)),
            format!("{:.2}x", row.speedup_x100() as f64 / 100.0),
            format!("{:.1}", row.host_secs),
        ]);
        fsd_rows.push(row);
    }
    t.print();

    let mut cfs_rows = Vec::new();
    let mut t = Table::new(
        "CFS label-interpretation scavenge",
        &["files", "serial", "parallel", "speedup"],
    );
    for &files in cfs_counts {
        let row = cfs_row(files);
        t.row(&[
            row.files.to_string(),
            format!("{:.1} ms", ms(row.serial_us)),
            format!("{:.1} ms", ms(row.parallel_us)),
            format!(
                "{:.2}x",
                row.serial_us as f64 / row.parallel_us.max(1) as f64
            ),
        ]);
        cfs_rows.push(row);
    }
    t.print();

    if smoke {
        println!("\nsmoke OK: parallel recovery scans match serial at every row");
        return;
    }

    let largest = fsd_rows.last().expect("rows");
    let gate = largest.speedup_x100();
    assert!(
        gate >= SPEEDUP_FLOOR_X100,
        "combined scavenge+VAM speedup at {} files is {}.{:02}x, below the \
         {SPEEDUP_FLOOR_X100}/100 floor",
        largest.files,
        gate / 100,
        gate % 100,
    );

    let mut json = String::from("{\n  \"bench\": \"scavenge_scale\",\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str("  \"fsd\": [\n");
    for (i, r) in fsd_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"files\": {}, \"serial_scavenge_us\": {}, \
             \"parallel_scavenge_us\": {}, \"serial_vam_us\": {}, \
             \"parallel_vam_us\": {}, \"speedup_x100\": {}}}{}\n",
            r.files,
            r.serial_scavenge_us,
            r.parallel_scavenge_us,
            r.serial_vam_us,
            r.parallel_vam_us,
            r.speedup_x100(),
            if i + 1 == fsd_rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"cfs\": [\n");
    for (i, r) in cfs_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"files\": {}, \"serial_us\": {}, \"parallel_us\": {}, \
             \"speedup_x100\": {}}}{}\n",
            r.files,
            r.serial_us,
            r.parallel_us,
            r.serial_us * 100 / r.parallel_us.max(1),
            if i + 1 == cfs_rows.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"gate\": {{\"largest_files\": {}, \"speedup_x100\": {}, \
         \"floor_x100\": {SPEEDUP_FLOOR_X100}}}\n}}\n",
        largest.files, gate,
    ));
    std::fs::write("BENCH_scavenge_scale.json", json).expect("write BENCH_scavenge_scale.json");
    println!(
        "\nwrote BENCH_scavenge_scale.json (largest row: {} files, {:.2}x)",
        largest.files,
        gate as f64 / 100.0
    );
}
