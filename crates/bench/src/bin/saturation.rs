//! E-SAT — group-commit saturation: log forces per operation vs client
//! count.
//!
//! §5.4: "if a log force is done when other transactions are trying to
//! commit, … all of the transactions that were committing during this
//! period are written to the log together, and the log is only forced
//! once for all of these transactions." One interactive client commits
//! a handful of operations per half-second window, so each force is
//! amortized over few operations; as more clients share the volume,
//! each window batches more work and the forces-per-operation curve
//! falls roughly as 1/N — the effect this sweep demonstrates on the
//! simulated clock, 1 to 64 clients, fully deterministically.
//!
//! Output: a human table plus a machine-readable JSON document
//! (hand-rolled — the build environment has no serde).

use cedar_bench::driver::{drive_clients, MultiClientRun};
use cedar_bench::report::{disk_breakdown, disk_breakdown_json, f2};
use cedar_bench::Table;
use cedar_disk::{DiskStats, SimClock, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume, SchedConfig};
use cedar_workload::{multi_client_workload, MultiClientParams};

const CLIENTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn volume() -> FsdVolume {
    FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            // A generous log (§5.4: "a bigger log … improves these
            // factors"): the batch bound stays above what 64 clients
            // accumulate per window, so the window — not the log —
            // paces commits across the whole sweep.
            log_sectors: 12_288,
            ..Default::default()
        },
    )
    .expect("format FSD")
}

fn run_for(clients: usize) -> (MultiClientRun, DiskStats) {
    let scripts = multi_client_workload(MultiClientParams {
        clients,
        ..Default::default()
    });
    let (vol, run) =
        drive_clients(volume(), SchedConfig::default(), &scripts).expect("drive clients");
    (run, vol.disk_stats())
}

fn json_row(clients: usize, r: &MultiClientRun, disk: &DiskStats) -> String {
    let rep = &r.report;
    format!(
        concat!(
            "    {{\"clients\": {}, \"ops\": {}, \"log_forces\": {}, ",
            "\"forces_per_op\": {:.6}, ",
            "\"window_settles\": {}, \"backpressure_settles\": {}, ",
            "\"internal_settles\": {}, \"empty_windows\": {}, ",
            "\"batch_mean\": {:.3}, \"batch_max\": {}, ",
            "\"latency_us\": {{\"mean\": {:.1}, \"p50\": {}, \"p90\": {}, ",
            "\"p99\": {}, \"max\": {}}}, \"duration_s\": {:.3}, \"disk\": {}}}"
        ),
        clients,
        rep.ops,
        rep.log_forces,
        rep.forces_per_op,
        rep.window_settles,
        rep.backpressure_settles,
        rep.internal_settles,
        rep.empty_windows,
        rep.batch_mean,
        rep.batch_max,
        rep.latency.mean_us,
        rep.latency.p50_us,
        rep.latency.p90_us,
        rep.latency.p99_us,
        rep.latency.max_us,
        r.duration_us as f64 / 1e6,
        disk_breakdown_json(disk),
    )
}

fn main() {
    println!("Group-commit saturation: 1 to 64 MakeDo clients on one FSD volume");
    println!("(0.5 s commit window, simulated T-300, Dorado CPU costs)");

    let runs: Vec<(usize, MultiClientRun, DiskStats)> = CLIENTS
        .iter()
        .map(|&n| {
            let (run, disk) = run_for(n);
            (n, run, disk)
        })
        .collect();

    let mut t = Table::new(
        "Log forces per metadata operation vs concurrency (§5.4)",
        &[
            "clients",
            "ops",
            "forces",
            "forces/op",
            "batch mean",
            "batch max",
            "p50 lat (ms)",
            "p99 lat (ms)",
        ],
    );
    for (n, r, _) in &runs {
        t.row(&[
            n.to_string(),
            r.report.ops.to_string(),
            r.report.log_forces.to_string(),
            format!("{:.4}", r.report.forces_per_op),
            f2(r.report.batch_mean),
            r.report.batch_max.to_string(),
            f2(r.report.latency.p50_us as f64 / 1000.0),
            f2(r.report.latency.p99_us as f64 / 1000.0),
        ]);
    }
    t.print();
    println!();
    for (n, _, disk) in &runs {
        println!("{}", disk_breakdown(&format!("{n:>2} clients"), disk));
    }

    println!("\nJSON:");
    println!("{{");
    println!("  \"bench\": \"saturation\",");
    println!("  \"window_us\": 500000,");
    println!("  \"rows\": [");
    for (i, (n, r, disk)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        println!("{}{}", json_row(*n, r, disk), comma);
    }
    println!("  ]");
    println!("}}");

    // The claim under test: amortization strictly improves with
    // concurrency across the whole 1 → 64 sweep.
    for pair in runs.windows(2) {
        let (n0, r0, _) = &pair[0];
        let (n1, r1, _) = &pair[1];
        assert!(
            r1.report.forces_per_op < r0.report.forces_per_op,
            "forces/op must fall {} → {} clients ({:.4} vs {:.4})",
            n0,
            n1,
            r0.report.forces_per_op,
            r1.report.forces_per_op,
        );
    }
    println!("\nforces/op falls strictly monotonically from 1 through 64 clients.");
}
