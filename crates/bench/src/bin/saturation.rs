//! E-SAT — group-commit saturation, simulated and threaded.
//!
//! §5.4: "if a log force is done when other transactions are trying to
//! commit, … all of the transactions that were committing during this
//! period are written to the log together, and the log is only forced
//! once for all of these transactions." One interactive client commits
//! a handful of operations per half-second window, so each force is
//! amortized over few operations; as more clients share the volume,
//! each window batches more work and the forces-per-operation curve
//! falls roughly as 1/N.
//!
//! The bench demonstrates this twice:
//!
//! 1. **Simulated sweep** (1 → 64 clients): the deterministic
//!    interleaved driver on the simulated clock — reproduces the
//!    paper's amortization curve exactly, every run.
//! 2. **Threaded sweep** (1 → 256 → 1024 OS threads): real
//!    `std::thread` clients holding owned `Session`s on one
//!    [`FsdEngine`], whose log-writer thread forms group-commit epochs
//!    and paces simulated disk time into wall time. This answers the
//!    question the simulation cannot: throughput must keep climbing
//!    with thread count until `DiskStats` shows the *disk* — not a
//!    lock — is the bottleneck (busy ≥ 90 % of wall), and forces/op at
//!    256 threads must match the simulated 64-client amortization
//!    (≤ 0.021).
//!
//! Output: human tables plus machine-readable JSON (hand-rolled — the
//! build environment has no serde). The full run writes
//! `BENCH_saturation_mt.json`; `--smoke` (CI) runs the full simulated
//! sweep plus a reduced threaded slice.

use cedar_bench::driver::{
    drive_clients, drive_threads, populate_setup, MultiClientRun, ThreadedRun,
};
use cedar_bench::report::{disk_breakdown, disk_breakdown_json, f2};
use cedar_bench::Table;
use cedar_disk::{CpuModel, DiskStats, SimClock, SimDisk};
use cedar_fsd::{EngineConfig, FsdConfig, FsdEngine, FsdVolume, SchedConfig};
use cedar_workload::{multi_client_workload, MakeDoParams, MultiClientParams};
use std::sync::Arc;

const SIM_CLIENTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
const MT_THREADS: [usize; 10] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 1024];
const MT_THREADS_SMOKE: [usize; 3] = [1, 4, 16];

/// Wall seconds per simulated second for the threaded sweep: both the
/// engine's disk pacer and the clients' think-time sleeps use it, so
/// the two timescales agree. 0.02 keeps the full sweep under a minute
/// while leaving per-epoch disk time (~ms of wall) far above
/// thread-scheduling noise.
const PACE_SCALE: f64 = 0.02;

/// The threaded acceptance gate: forces/op at 256 threads must be at
/// least as amortized as the simulated 64-client figure.
const MT_FORCES_PER_OP_GATE: f64 = 0.021;

/// Disk-is-the-bottleneck threshold: paced simulated busy time as a
/// fraction of wall.
const SATURATED_BUSY_FRAC: f64 = 0.90;

fn volume() -> FsdVolume {
    FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            // A generous log (§5.4: "a bigger log … improves these
            // factors"): the batch bound stays above what 64 clients
            // accumulate per window, so the window — not the log —
            // paces commits across the whole sweep.
            log_sectors: 12_288,
            ..Default::default()
        },
    )
    .expect("format FSD")
}

/// The threaded sweep's volume: same disk and log, free CPU — the
/// question under test is lock-vs-disk scaling, so simulated CPU cost
/// (which models a single 1987 processor) is turned off.
fn mt_volume() -> FsdVolume {
    FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            log_sectors: 12_288,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .expect("format FSD")
}

fn sim_run_for(clients: usize) -> (MultiClientRun, DiskStats) {
    let scripts = multi_client_workload(MultiClientParams {
        clients,
        ..Default::default()
    });
    let (vol, run) =
        drive_clients(volume(), SchedConfig::default(), &scripts).expect("drive clients");
    (run, vol.disk_stats())
}

/// One threaded configuration: fresh volume, populate, start the paced
/// engine, run one OS thread per client script, shut down, verify.
fn mt_run_for(threads: usize) -> ThreadedRun {
    let scripts = multi_client_workload(MultiClientParams {
        clients: threads,
        // Small per-client scripts keep the 1024-thread configuration's
        // total op count (and the populated volume) within bounds.
        makedo: MakeDoParams {
            sources: 2,
            interfaces: 3,
            rounds: 1,
            seed: 0, // replaced per client
        },
        ..Default::default()
    });
    let expected: u64 = scripts.iter().map(|c| c.steps.len() as u64).sum();
    let vol = populate_setup(mt_volume(), &scripts).expect("populate");
    let engine = Arc::new(
        FsdEngine::start(
            vol,
            EngineConfig {
                pace_scale: Some(PACE_SCALE),
                ..Default::default()
            },
        )
        .expect("start engine"),
    );
    let run = drive_threads(&engine, &scripts, PACE_SCALE).expect("drive threads");
    assert_eq!(run.stats.steps, expected, "every step must complete");
    let mut vol = FsdEngine::shutdown_arc(engine).expect("shutdown engine");
    vol.verify().expect("verify after threaded run");
    run
}

fn sim_json_row(clients: usize, r: &MultiClientRun, disk: &DiskStats) -> String {
    let rep = &r.report;
    format!(
        concat!(
            "    {{\"clients\": {}, \"ops\": {}, \"log_forces\": {}, ",
            "\"forces_per_op\": {:.6}, ",
            "\"window_settles\": {}, \"backpressure_settles\": {}, ",
            "\"internal_settles\": {}, \"empty_windows\": {}, ",
            "\"batch_mean\": {:.3}, \"batch_max\": {}, ",
            "\"latency_us\": {{\"mean\": {:.1}, \"p50\": {}, \"p90\": {}, ",
            "\"p99\": {}, \"max\": {}}}, \"duration_s\": {:.3}, \"disk\": {}}}"
        ),
        clients,
        rep.ops,
        rep.log_forces,
        rep.forces_per_op,
        rep.window_settles,
        rep.backpressure_settles,
        rep.internal_settles,
        rep.empty_windows,
        rep.batch_mean,
        rep.batch_max,
        rep.latency.mean_us,
        rep.latency.p50_us,
        rep.latency.p90_us,
        rep.latency.p99_us,
        rep.latency.max_us,
        r.duration_us as f64 / 1e6,
        disk_breakdown_json(disk),
    )
}

fn mt_json_row(threads: usize, r: &ThreadedRun) -> String {
    format!(
        concat!(
            "    {{\"threads\": {}, \"ops\": {}, \"log_forces\": {}, ",
            "\"forces_per_op\": {:.6}, \"epochs\": {}, \"batch_max\": {}, ",
            "\"read_hits\": {}, \"read_misses\": {}, \"retries\": {}, ",
            "\"wall_s\": {:.3}, \"ops_per_sec\": {:.1}, ",
            "\"disk_busy_us\": {}, \"busy_frac\": {:.3}}}"
        ),
        threads,
        r.engine.ops,
        r.engine.log_forces,
        r.engine.forces_per_op(),
        r.engine.epochs,
        r.engine.batch_max,
        r.engine.read_hits,
        r.engine.read_misses,
        r.retries,
        r.wall.as_secs_f64(),
        r.ops_per_sec(),
        r.disk_busy_us(),
        r.disk_busy_fraction(PACE_SCALE),
    )
}

/// The simulated sweep and its §5.4 monotonicity assertion. Returns
/// the 64-client forces/op as the threaded sweep's reference.
fn simulated_sweep() -> f64 {
    println!("Group-commit saturation: 1 to 64 MakeDo clients on one FSD volume");
    println!("(0.5 s commit window, simulated T-300, Dorado CPU costs)");

    let runs: Vec<(usize, MultiClientRun, DiskStats)> = SIM_CLIENTS
        .iter()
        .map(|&n| {
            let (run, disk) = sim_run_for(n);
            (n, run, disk)
        })
        .collect();

    let mut t = Table::new(
        "Log forces per metadata operation vs concurrency (§5.4)",
        &[
            "clients",
            "ops",
            "forces",
            "forces/op",
            "batch mean",
            "batch max",
            "p50 lat (ms)",
            "p99 lat (ms)",
        ],
    );
    for (n, r, _) in &runs {
        t.row(&[
            n.to_string(),
            r.report.ops.to_string(),
            r.report.log_forces.to_string(),
            format!("{:.4}", r.report.forces_per_op),
            f2(r.report.batch_mean),
            r.report.batch_max.to_string(),
            f2(r.report.latency.p50_us as f64 / 1000.0),
            f2(r.report.latency.p99_us as f64 / 1000.0),
        ]);
    }
    t.print();
    println!();
    for (n, _, disk) in &runs {
        println!("{}", disk_breakdown(&format!("{n:>2} clients"), disk));
    }

    println!("\nJSON:");
    println!("{{");
    println!("  \"bench\": \"saturation\",");
    println!("  \"window_us\": 500000,");
    println!("  \"rows\": [");
    for (i, (n, r, disk)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        println!("{}{}", sim_json_row(*n, r, disk), comma);
    }
    println!("  ]");
    println!("}}");

    // The claim under test: amortization strictly improves with
    // concurrency across the whole 1 → 64 sweep.
    for pair in runs.windows(2) {
        let (n0, r0, _) = &pair[0];
        let (n1, r1, _) = &pair[1];
        assert!(
            r1.report.forces_per_op < r0.report.forces_per_op,
            "forces/op must fall {} → {} clients ({:.4} vs {:.4})",
            n0,
            n1,
            r0.report.forces_per_op,
            r1.report.forces_per_op,
        );
    }
    println!("\nforces/op falls strictly monotonically from 1 through 64 clients.");
    runs.last()
        .map(|(_, r, _)| r.report.forces_per_op)
        .unwrap_or(0.0)
}

/// The threaded sweep: real OS threads against one engine, with the
/// saturation and amortization gates. Returns the JSON document.
fn threaded_sweep(threads: &[usize], sim_64_forces_per_op: Option<f64>, smoke: bool) -> String {
    println!(
        "\nThreaded saturation: {} OS-thread clients on one FsdEngine",
        threads
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("/")
    );
    println!("(pace {PACE_SCALE} wall-s per sim-s, free CPU, one owned Session per thread)");

    let runs: Vec<(usize, ThreadedRun)> = threads.iter().map(|&n| (n, mt_run_for(n))).collect();

    let mut t = Table::new(
        "Throughput and forces/op vs OS threads (group commit across threads)",
        &[
            "threads",
            "ops",
            "ops/s",
            "forces",
            "forces/op",
            "epochs",
            "batch max",
            "read hits",
            "retries",
            "busy frac",
        ],
    );
    for (n, r) in &runs {
        t.row(&[
            n.to_string(),
            r.engine.ops.to_string(),
            format!("{:.0}", r.ops_per_sec()),
            r.engine.log_forces.to_string(),
            format!("{:.4}", r.engine.forces_per_op()),
            r.engine.epochs.to_string(),
            r.engine.batch_max.to_string(),
            r.engine.read_hits.to_string(),
            r.retries.to_string(),
            format!("{:.3}", r.disk_busy_fraction(PACE_SCALE)),
        ]);
    }
    t.print();

    // Where the disk becomes the bottleneck: the first configuration
    // whose paced simulated busy time covers ≥ 90 % of wall time.
    let saturated_at = runs
        .iter()
        .position(|(_, r)| r.disk_busy_fraction(PACE_SCALE) >= SATURATED_BUSY_FRAC);

    let json = {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"bench\": \"saturation_mt\",\n");
        s.push_str(&format!("  \"pace_scale\": {PACE_SCALE},\n"));
        s.push_str(&format!(
            "  \"saturated_busy_frac\": {SATURATED_BUSY_FRAC},\n"
        ));
        s.push_str(&format!(
            "  \"saturated_at_threads\": {},\n",
            saturated_at.map_or("null".to_string(), |i| runs[i].0.to_string())
        ));
        s.push_str(&format!(
            "  \"sim_64_forces_per_op\": {},\n",
            sim_64_forces_per_op.map_or("null".to_string(), |f| format!("{f:.6}"))
        ));
        s.push_str(&format!(
            "  \"forces_per_op_gate\": {MT_FORCES_PER_OP_GATE},\n"
        ));
        s.push_str("  \"rows\": [\n");
        for (i, (n, r)) in runs.iter().enumerate() {
            let comma = if i + 1 < runs.len() { "," } else { "" };
            s.push_str(&format!("{}{}\n", mt_json_row(*n, r), comma));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    };
    println!("\nJSON:\n{json}");

    // Gate 1: throughput climbs with thread count until the disk — not
    // a lock — is the bottleneck.
    let last_checked = saturated_at.unwrap_or(runs.len() - 1);
    for i in 0..last_checked {
        let (n0, r0) = &runs[i];
        let (n1, r1) = &runs[i + 1];
        assert!(
            r1.ops_per_sec() > r0.ops_per_sec(),
            "throughput must climb below saturation: {} threads {:.0} ops/s \
             vs {} threads {:.0} ops/s",
            n0,
            r0.ops_per_sec(),
            n1,
            r1.ops_per_sec(),
        );
    }
    if smoke {
        // The reduced sweep may not reach saturation; the climb above
        // plus force sharing is the CI signal.
        let first = &runs[0].1;
        let last = &runs[runs.len() - 1].1;
        assert!(
            last.engine.forces_per_op() < first.engine.forces_per_op(),
            "threads must share forces: {:.4}/op at {} threads vs {:.4}/op at 1",
            last.engine.forces_per_op(),
            runs[runs.len() - 1].0,
            first.engine.forces_per_op(),
        );
        println!(
            "smoke OK: throughput climbs 1 → {} threads, forces/op falls \
             {:.4} → {:.4}",
            runs[runs.len() - 1].0,
            first.engine.forces_per_op(),
            last.engine.forces_per_op(),
        );
    } else {
        let sat = saturated_at.expect("the sweep must drive the disk to ≥ 90 % busy");
        println!(
            "disk saturates at {} threads (busy {:.1} % of wall); throughput \
             climbs monotonically up to that point.",
            runs[sat].0,
            runs[sat].1.disk_busy_fraction(PACE_SCALE) * 100.0,
        );
        // Gate 2: at 256 threads the engine amortizes forces at least
        // as well as the simulated 64-client run (0.021 forces/op).
        let (_, r256) = runs
            .iter()
            .find(|(n, _)| *n == 256)
            .expect("full sweep includes 256 threads");
        assert!(
            r256.engine.forces_per_op() <= MT_FORCES_PER_OP_GATE,
            "forces/op at 256 threads must be ≤ {MT_FORCES_PER_OP_GATE}, got {:.4}",
            r256.engine.forces_per_op(),
        );
        println!(
            "forces/op at 256 threads: {:.4} (gate {MT_FORCES_PER_OP_GATE}, \
             simulated 64-client reference {:.4})",
            r256.engine.forces_per_op(),
            sim_64_forces_per_op.unwrap_or(f64::NAN),
        );
    }
    json
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        // CI mode: the full simulated sweep (deterministic and cheap,
        // with its §5.4 monotonicity assertion) plus a reduced threaded
        // slice — enough to catch a lock on the hot path without tying
        // up a small runner with 1024 threads.
        simulated_sweep();
        threaded_sweep(&MT_THREADS_SMOKE, None, true);
        return;
    }
    let sim_64 = simulated_sweep();
    let json = threaded_sweep(&MT_THREADS, Some(sim_64), false);
    std::fs::write("BENCH_saturation_mt.json", &json).expect("write BENCH_saturation_mt.json");
    println!("\nwrote BENCH_saturation_mt.json");
}
