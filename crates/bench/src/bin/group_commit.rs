//! E-GC — the §5.4 group-commit measurements.
//!
//! "One benchmark measured the combination of logging and group commit as
//! reducing the number of I/O's for metadata by a factor of 2.98 during
//! these bulk operations; the total reduction was a factor of 2.34 for
//! all I/O's."
//!
//! The bulk workload of §5.4: property updates "normally localized to a
//! subdirectory" — here, opens of cached remote files (each refreshing a
//! last-used-time in the name table) interleaved with the replacement of
//! small output files. It runs twice on FSD: with the half-second group
//! commit, and with a commit interval of zero so every operation forces
//! its own log record (logging without grouping). The client "computes"
//! about 100 ms between operations, as the compiler behind the paper's
//! bulk updates did — the commit window batches whatever lands inside
//! half a second. Per-region disk accounting separates metadata traffic
//! (log + name table + boot/VAM) from data traffic.
//!
//! Also reproduced: the §5.4 record sizes — one logged page is a
//! 7-sector record, records under load average tens of sectors (paper:
//! typically 33, max observed 83).

use cedar_bench::{disk_breakdown, Table};
use cedar_disk::{DiskStats, SimClock, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};

const CACHED: usize = 300;
const ROUNDS: usize = 3;

struct RunResult {
    metadata_ops: u64,
    data_ops: u64,
    total_ops: u64,
    records: u64,
    avg_record: f64,
    max_record: u64,
    disk: DiskStats,
}

fn run_with_interval(commit_interval_us: u64) -> RunResult {
    run_with(commit_interval_us, 0)
}

fn run_with(commit_interval_us: u64, log_sectors: u32) -> RunResult {
    let mut vol = FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            commit_interval_us,
            log_sectors,
            ..Default::default()
        },
    )
    .unwrap();
    let l = *vol.layout();
    vol.disk_mut().set_regions(vec![
        (0, l.small_start, "meta"), // Boot pages + VAM save.
        (l.small_start, l.nt_a_start, "data"),
        (l.nt_a_start, l.central_end, "meta"), // NT copies + log.
        (l.central_end, l.total_sectors, "data"),
    ]);

    // Setup: the cache directory full of remote copies, plus outputs.
    for i in 0..CACHED {
        vol.create_cached(&format!("cache/Interface{i:03}.bcd"), &vec![0u8; 2048])
            .unwrap();
    }
    for i in 0..40 {
        vol.create(&format!("pkg/Out{i:02}.bcd"), &vec![0u8; 4096])
            .unwrap();
    }
    vol.force().unwrap();
    vol.disk_mut().reset_stats();
    let stats0 = vol.commit_stats();

    // Measured: the bulk update. The client computes (~100 ms) between
    // file operations, as the compiler did — that pace is what decides
    // how many updates each half-second commit window batches.
    for _round in 0..ROUNDS {
        for i in 0..CACHED {
            // Consulting the cached copy refreshes its last-used-time.
            vol.open(&format!("cache/Interface{i:03}.bcd"), None)
                .unwrap();
            vol.advance_time(100_000).unwrap();
            if i % 8 == 0 {
                let out = format!("pkg/Out{:02}.bcd", (i / 8) % 40);
                vol.delete(&out, None).unwrap();
                vol.create(&out, &vec![0u8; 4096]).unwrap();
            }
        }
    }
    vol.force().unwrap();

    let regions = vol.disk_mut().region_ops().clone();
    let stats = vol.commit_stats();
    let total = vol.disk_stats().total_ops();
    let records = stats.records - stats0.records;
    RunResult {
        metadata_ops: *regions.get("meta").unwrap_or(&0),
        data_ops: *regions.get("data").unwrap_or(&0),
        total_ops: total,
        records,
        avg_record: (stats.log_sectors_written - stats0.log_sectors_written) as f64
            / records.max(1) as f64,
        max_record: stats.max_record_sectors,
        disk: vol.disk_stats(),
    }
}

fn main() {
    println!("Reproducing the §5.4 group-commit measurements (bulk subdirectory update)");

    let grouped = run_with_interval(500_000);
    let ungrouped = run_with_interval(0);
    assert_eq!(
        grouped.data_ops, ungrouped.data_ops,
        "the data traffic must be identical; only metadata batching differs"
    );

    let mut t = Table::new(
        "Logging with vs without group commit (disk I/Os during the bulk update)",
        &[
            "traffic",
            "per-op commit",
            "group commit",
            "reduction",
            "paper",
        ],
    );
    t.row(&[
        "metadata I/Os".into(),
        ungrouped.metadata_ops.to_string(),
        grouped.metadata_ops.to_string(),
        format!(
            "{:.2}x",
            ungrouped.metadata_ops as f64 / grouped.metadata_ops.max(1) as f64
        ),
        "2.98x".into(),
    ]);
    t.row(&[
        "all I/Os".into(),
        ungrouped.total_ops.to_string(),
        grouped.total_ops.to_string(),
        format!(
            "{:.2}x",
            ungrouped.total_ops as f64 / grouped.total_ops.max(1) as f64
        ),
        "2.34x".into(),
    ]);
    t.print();
    println!();
    println!("{}", disk_breakdown("per-op commit", &ungrouped.disk));
    println!("{}", disk_breakdown("group commit ", &grouped.disk));

    let mut t = Table::new(
        "Log record sizes (sectors; a record with n pages is 2n + 5 sectors)",
        &["measure", "value", "paper"],
    );
    t.row(&[
        "records appended (grouped run)".into(),
        grouped.records.to_string(),
        "-".into(),
    ]);
    t.row(&[
        "smallest possible record".into(),
        "7".into(),
        "7 (one-page last-used-time update)".into(),
    ]);
    t.row(&[
        "average under load".into(),
        format!("{:.1}", grouped.avg_record),
        "33 (14 pages logged)".into(),
    ]);
    t.row(&[
        "largest observed".into(),
        grouped.max_record.to_string(),
        "83".into(),
    ]);
    t.print();

    // §5.4's closing remark, as an ablation: "These factors may be
    // improved somewhat by using a bigger log and lengthening the time
    // between commits."
    let mut t = Table::new(
        "Ablation: commit interval x log size (metadata I/Os for the same workload)",
        &["interval", "log", "metadata I/Os", "records"],
    );
    for (interval, label_i) in [
        (250_000u64, "0.25 s"),
        (500_000, "0.5 s"),
        (2_000_000, "2 s"),
    ] {
        for (log, label_l) in [(722u32, "1 cyl"), (1444, "2 cyl"), (4332, "6 cyl")] {
            let r = run_with(interval, log);
            t.row(&[
                label_i.into(),
                label_l.into(),
                r.metadata_ops.to_string(),
                r.records.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "
Longer intervals batch more updates per record; a bigger log defers
         third-entry home writes — both shrink metadata traffic, as §5.4 predicts."
    );
}
