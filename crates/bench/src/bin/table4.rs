//! Table 4 — "FSD and 4.3 BSD Performance Measured in Disk I/O's".
//!
//! Rows: 100 small creates, list 100 files, read 100 small files. As in
//! the paper's setup, "all the files were in the same directory", so
//! FFS's inode clustering pays off in the list and read rows (the
//! "benchmark favors 4.3 BSD" caveat of §7).
//!
//! Cache policy matters here: FSD's name-table cache effectively holds
//! the workstation's working set, so the list runs warm; the BSD buffer
//! cache is small and shared with file data, so the list and read rows
//! are measured from a cold cache (fsck-style `drop_caches`).

use cedar_bench::{disk_breakdown, ffs_t300, fsd_t300, Table};
use cedar_disk::DiskStats;

struct Counts {
    creates: u64,
    list: u64,
    reads: u64,
    disk: DiskStats,
}

fn measure_fsd() -> Counts {
    let mut vol = fsd_t300();
    let io = |v: &cedar_fsd::FsdVolume| v.disk_stats().total_ops();

    let t0 = io(&vol);
    for i in 0..100 {
        vol.create(&format!("d4/f{i:03}"), b"one page of data")
            .unwrap();
    }
    vol.force().unwrap();
    let creates = io(&vol) - t0;

    let t0 = io(&vol);
    assert_eq!(vol.list("d4/").unwrap().len(), 100);
    let list = io(&vol) - t0;

    let t0 = io(&vol);
    for i in 0..100 {
        let mut f = vol.open(&format!("d4/f{i:03}"), None).unwrap();
        vol.read_file(&mut f).unwrap();
    }
    let reads = io(&vol) - t0;
    Counts {
        creates,
        list,
        reads,
        disk: vol.disk_stats(),
    }
}

fn measure_ffs() -> Counts {
    let mut fs = ffs_t300();
    fs.mkdir("d4").unwrap();
    let io = |f: &cedar_ffs::Ffs| f.disk_stats().total_ops();

    let t0 = io(&fs);
    for i in 0..100 {
        fs.create(&format!("d4/f{i:03}"), b"one page of data")
            .unwrap();
    }
    fs.sync().unwrap();
    let creates = io(&fs) - t0;

    // Cold buffer cache for the read-side rows.
    fs.drop_caches().expect("cache flush");
    let t0 = io(&fs);
    assert_eq!(fs.list("d4").unwrap().len(), 100);
    let list = io(&fs) - t0;

    let t0 = io(&fs);
    for i in 0..100 {
        let f = fs.open(&format!("d4/f{i:03}")).unwrap();
        fs.read_file(&f).unwrap();
    }
    let reads = io(&fs) - t0;
    Counts {
        creates,
        list,
        reads,
        disk: fs.disk_stats(),
    }
}

fn main() {
    println!("Reproducing Table 4: FSD vs 4.3 BSD disk I/Os");
    let fsd = measure_fsd();
    let ffs = measure_ffs();

    let mut t = Table::new(
        "Table 4. FSD and 4.3 BSD Performance Measured in Disk I/O's",
        &[
            "workload",
            "FSD",
            "4.3 BSD",
            "ratio",
            "paper FSD",
            "paper 4.3 BSD",
            "paper ratio",
        ],
    );
    let mut row = |name: &str, f: u64, u: u64, pf: &str, pu: &str, pr: &str| {
        t.row(&[
            name.into(),
            f.to_string(),
            u.to_string(),
            format!("{:.2}x", u as f64 / f.max(1) as f64),
            pf.into(),
            pu.into(),
            pr.into(),
        ]);
    };
    row(
        "100 small creates",
        fsd.creates,
        ffs.creates,
        "149",
        "308",
        "2.07",
    );
    row("list 100 files", fsd.list, ffs.list, "3", "9", "3");
    row(
        "read 100 small files",
        fsd.reads,
        ffs.reads,
        "101",
        "106",
        "1.05",
    );
    t.print();
    println!();
    println!("{}", disk_breakdown("FSD    ", &fsd.disk));
    println!("{}", disk_breakdown("4.3 BSD", &ffs.disk));
}
