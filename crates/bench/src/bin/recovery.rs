//! E-REC — the recovery-time measurements of §5.5, §5.9 and §7.
//!
//! * FSD log redo: "Recovery rarely takes more than two seconds";
//! * FSD VAM reconstruction: "typically twenty seconds" on a 300 MB
//!   volume, giving the 1–25 s total of §7;
//! * the CFS scavenge: "an hour or more on a 300 megabyte disk";
//! * 4.3 BSD fsck: "about seven minutes".
//!
//! All four run on identically sized simulated volumes populated with
//! the paper's file-size distribution, plus a sweep of FSD recovery
//! time against population.

use cedar_bench::{cfs_t300, disk_breakdown, ffs_t300, populate, Table};
use cedar_disk::{DiskStats, SimClock, SimDisk};
use cedar_fsd::FsdConfig;

const FILES: usize = 3000;

fn fsd_recovery_with(files: usize, log_vam: bool) -> (cedar_fsd::RecoveryReport, DiskStats) {
    let config = FsdConfig {
        log_vam,
        ..FsdConfig::default()
    };
    let mut vol = cedar_fsd::FsdVolume::format(SimDisk::trident_t300(SimClock::new()), config)
        .expect("format");
    populate(&mut vol, "pop", files, 5);
    // A burst of recent activity leaves work in the log.
    for i in 0..40 {
        vol.create(&format!("recent/r{i:02}"), &vec![1u8; 2048])
            .unwrap();
    }
    vol.force().unwrap();
    let mut disk = vol.into_disk();
    disk.crash_now();
    disk.reboot();
    let before = disk.stats();
    let (vol, report) = cedar_fsd::FsdVolume::boot(
        disk,
        FsdConfig {
            log_vam,
            ..FsdConfig::default()
        },
    )
    .unwrap();
    assert_eq!(report.vam_reconstructed, !log_vam);
    let stats = vol.disk_stats().since(&before);
    (report, stats)
}

fn fsd_recovery(files: usize) -> cedar_fsd::RecoveryReport {
    fsd_recovery_with(files, false).0
}

fn cfs_scavenge(files: usize) -> (cedar_cfs::scavenge::ScavengeReport, DiskStats) {
    let mut vol = cfs_t300();
    populate(&mut vol, "pop", files, 5);
    let mut disk = vol.into_disk();
    disk.crash_now();
    disk.reboot();
    let (mut vol, loaded) =
        cedar_cfs::CfsVolume::boot(disk, cedar_cfs::CfsConfig::default()).unwrap();
    assert!(!loaded);
    let before = vol.disk_stats();
    let report = vol.scavenge().unwrap();
    let stats = vol.disk_stats().since(&before);
    (report, stats)
}

fn ffs_fsck(files: usize) -> (cedar_ffs::FsckReport, DiskStats) {
    let mut fs = ffs_t300();
    populate(&mut fs, "pop", files, 5);
    let mut disk = fs.into_disk();
    disk.crash_now();
    disk.reboot();
    let before = disk.stats();
    let mut fs = cedar_ffs::Ffs::mount(disk, cedar_ffs::FfsConfig::default()).unwrap();
    let report = fs.fsck().unwrap();
    let stats = fs.disk_stats().since(&before);
    (report, stats)
}

fn main() {
    println!("Reproducing the recovery-time comparison ({FILES} files on a 300 MB volume)");

    let (fsd, fsd_disk) = fsd_recovery_with(FILES, false);
    let (ffs, ffs_disk) = ffs_fsck(FILES);
    let (cfs, cfs_disk) = cfs_scavenge(FILES);

    let mut t = Table::new(
        "Crash recovery on a moderately full 300 MB volume",
        &["system", "mechanism", "time", "paper"],
    );
    t.row(&[
        "FSD".into(),
        "log redo".into(),
        format!("{:.2} s", fsd.redo_us as f64 / 1e6),
        "< 2 s".into(),
    ]);
    t.row(&[
        "FSD".into(),
        "VAM reconstruction".into(),
        format!("{:.1} s", fsd.vam_us as f64 / 1e6),
        "~20 s".into(),
    ]);
    t.row(&[
        "FSD".into(),
        "total".into(),
        format!("{:.1} s", fsd.total_us() as f64 / 1e6),
        "1 - 25 s".into(),
    ]);
    t.row(&[
        "4.3 BSD".into(),
        "fsck".into(),
        format!("{:.0} s", ffs.duration_us as f64 / 1e6),
        "~420 s".into(),
    ]);
    t.row(&[
        "CFS".into(),
        "scavenge".into(),
        format!("{:.0} s", cfs.duration_us as f64 / 1e6),
        "3600+ s".into(),
    ]);
    t.print();
    println!(
        "\nFSD replayed {} log records ({} sector images); the scavenge \
         recovered {} files\nand relabelled {} orphan sectors.",
        fsd.records_replayed, fsd.images_redone, cfs.files_recovered, cfs.orphan_sectors
    );
    println!();
    println!("{}", disk_breakdown("FSD recovery ", &fsd_disk));
    println!("{}", disk_breakdown("4.3 BSD fsck ", &ffs_disk));
    println!("{}", disk_breakdown("CFS scavenge ", &cfs_disk));

    // The scaling sweep: VAM reconstruction grows with the name table,
    // not the volume.
    let mut t = Table::new(
        "FSD recovery time vs population (the \"1 to 25 seconds\" band)",
        &["files", "redo (s)", "VAM rebuild (s)", "total (s)"],
    );
    for files in [250, 1000, 2000, 4000] {
        let r = fsd_recovery(files);
        t.row(&[
            files.to_string(),
            format!("{:.2}", r.redo_us as f64 / 1e6),
            format!("{:.1}", r.vam_us as f64 / 1e6),
            format!("{:.1}", r.total_us() as f64 / 1e6),
        ]);
    }
    t.print();

    // §5.3 extension ablation: "VAM logging would greatly decrease worst
    // case crash recovery time from about twenty five seconds to about
    // two seconds. VAM logging was not done since it was a complicated
    // modification" — here it is done, behind `FsdConfig::log_vam`.
    let (base, _) = fsd_recovery_with(FILES, false);
    let (logged, _) = fsd_recovery_with(FILES, true);
    let mut t = Table::new(
        "Ablation: the §5.3 VAM-logging extension (3000 files)",
        &[
            "configuration",
            "redo (s)",
            "VAM (s)",
            "total (s)",
            "paper prediction",
        ],
    );
    t.row(&[
        "base FSD (reconstruct VAM)".into(),
        format!("{:.2}", base.redo_us as f64 / 1e6),
        format!("{:.1}", base.vam_us as f64 / 1e6),
        format!("{:.1}", base.total_us() as f64 / 1e6),
        "~25 s worst case".into(),
    ]);
    t.row(&[
        "with VAM logging".into(),
        format!("{:.2}", logged.redo_us as f64 / 1e6),
        format!("{:.2}", logged.vam_us as f64 / 1e6),
        format!("{:.2}", logged.total_us() as f64 / 1e6),
        "~2 s".into(),
    ]);
    t.print();
}
