//! Table 2 — "CFS to FSD Performance Measured in Wall Clock (times in
//! msec)".
//!
//! Reproduces every row: small/large create, open, open + read,
//! small/large delete, read page, and crash recovery, on the simulated
//! 300 MB Trident-class volume with Dorado CPU costs. The paper's
//! measured values are printed alongside for comparison; absolute times
//! differ with the hardware constants, the *shape* (who wins, by roughly
//! what factor) is the reproduction target.

use cedar_bench::report::f2;
use cedar_bench::{cfs_t300, disk_breakdown, fsd_t300, ms, populate, Table};
use cedar_disk::DiskStats;

const POP_FILES: usize = 4000;
const SMALL_ITERS: usize = 40;
const LARGE_ITERS: usize = 12;
const MEGABYTE: usize = 1 << 20;

/// Measured mean simulated time per iteration, in microseconds.
fn mean_us(clock: &cedar_disk::SimClock, iters: usize, mut f: impl FnMut(usize)) -> u64 {
    let t0 = clock.now();
    for i in 0..iters {
        f(i);
    }
    (clock.now() - t0) / iters as u64
}

struct Measured {
    small_create: u64,
    large_create: u64,
    open: u64,
    open_read: u64,
    small_delete: u64,
    large_delete: u64,
    read_page: u64,
    recovery_s: f64,
    disk: DiskStats,
}

fn measure_cfs() -> Measured {
    let mut vol = cfs_t300();
    let clock = vol.clock();
    populate(&mut vol, "pop", POP_FILES, 11);
    let big = vec![0u8; MEGABYTE];

    let small_create = mean_us(&clock, SMALL_ITERS, |i| {
        vol.create(&format!("dir/s{i:03}"), b"x").unwrap();
    });
    let large_create = mean_us(&clock, LARGE_ITERS, |i| {
        vol.create(&format!("dir/L{i:03}"), &big).unwrap();
    });
    // Opens, reads and deletes hit files scattered across the volume
    // (population order with a large stride), so the head genuinely
    // seeks — the condition behind the paper's absolute numbers.
    let scattered = |i: usize| format!("pop/pop{:05}", (i * 997) % POP_FILES);
    let open = mean_us(&clock, SMALL_ITERS, |i| {
        vol.open(&scattered(i), None).unwrap();
    });
    let open_read = mean_us(&clock, SMALL_ITERS, |i| {
        let f = vol.open(&scattered(i + 40), None).unwrap();
        if f.pages() > 0 {
            vol.read_page(&f, 0).unwrap();
        }
    });
    // Read page: random pages within one open 1 MB file — "the disk
    // hardware is the same, so a simple file read takes the same amount
    // of time, once the file is open" (§7).
    let reader = vol.open("dir/L000", None).unwrap();
    let read_page = mean_us(&clock, SMALL_ITERS, |i| {
        vol.read_page(&reader, (i as u32 * 509) % 2048).unwrap();
    });
    let small_delete = mean_us(&clock, SMALL_ITERS, |i| {
        vol.delete(&format!("dir/s{i:03}"), None).unwrap();
    });
    let large_delete = mean_us(&clock, LARGE_ITERS, |i| {
        vol.delete(&format!("dir/L{i:03}"), None).unwrap();
    });

    // Crash recovery: power fail, then a scavenge (the only repair CFS
    // has once the hint VAM is stale).
    let mut disk = vol.into_disk();
    disk.crash_now();
    disk.reboot();
    let (mut vol, vam_ok) =
        cedar_cfs::CfsVolume::boot(disk, cedar_cfs::CfsConfig::default()).expect("boot CFS");
    assert!(!vam_ok, "crash must invalidate the VAM hint");
    let report = vol.scavenge().expect("scavenge");
    let disk = vol.disk_stats();
    Measured {
        small_create,
        large_create,
        open,
        open_read,
        small_delete,
        large_delete,
        read_page,
        recovery_s: report.duration_us as f64 / 1e6,
        disk,
    }
}

fn measure_fsd() -> Measured {
    let mut vol = fsd_t300();
    let clock = vol.clock();
    populate(&mut vol, "pop", POP_FILES, 11);
    let big = vec![0u8; MEGABYTE];

    let small_create = mean_us(&clock, SMALL_ITERS, |i| {
        vol.create(&format!("dir/s{i:03}"), b"x").unwrap();
    });
    let large_create = mean_us(&clock, LARGE_ITERS, |i| {
        vol.create(&format!("dir/L{i:03}"), &big).unwrap();
    });
    let scattered = |i: usize| format!("pop/pop{:05}", (i * 997) % POP_FILES);
    let open = mean_us(&clock, SMALL_ITERS, |i| {
        vol.open(&scattered(i), None).unwrap();
    });
    let open_read = mean_us(&clock, SMALL_ITERS, |i| {
        let mut f = vol.open(&scattered(i + 40), None).unwrap();
        if f.pages() > 0 {
            vol.read_page(&mut f, 0).unwrap();
        }
    });
    let mut reader = vol.open("dir/L000", None).unwrap();
    vol.read_page(&mut reader, 0).unwrap(); // Leader verified outside the timing.
    let read_page = mean_us(&clock, SMALL_ITERS, |i| {
        vol.read_page(&mut reader, (i as u32 * 509) % 2048).unwrap();
    });
    let small_delete = mean_us(&clock, SMALL_ITERS, |i| {
        vol.delete(&format!("dir/s{i:03}"), None).unwrap();
    });
    let large_delete = mean_us(&clock, LARGE_ITERS, |i| {
        vol.delete(&format!("dir/L{i:03}"), None).unwrap();
    });

    // Crash recovery: log redo plus VAM reconstruction (no shutdown).
    vol.force().expect("force");
    let mut disk = vol.into_disk();
    disk.crash_now();
    disk.reboot();
    let (vol, report) =
        cedar_fsd::FsdVolume::boot(disk, cedar_fsd::FsdConfig::default()).expect("boot FSD");
    assert!(report.vam_reconstructed);
    let disk = vol.disk_stats();
    Measured {
        small_create,
        large_create,
        open,
        open_read,
        small_delete,
        large_delete,
        read_page,
        recovery_s: report.total_us() as f64 / 1e6,
        disk,
    }
}

fn main() {
    println!("Reproducing Table 2: CFS vs FSD wall-clock times");
    println!(
        "(simulated Trident T-300, {POP_FILES} pre-existing files, Dorado CPU costs; \
         paper columns shown for comparison)"
    );
    let cfs = measure_cfs();
    let fsd = measure_fsd();

    let mut t = Table::new(
        "Table 2. CFS to FSD Performance Measured in Wall Clock (times in msec)",
        &[
            "operation",
            "CFS",
            "FSD",
            "speedup",
            "paper CFS",
            "paper FSD",
            "paper speedup",
        ],
    );
    let mut row = |name: &str, c: u64, f: u64, pc: &str, pf: &str, ps: &str| {
        t.row(&[
            name.into(),
            f2(ms(c)),
            f2(ms(f)),
            format!("{:.2}x", c as f64 / f as f64),
            pc.into(),
            pf.into(),
            ps.into(),
        ]);
    };
    row(
        "Small create",
        cfs.small_create,
        fsd.small_create,
        "264",
        "70",
        "3.77",
    );
    row(
        "Large create",
        cfs.large_create,
        fsd.large_create,
        "7674",
        "2730",
        "2.81",
    );
    row("Open", cfs.open, fsd.open, "51.2", "11.7", "4.38");
    row(
        "Open + Read",
        cfs.open_read,
        fsd.open_read,
        "68.5",
        "35.4",
        "1.94",
    );
    row(
        "Small delete",
        cfs.small_delete,
        fsd.small_delete,
        "214",
        "15",
        "14.5",
    );
    row(
        "Large delete",
        cfs.large_delete,
        fsd.large_delete,
        "2692",
        "118",
        "22.8",
    );
    row("Read page", cfs.read_page, fsd.read_page, "41", "41", "1.0");
    t.row(&[
        "Crash recovery".into(),
        format!("{:.0} sec", cfs.recovery_s),
        format!("{:.1} sec", fsd.recovery_s),
        format!("{:.0}x", cfs.recovery_s / fsd.recovery_s),
        "3600+ sec".into(),
        "25 sec".into(),
        "100+".into(),
    ]);
    t.print();
    println!();
    println!(
        "{}",
        disk_breakdown("CFS (whole run incl. scavenge)", &cfs.disk)
    );
    println!(
        "{}",
        disk_breakdown("FSD (whole run incl. recovery)", &fsd.disk)
    );
}
