//! Table 1 — "Disk Data Structures for Local Files in CFS and FSD".
//!
//! Descriptive rather than measured: prints the two systems' on-disk
//! schemas as implemented, mirroring the paper's side-by-side layout.
//! The content is generated from the live types so it cannot drift from
//! the code.

fn main() {
    println!("Table 1. Disk Data Structures for Local Files in CFS and FSD\n");
    println!("CFS");
    println!("  File Name Table (B-tree entry, cedar_cfs::nametable::NtEntry + key)");
    println!("    text name          (key)");
    println!("    version            (key)");
    println!("    keep");
    println!("    uid");
    println!("    header page 0 disk address");
    println!("  Headers (two sectors per file, cedar_cfs::FileHeader)");
    println!("    run table");
    println!("    byte size");
    println!("    keep");
    println!("    create time");
    println!("    version");
    println!("    text name");
    println!("    uid");
    println!("  Labels (every sector, cedar_disk::Label)");
    println!("    uid");
    println!("    page number");
    println!("    page type (header, free, data)");
    println!();
    println!("FSD");
    println!("  File Name Table (B-tree entry, cedar_fsd::FileEntry + key)");
    println!("    text name          (key)");
    println!("    version            (key)");
    println!("    keep");
    println!("    uid");
    println!("    run table");
    println!("    byte size");
    println!("    create time");
    println!("    [leader address — implementation detail, derivable for");
    println!("     non-empty files as first data sector − 1]");
    println!("  Leaders (one sector per file, cedar_fsd::LeaderPage)");
    println!("    uid");
    println!("    preamble of run table");
    println!("    checksum of run table");
    println!();
    println!("FSD uses no labels: \"a new, label-free design is required\" (§3).");
    println!("The name table is written twice on sectors with independent");
    println!("failure modes; changes reach it through the redo log.");
}
