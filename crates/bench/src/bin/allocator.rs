//! E-SIZE — the §5.6 allocator measurements.
//!
//! Two claims: the file population's shape ("50% of files are less that
//! 4,000 bytes but use only 8% of the sectors"), and that splitting the
//! disk into big and small file areas curtails the fragmentation the old
//! single-area allocator suffered ("Large free blocks of space were
//! broken up by small files").
//!
//! The ablation churns small files (with a long-lived minority, the
//! files that pin fragmentation) over a volume under each policy and
//! then measures the free-space structure and how many extents a large
//! file needs.

use cedar_bench::Table;
use cedar_disk::SECTOR_BYTES;
use cedar_vol::{AllocPolicy, Allocator, Run, RunTable, Vam};
use cedar_workload::sizes::{small_file_shares, SizeDistribution};

const AREA: u32 = 200_000; // Sectors of data area (~100 MB).

struct FragResult {
    free_extents: u32,
    largest_extent: u32,
    big_file_runs: f64,
    failures: u32,
}

fn churn(policy: AllocPolicy) -> FragResult {
    let mut vam = Vam::new_all_allocated(AREA);
    vam.free_run(Run::new(0, AREA));
    let mut alloc = Allocator::new(policy, 0, AREA);
    let mut sizes = SizeDistribution::new(99);
    let mut live: Vec<RunTable> = Vec::new();
    let mut x: u64 = 42;

    // Churn: create files from the paper's distribution; keep every
    // tenth forever; delete random victims to hold occupancy near 40 %.
    let mut failures = 0;
    for i in 0..30_000 {
        let pages = (sizes.sample() as u32).div_ceil(SECTOR_BYTES as u32).max(1);
        match alloc.allocate(&mut vam, pages) {
            Ok(rt) => {
                if i % 10 != 0 {
                    live.push(rt); // Keepers (i % 10 == 0) drop the handle, staying allocated.
                }
            }
            Err(_) => failures += 1,
        }
        while vam.free_count() < AREA * 60 / 100 {
            if live.is_empty() {
                break;
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let victim = (x >> 33) as usize % live.len();
            let rt = live.swap_remove(victim);
            alloc.free(&mut vam, &rt, false);
        }
    }

    // Measure: free-space structure and the cost of ten 1 MB files.
    let (free_extents, largest_extent) = vam.fragmentation(0, AREA);
    let mut total_runs = 0;
    let mut bigs = 0;
    for _ in 0..10 {
        if let Ok(rt) = alloc.allocate(&mut vam, 2048) {
            total_runs += rt.runs().len();
            bigs += 1;
            alloc.free(&mut vam, &rt, false);
        }
    }
    FragResult {
        free_extents,
        largest_extent,
        big_file_runs: total_runs as f64 / bigs.max(1) as f64,
        failures,
    }
}

fn main() {
    println!("Reproducing the §5.6 allocator measurements");

    // The size distribution itself.
    let sizes = SizeDistribution::new(1987).sample_many(20_000);
    let (count_share, sector_share) = small_file_shares(&sizes);
    let mut t = Table::new(
        "File size distribution (20,000 samples)",
        &["measure", "value", "paper"],
    );
    t.row(&[
        "files under 4000 bytes".into(),
        format!("{:.0}%", count_share * 100.0),
        "50%".into(),
    ]);
    t.row(&[
        "sectors they occupy".into(),
        format!("{:.0}%", sector_share * 100.0),
        "8%".into(),
    ]);
    t.print();

    // The ablation.
    let single = churn(AllocPolicy::SingleArea);
    let split = churn(AllocPolicy::SplitAreas {
        small_threshold: 32,
    });
    let mut t = Table::new(
        "Fragmentation after churn at 40% occupancy (ablation: §5.6 policy)",
        &["measure", "single area (CFS)", "split areas (FSD)"],
    );
    t.row(&[
        "free extents".into(),
        single.free_extents.to_string(),
        split.free_extents.to_string(),
    ]);
    t.row(&[
        "largest free extent (sectors)".into(),
        single.largest_extent.to_string(),
        split.largest_extent.to_string(),
    ]);
    t.row(&[
        "runs per 1 MB file".into(),
        format!("{:.1}", single.big_file_runs),
        format!("{:.1}", split.big_file_runs),
    ]);
    t.row(&[
        "allocation failures".into(),
        single.failures.to_string(),
        split.failures.to_string(),
    ]);
    t.print();
    println!(
        "\nThe split policy keeps the big-file area contiguous: large files\n\
         allocate in one run where the single-area allocator scatters them."
    );
}
