//! Table 3 — "CFS to FSD Performance Measured in Disk I/O's".
//!
//! Rows: 100 small creates, list 100 files, read 100 small files, and
//! the MakeDo compile workload. Counts are disk operations (reads +
//! writes + label operations), exactly what the paper counts; FSD's
//! numbers include its amortized log forces. Both systems are driven
//! through the same `FileSystem` trait.

use cedar_bench::{cfs_t300, disk_breakdown, fsd_t300, FileSystem, SyncFs, Table};
use cedar_workload::{makedo_workload, steps::run, MakeDoParams};

struct Counts {
    creates: u64,
    list: u64,
    reads: u64,
    makedo: u64,
}

fn ops(fs: &dyn FileSystem, f: impl FnOnce(&dyn FileSystem)) -> u64 {
    let before = fs.stats().disk.total_ops();
    f(fs);
    fs.stats().disk.total_ops() - before
}

fn measure(fs: &dyn FileSystem) -> Counts {
    // 100 small creates (one data page each) in one directory.
    let creates = ops(fs, |fs| {
        for i in 0..100 {
            fs.create(&format!("d3/f{i:03}"), b"one page of data")
                .unwrap();
        }
    });
    // List the directory with properties.
    let list = ops(fs, |fs| {
        assert_eq!(fs.list("d3/").unwrap().len(), 100);
    });
    // Read all 100 files.
    let reads = ops(fs, |fs| {
        for i in 0..100 {
            fs.read(&format!("d3/f{i:03}")).unwrap();
        }
    });
    // MakeDo.
    let (setup, measured) = makedo_workload(MakeDoParams::default());
    run(&setup, fs).unwrap();
    let makedo = ops(fs, |fs| {
        run(&measured, fs).unwrap();
    });
    Counts {
        creates,
        list,
        reads,
        makedo,
    }
}

fn main() {
    println!("Reproducing Table 3: CFS vs FSD disk I/Os");

    let cfs_fs = SyncFs::new(cfs_t300());
    let cfs = measure(&cfs_fs);
    let fsd_fs = SyncFs::new(fsd_t300());
    let fsd = measure(&fsd_fs);

    let mut t = Table::new(
        "Table 3. CFS to FSD Performance Measured in Disk I/O's",
        &[
            "workload",
            "CFS",
            "FSD",
            "ratio",
            "paper CFS",
            "paper FSD",
            "paper ratio",
        ],
    );
    let mut row = |name: &str, c: u64, f: u64, pc: &str, pf: &str, pr: &str| {
        t.row(&[
            name.into(),
            c.to_string(),
            f.to_string(),
            format!("{:.2}x", c as f64 / f.max(1) as f64),
            pc.into(),
            pf.into(),
            pr.into(),
        ]);
    };
    row(
        "100 small creates",
        cfs.creates,
        fsd.creates,
        "874",
        "149",
        "5.87",
    );
    row("list 100 files", cfs.list, fsd.list, "146", "3", "48.7");
    row(
        "read 100 small files",
        cfs.reads,
        fsd.reads,
        "262",
        "101",
        "2.69",
    );
    row("MakeDo", cfs.makedo, fsd.makedo, "1975", "1299", "1.52");
    t.print();
    println!();
    println!("{}", disk_breakdown("CFS", &cfs_fs.stats().disk));
    println!("{}", disk_breakdown("FSD", &fsd_fs.stats().disk));
    println!(
        "\nNote: an FSD list of files whose name-table pages are still cached\n\
         from their creation measures zero I/Os (the paper's 3 I/Os were\n\
         leaf-page misses)."
    );
}
