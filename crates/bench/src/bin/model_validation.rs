//! E-MODEL — validating the §6 analytic model against the simulator.
//!
//! "This model was validated by estimating and measuring performance of
//! CFS, 4.3 BSD UNIX, and two types of file servers. For the simple
//! operations benchmarked, the model almost always predicted performance
//! to within five percent of measured performance."
//!
//! Here the model's scripted predictions (seeks, short seeks, latencies,
//! lost revolutions, transfer time, CPU) are compared against the full
//! simulator for the steady-state operations of Table 2. The
//! `--scripts` flag prints every script in the paper's §6 style.

use cedar_bench::{cfs_t300, disk_breakdown, Table};
use cedar_disk::DiskStats;
use cedar_model::ops::ModelParams;
use cedar_model::{cfs_ops, fsd_ops};

const ITERS: usize = 60;

fn mean_us(clock: &cedar_disk::SimClock, iters: usize, mut f: impl FnMut(usize)) -> u64 {
    let t0 = clock.now();
    for i in 0..iters {
        f(i);
    }
    (clock.now() - t0) / iters as u64
}

/// Measured steady-state times for (small create, open, small delete,
/// read page) — the operations whose scripts assume a warm cache and
/// same-directory locality.
fn measure_cfs() -> (Vec<(String, u64)>, DiskStats) {
    let mut vol = cfs_t300();
    let clock = vol.clock();
    for i in 0..ITERS {
        vol.create(&format!("warm/w{i:03}"), b"x").unwrap();
    }
    let create = mean_us(&clock, ITERS, |i| {
        vol.create(&format!("d/s{i:03}"), b"x").unwrap();
    });
    let open = mean_us(&clock, ITERS, |i| {
        vol.open(&format!("d/s{i:03}"), None).unwrap();
    });
    let f = vol.create("d/reader", &vec![0u8; 1 << 20]).unwrap();
    let read_page = mean_us(&clock, ITERS, |i| {
        vol.read_page(&f, (i as u32 * 1009 + 13) % 2048).unwrap();
    });
    let delete = mean_us(&clock, ITERS, |i| {
        vol.delete(&format!("d/s{i:03}"), None).unwrap();
    });
    (
        vec![
            ("CFS small create".into(), create),
            ("CFS open".into(), open),
            ("CFS small delete".into(), delete),
            ("CFS read page".into(), read_page),
        ],
        vol.disk_stats(),
    )
}

fn measure_fsd() -> (Vec<(String, u64)>, DiskStats) {
    // A huge commit interval keeps the group-commit daemon out of the
    // per-operation timings: the scripts model the pure operations.
    let mut vol = cedar_fsd::FsdVolume::format(
        cedar_disk::SimDisk::trident_t300(cedar_disk::SimClock::new()),
        cedar_fsd::FsdConfig {
            commit_interval_us: u64::MAX / 2,
            ..Default::default()
        },
    )
    .unwrap();
    let clock = vol.clock();
    for i in 0..ITERS {
        vol.create(&format!("warm/w{i:03}"), b"x").unwrap();
    }
    let create = mean_us(&clock, ITERS, |i| {
        vol.create(&format!("d/s{i:03}"), b"x").unwrap();
    });
    let open = mean_us(&clock, ITERS, |i| {
        vol.open(&format!("d/s{i:03}"), None).unwrap();
    });
    let mut f = vol.create("d/reader", &vec![0u8; 1 << 20]).unwrap();
    vol.read_page(&mut f, 0).unwrap();
    let read_page = mean_us(&clock, ITERS, |i| {
        vol.read_page(&mut f, (i as u32 * 1009 + 13) % 2048)
            .unwrap();
    });
    let delete = mean_us(&clock, ITERS, |i| {
        vol.delete(&format!("d/s{i:03}"), None).unwrap();
    });
    (
        vec![
            ("FSD small create".into(), create),
            ("FSD open".into(), open),
            ("FSD small delete".into(), delete),
            ("FSD read page".into(), read_page),
        ],
        vol.disk_stats(),
    )
}

fn main() {
    let show_scripts = std::env::args().any(|a| a == "--scripts");
    let params = ModelParams::dorado_t300();

    if show_scripts {
        for p in cfs_ops(&params).iter().chain(fsd_ops(&params).iter()) {
            println!("{}", p.script.render(&params.timing, params.cylinders));
        }
    }

    println!("Validating the §6 analytic model against the simulator");
    let mut predictions: Vec<(String, u64)> = Vec::new();
    for p in cfs_ops(&params).into_iter().chain(fsd_ops(&params)) {
        predictions.push((p.name.clone(), p.total_us));
    }
    let (cfs_measured, cfs_disk) = measure_cfs();
    let (fsd_measured, fsd_disk) = measure_fsd();
    let measured: Vec<(String, u64)> = cfs_measured.into_iter().chain(fsd_measured).collect();

    let mut t = Table::new(
        "Model prediction vs simulator measurement",
        &["operation", "predicted (ms)", "measured (ms)", "error"],
    );
    let mut worst: f64 = 0.0;
    for (name, got) in &measured {
        let predicted = predictions
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, us)| *us)
            .unwrap_or_else(|| panic!("no prediction for {name}"));
        let err = 100.0 * (predicted as f64 - *got as f64) / *got as f64;
        worst = worst.max(err.abs());
        t.row(&[
            name.clone(),
            format!("{:.2}", predicted as f64 / 1000.0),
            format!("{:.2}", *got as f64 / 1000.0),
            format!("{err:+.1}%"),
        ]);
    }
    t.print();
    println!();
    println!("{}", disk_breakdown("CFS", &cfs_disk));
    println!("{}", disk_breakdown("FSD", &fsd_disk));
    println!(
        "\nWorst-case error {worst:.1}% (the paper reports \"almost always\n\
         within five percent\" for its simple operations).\n\
         Run with --scripts to print every script in the §6 style."
    );
}
