//! Table 5 — "FSD and 4.2 BSD Performance Measured in Percent of CPU and
//! Disk Bandwidth" (the paper takes the 4.2 BSD values from \[McKu84\]).
//!
//! Method. A large file is streamed sequentially on each system and the
//! *simulated elapsed disk time* is measured:
//!
//! * **FSD** reads/writes its contiguous runs extent-at-a-time; the
//!   read-ahead of the era keeps the channel busy across requests, so
//!   request preparation is overlapped CPU. Its bandwidth loss is only
//!   track/cylinder boundaries — our simulated controller delivers more
//!   of the raw rate than the Dorado's IOP did (97 % vs the paper's
//!   ~80 %), a documented substitution;
//! * **4.2-style FFS** transfers block at a time over rotationally
//!   *interleaved* blocks, so the disk spins over a one-block gap between
//!   transfers — bandwidth is structurally capped near 50 % (the paper's
//!   47 %). The per-block CPU (documented in `FfsConfig`) overlaps the
//!   gap via DMA, which is exactly what the interleave is for.
//!
//! %bandwidth = transfer time / elapsed; %CPU = CPU time / elapsed, with
//! CPU fully overlapped with the disk (both machines did DMA). The FFS
//! write path's per-block cost (allocation + copyin) is what drove
//! 4.2 BSD to 95 % CPU.

use cedar_bench::{disk_breakdown, Table};
use cedar_disk::{DiskStats, SECTOR_BYTES};

/// Streamed file size: 4 MB.
const FILE_PAGES: u32 = 8192;
/// FSD request size: one track per request, read-ahead keeping the
/// channel busy (prep time fully overlapped).
const FSD_CHUNK: u32 = 38;
/// Overlapped per-request CPU (request preparation + completion).
const FSD_REQ_PREP_US: u64 = 1_000;

struct Util {
    cpu_pct: f64,
    bw_pct: f64,
    disk: DiskStats,
}

fn fsd_stream(write: bool) -> Util {
    // CPU charges are accounted analytically (they overlap the disk via
    // DMA), so the volume itself runs with a free CPU model.
    let mut vol = cedar_fsd::FsdVolume::format(
        cedar_disk::SimDisk::trident_t300(cedar_disk::SimClock::new()),
        cedar_fsd::FsdConfig {
            cpu: cedar_disk::CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap();
    let clock = vol.clock();
    vol.create("stream/big", &vec![0u8; FILE_PAGES as usize * SECTOR_BYTES])
        .unwrap();
    let mut f = vol.open("stream/big", None).unwrap();
    vol.read_page(&mut f, 0).unwrap(); // Verify the leader outside the stream.

    let chunk = vec![0u8; FSD_CHUNK as usize * SECTOR_BYTES];
    vol.disk_mut().reset_stats();
    let t0 = clock.now();
    let mut cpu_us = 0u64;
    let mut page = 0;
    while page < FILE_PAGES {
        let take = FSD_CHUNK.min(FILE_PAGES - page);
        if write {
            vol.write_pages(&mut f, page, &chunk[..take as usize * SECTOR_BYTES])
                .unwrap();
        } else {
            vol.read_pages(&mut f, page, take).unwrap();
        }
        // Request preparation overlaps the transfer (read-ahead).
        cpu_us += FSD_REQ_PREP_US;
        page += take;
    }
    let elapsed = (clock.now() - t0) as f64;
    let stats = vol.disk_stats();
    // Per-sector copy cost (the Dorado's block move), overlapped.
    cpu_us += cedar_disk::CpuModel::DORADO.per_sector_us * FILE_PAGES as u64;
    Util {
        cpu_pct: 100.0 * cpu_us as f64 / elapsed,
        bw_pct: 100.0 * stats.transfer_us as f64 / elapsed,
        disk: stats,
    }
}

fn ffs_stream(write: bool) -> Util {
    let mut fs = cedar_ffs::Ffs::format(
        cedar_disk::SimDisk::trident_t300(cedar_disk::SimClock::new()),
        cedar_ffs::FfsConfig {
            cpu: cedar_disk::CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap();
    let config = cedar_ffs::FfsConfig::default();
    let clock = fs.clock();
    let bytes = FILE_PAGES as usize * SECTOR_BYTES;
    if write {
        // The create itself is the streaming write: data blocks go out
        // block at a time over the interleaved layout.
        fs.disk_mut().reset_stats();
        let t0 = clock.now();
        fs.create("big", &vec![0u8; bytes]).unwrap();
        let elapsed = (clock.now() - t0) as f64;
        let stats = fs.disk_stats();
        let blocks = (bytes / cedar_ffs::BLOCK_BYTES) as u64;
        let cpu_us = blocks * config.write_block_cpu_us;
        return Util {
            cpu_pct: 100.0 * (cpu_us as f64 / elapsed).min(1.0),
            bw_pct: 100.0 * stats.transfer_us as f64 / elapsed,
            disk: stats,
        };
    }
    fs.create("big", &vec![0u8; bytes]).unwrap();
    fs.drop_caches().expect("cache flush");
    let f = fs.open("big").unwrap();
    fs.disk_mut().reset_stats();
    let t0 = clock.now();
    let blocks = f.inode.blocks() as usize;
    for i in 0..blocks {
        fs.read_block_of(&f, i).unwrap();
    }
    let elapsed = (clock.now() - t0) as f64;
    let stats = fs.disk_stats();
    let cpu_us = blocks as u64 * config.read_block_cpu_us;
    Util {
        cpu_pct: 100.0 * (cpu_us as f64 / elapsed).min(1.0),
        bw_pct: 100.0 * stats.transfer_us as f64 / elapsed,
        disk: stats,
    }
}

fn main() {
    println!("Reproducing Table 5: percent of CPU and disk bandwidth delivered");
    println!("(4 MB sequential stream; CPU overlapped with the disk via DMA)");

    let fsd_r = fsd_stream(false);
    let fsd_w = fsd_stream(true);
    let ffs_r = ffs_stream(false);
    let ffs_w = ffs_stream(true);

    let mut t = Table::new(
        "Table 5. FSD and 4.2 BSD Performance Measured in Percent of CPU and Disk Bandwidth",
        &[
            "op",
            "FSD %CPU",
            "FSD %BW",
            "4.2 %CPU",
            "4.2 %BW",
            "paper FSD",
            "paper 4.2",
        ],
    );
    t.row(&[
        "read".into(),
        format!("{:.0}", fsd_r.cpu_pct),
        format!("{:.0}", fsd_r.bw_pct),
        format!("{:.0}", ffs_r.cpu_pct),
        format!("{:.0}", ffs_r.bw_pct),
        "27 / 79".into(),
        "54 / 47".into(),
    ]);
    t.row(&[
        "write".into(),
        format!("{:.0}", fsd_w.cpu_pct),
        format!("{:.0}", fsd_w.bw_pct),
        format!("{:.0}", ffs_w.cpu_pct),
        format!("{:.0}", ffs_w.bw_pct),
        "28 / 80".into(),
        "95 / 47".into(),
    ]);
    t.print();
    println!("\n(paper columns are %CPU / %bandwidth)");
    println!();
    println!("{}", disk_breakdown("FSD read    ", &fsd_r.disk));
    println!("{}", disk_breakdown("FSD write   ", &fsd_w.disk));
    println!("{}", disk_breakdown("4.2 read    ", &ffs_r.disk));
    println!("{}", disk_breakdown("4.2 write   ", &ffs_w.disk));
}
