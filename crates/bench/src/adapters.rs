//! Backend access for the benchmark binaries.
//!
//! Historically this module defined `CfsBench` / `FsdBench` /
//! `FfsBench` — wrapper structs adapting each backend's bespoke
//! signatures to a string-erroring `Workbench` shim. That shim has been
//! promoted to the first-class [`FileSystem`] trait in `cedar-vol`,
//! implemented by every backend directly (`fs_impl.rs` in each crate),
//! so the adapters are gone and this module is a prelude: the trait,
//! its error type, and the three volume types, one `use` away for the
//! `src/bin/` table generators.

pub use cedar_cfs::CfsVolume;
pub use cedar_ffs::Ffs;
pub use cedar_fsd::FsdVolume;
pub use cedar_vol::fs::{CedarFsError, FileInfo, FileSystem, FsBackend, FsStats, Session, SyncFs};

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, SimDisk};
    use cedar_workload::{makedo_workload, steps::run, MakeDoParams};

    #[test]
    fn makedo_replays_on_all_three_file_systems() {
        let params = MakeDoParams {
            sources: 5,
            interfaces: 8,
            rounds: 1,
            seed: 3,
        };
        let (setup, measured) = makedo_workload(params);

        let cfs = CfsVolume::format(
            SimDisk::tiny(),
            cedar_cfs::CfsConfig {
                nt_pages: 32,
                cpu: CpuModel::FREE,
                scavenge_workers: 1,
            },
        )
        .unwrap();
        let fsd = FsdVolume::format(
            SimDisk::tiny(),
            cedar_fsd::FsdConfig {
                nt_pages: 48,
                log_sectors: 128,
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap();
        let ffs = Ffs::format(
            SimDisk::tiny(),
            cedar_ffs::FfsConfig {
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap();

        let cfs = SyncFs::new(cfs);
        let fsd = SyncFs::new(fsd);
        let ffs = SyncFs::new(ffs);
        let backends: [&dyn FileSystem; 3] = [&cfs, &fsd, &ffs];
        for fs in backends {
            let s = run(&setup, fs).unwrap();
            let m = run(&measured, fs).unwrap();
            assert_eq!(s.steps, setup.len() as u64, "{}", fs.kind());
            assert_eq!(m.steps, measured.len() as u64, "{}", fs.kind());
        }
    }
}
