//! [`Workbench`] adapters: one workload, three file systems.

use cedar_cfs::CfsVolume;
use cedar_ffs::Ffs;
use cedar_fsd::FsdVolume;
use cedar_workload::Workbench;
use std::collections::HashSet;

/// Data transfers go to the disk in 4 KB requests (eight sectors), the
/// buffer size of the era — so reading a 20 KB file costs several I/Os
/// on *every* file system, as it did in the paper's MakeDo measurements.
const CHUNK_PAGES: u32 = 8;

/// CFS behind the workbench interface.
pub struct CfsBench(pub CfsVolume);

impl Workbench for CfsBench {
    fn create(&mut self, name: &str, data: &[u8]) -> Result<(), String> {
        self.0.create(name, data).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, name: &str) -> Result<Vec<u8>, String> {
        let f = self.0.open(name, None).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        let mut page = 0;
        while page < f.pages() {
            let take = CHUNK_PAGES.min(f.pages() - page);
            out.extend(self.0.read_pages(&f, page, take).map_err(|e| e.to_string())?);
            page += take;
        }
        out.truncate(f.header.byte_size as usize);
        Ok(out)
    }
    fn touch(&mut self, name: &str) -> Result<(), String> {
        self.0.open(name, None).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, name: &str) -> Result<(), String> {
        self.0.delete(name, None).map_err(|e| e.to_string())
    }
    fn list(&mut self, prefix: &str) -> Result<usize, String> {
        self.0.list(prefix).map(|l| l.len()).map_err(|e| e.to_string())
    }
}

/// FSD behind the workbench interface. `Touch` opens the file, which on
/// cached-remote entries refreshes the last-used-time (the §5.4 hot-spot
/// update).
pub struct FsdBench(pub FsdVolume);

impl Workbench for FsdBench {
    fn create(&mut self, name: &str, data: &[u8]) -> Result<(), String> {
        self.0.create(name, data).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, name: &str) -> Result<Vec<u8>, String> {
        let mut f = self.0.open(name, None).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        let mut page = 0;
        while page < f.pages() {
            let take = CHUNK_PAGES.min(f.pages() - page);
            out.extend(
                self.0
                    .read_pages(&mut f, page, take)
                    .map_err(|e| e.to_string())?,
            );
            page += take;
        }
        out.truncate(f.byte_size() as usize);
        Ok(out)
    }
    fn touch(&mut self, name: &str) -> Result<(), String> {
        self.0.open(name, None).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, name: &str) -> Result<(), String> {
        self.0.delete(name, None).map_err(|e| e.to_string())
    }
    fn list(&mut self, prefix: &str) -> Result<usize, String> {
        self.0.list(prefix).map(|l| l.len()).map_err(|e| e.to_string())
    }
}

/// FFS behind the workbench interface. FFS needs real directories, so
/// the adapter creates missing parents on the fly.
pub struct FfsBench {
    /// The volume.
    pub fs: Ffs,
    made: HashSet<String>,
}

impl FfsBench {
    /// Wraps a volume.
    pub fn new(fs: Ffs) -> Self {
        Self {
            fs,
            made: HashSet::new(),
        }
    }

    fn ensure_parents(&mut self, name: &str) -> Result<(), String> {
        let mut at = String::new();
        let parts: Vec<&str> = name.split('/').collect();
        for comp in &parts[..parts.len().saturating_sub(1)] {
            if !at.is_empty() {
                at.push('/');
            }
            at.push_str(comp);
            if self.made.insert(at.clone()) && self.fs.lookup(&at).is_err() {
                self.fs.mkdir(&at).map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }
}

impl Workbench for FfsBench {
    fn create(&mut self, name: &str, data: &[u8]) -> Result<(), String> {
        self.ensure_parents(name)?;
        self.fs.create(name, data).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, name: &str) -> Result<Vec<u8>, String> {
        let f = self.fs.open(name).map_err(|e| e.to_string())?;
        self.fs.read_file(&f).map_err(|e| e.to_string())
    }
    fn touch(&mut self, name: &str) -> Result<(), String> {
        self.fs.open(name).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, name: &str) -> Result<(), String> {
        self.fs.unlink(name).map_err(|e| e.to_string())
    }
    fn list(&mut self, prefix: &str) -> Result<usize, String> {
        let dir = prefix.trim_end_matches('/');
        self.fs.list(dir).map(|l| l.len()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, SimDisk};
    use cedar_workload::{makedo_workload, steps::run};

    #[test]
    fn makedo_replays_on_all_three_file_systems() {
        let params = cedar_workload::makedo::MakeDoParams {
            sources: 5,
            interfaces: 8,
            rounds: 1,
            seed: 3,
        };
        let (setup, measured) = makedo_workload(params);

        let mut cfs = CfsBench(
            CfsVolume::format(
                SimDisk::tiny(),
                cedar_cfs::CfsConfig {
                    nt_pages: 32,
                    cpu: CpuModel::FREE,
                },
            )
            .unwrap(),
        );
        run(&setup, &mut cfs).unwrap();
        run(&measured, &mut cfs).unwrap();

        let mut fsd = FsdBench(
            FsdVolume::format(
                SimDisk::tiny(),
                cedar_fsd::FsdConfig {
                    nt_pages: 48,
                    log_sectors: 128,
                    cpu: CpuModel::FREE,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        run(&setup, &mut fsd).unwrap();
        run(&measured, &mut fsd).unwrap();

        let mut ffs = FfsBench::new(
            Ffs::format(
                SimDisk::tiny(),
                cedar_ffs::FfsConfig {
                    cpu: CpuModel::FREE,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        run(&setup, &mut ffs).unwrap();
        run(&measured, &mut ffs).unwrap();
    }
}
