//! Standard benchmark volumes: the paper's ~300 MB Trident-class disk
//! with Dorado CPU costs, optionally populated "moderately full".

use cedar_cfs::{CfsConfig, CfsVolume};
use cedar_disk::{CpuModel, SimClock, SimDisk};
use cedar_ffs::{Ffs, FfsConfig};
use cedar_fsd::{FsdConfig, FsdVolume};
use cedar_workload::SizeDistribution;

/// Formats a CFS volume on a fresh T-300.
pub fn cfs_t300() -> CfsVolume {
    CfsVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        CfsConfig {
            nt_pages: 0,
            cpu: CpuModel::DORADO,
            scavenge_workers: 1,
        },
    )
    .expect("format CFS")
}

/// Formats an FSD volume on a fresh T-300.
pub fn fsd_t300() -> FsdVolume {
    FsdVolume::format(SimDisk::trident_t300(SimClock::new()), FsdConfig::default())
        .expect("format FSD")
}

/// Formats an FFS volume on a fresh T-300.
pub fn ffs_t300() -> Ffs {
    Ffs::format(SimDisk::trident_t300(SimClock::new()), FfsConfig::default()).expect("format FFS")
}

/// Populates a volume with `files` files drawn from the paper's size
/// distribution under `prefix`, through the [`FsBackend`] trait
/// (`cedar_vol::fs::FsBackend`) — population happens before any
/// concurrent service starts, so the exclusive-borrow API is the
/// honest one. Returns the names.
pub fn populate(
    fs: &mut dyn cedar_vol::fs::FsBackend,
    prefix: &str,
    files: usize,
    seed: u64,
) -> Vec<String> {
    let mut sizes = SizeDistribution::new(seed);
    let mut names = Vec::with_capacity(files);
    for i in 0..files {
        let name = format!("{prefix}/pop{i:05}");
        let bytes = sizes.sample() as usize;
        fs.create(&name, &vec![0u8; bytes])
            .unwrap_or_else(|e| panic!("populate {name} ({bytes} B): {e}"));
        names.push(name);
    }
    names
}

/// Microseconds to a printable milliseconds value.
pub fn ms(us: u64) -> f64 {
    us as f64 / 1000.0
}
