//! Event-driven multi-client driver for the group-commit scheduler.
//!
//! Simulated clients do not preempt each other (there is one simulated
//! CPU, as on the Dorado): concurrency is the *interleaving* of client
//! operation streams on the shared clock. Each client has a ready time
//! — the end of its think pause — and the driver repeatedly runs the
//! earliest-ready client's next step through the scheduler, advancing
//! simulated time (and firing group-commit windows) in between. The
//! whole run is a deterministic function of the scripts.

use cedar_disk::Micros;
use cedar_fsd::{CommitScheduler, FsdVolume, SchedConfig, SchedReport};
use cedar_vol::fs::CedarFsError;
use cedar_workload::steps::{run_step, WorkloadStats};
use cedar_workload::ClientScript;

/// Results of one multi-client run.
#[derive(Clone, Debug)]
pub struct MultiClientRun {
    /// Workload totals over the measured phase.
    pub stats: WorkloadStats,
    /// The scheduler's commit accounting.
    pub report: SchedReport,
    /// Simulated duration of the measured phase, µs.
    pub duration_us: Micros,
}

/// Replays every script's setup phase directly on the volume (the
/// volume's own commit daemon is live here), forces, then drives the
/// measured phases interleaved through a [`CommitScheduler`]. Returns
/// the drained volume and the run results.
pub fn drive_clients(
    mut vol: FsdVolume,
    cfg: SchedConfig,
    scripts: &[ClientScript],
) -> Result<(FsdVolume, MultiClientRun), CedarFsError> {
    let mut setup_stats = WorkloadStats::default();
    for c in scripts {
        for s in &c.setup {
            run_step(s, &mut vol, &mut setup_stats)?;
        }
    }
    vol.force().map_err(CedarFsError::from)?;

    let mut sched = CommitScheduler::new(vol, cfg);
    let base = sched.now();
    let mut cursor = vec![0usize; scripts.len()];
    let mut ready_at: Vec<Micros> = scripts
        .iter()
        .map(|c| base + c.steps.first().map_or(0, |t| t.think_us))
        .collect();
    let mut stats = WorkloadStats::default();
    loop {
        // Earliest-ready unfinished client; ties break to the lowest
        // index, keeping the schedule deterministic.
        let next = (0..scripts.len())
            .filter(|&i| cursor[i] < scripts[i].steps.len())
            .min_by_key(|&i| ready_at[i]);
        let Some(i) = next else { break };
        sched.advance_to(ready_at[i])?;
        run_step(
            &scripts[i].steps[cursor[i]].step,
            &mut sched.client(scripts[i].id),
            &mut stats,
        )?;
        cursor[i] += 1;
        if let Some(t) = scripts[i].steps.get(cursor[i]) {
            ready_at[i] = sched.now() + t.think_us;
        }
    }
    sched.drain().map_err(CedarFsError::from)?;
    let report = sched.report();
    let duration_us = sched.now() - base;
    Ok((
        sched.into_volume().map_err(CedarFsError::from)?,
        MultiClientRun {
            stats,
            report,
            duration_us,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, SimClock, SimDisk};
    use cedar_fsd::FsdConfig;
    use cedar_workload::{multi_client_workload, MultiClientParams};

    fn vol() -> FsdVolume {
        FsdVolume::format(
            SimDisk::trident_t300(SimClock::new()),
            FsdConfig {
                log_sectors: 4096,
                cpu: CpuModel::DORADO,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let scripts = multi_client_workload(MultiClientParams {
            clients: 3,
            ..Default::default()
        });
        let (_, a) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
        let (_, b) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.report, b.report);
        assert_eq!(a.duration_us, b.duration_us);
        assert_eq!(
            a.stats.steps,
            scripts.iter().map(|c| c.steps.len() as u64).sum()
        );
    }

    #[test]
    fn more_clients_need_fewer_forces_per_op() {
        let per_op = |n: usize| {
            let scripts = multi_client_workload(MultiClientParams {
                clients: n,
                ..Default::default()
            });
            let (_, run) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
            assert!(run.report.ops > 0);
            run.report.forces_per_op
        };
        let (solo, grouped) = (per_op(1), per_op(8));
        assert!(
            grouped < solo,
            "8 clients {grouped}/op should beat 1 client {solo}/op"
        );
    }
}
