//! Multi-client drivers: the deterministic simulated-clock driver for
//! the group-commit scheduler, and the threaded driver that runs real
//! OS threads against the concurrent FSD engine.
//!
//! The **simulated driver** ([`drive_clients`]) models Dorado-style
//! concurrency: clients do not preempt each other, concurrency is the
//! *interleaving* of operation streams on the shared clock, and the
//! whole run is a deterministic function of the scripts — this is what
//! reproduces the paper's numbers.
//!
//! The **threaded driver** ([`drive_threads`]) spawns one
//! `std::thread` per client script, each holding an owned
//! [`Session`] on a shared [`FsdEngine`]. Think times become real
//! (scaled) sleeps, the engine's pacer converts simulated disk time
//! into wall time, and the run answers the systems question the
//! simulation cannot: does throughput scale with threads until the
//! *disk* — not a lock — is the bottleneck?

use cedar_disk::Micros;
use cedar_fsd::{CommitScheduler, EngineStats, FsdEngine, FsdVolume, SchedConfig, SchedReport};
use cedar_vol::fs::{CedarFsError, FileSystem, FsStats, Session, SyncFs};
use cedar_workload::steps::{run_step, Step, WorkloadStats};
use cedar_workload::ClientScript;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Results of one simulated multi-client run.
#[derive(Clone, Debug)]
pub struct MultiClientRun {
    /// Workload totals over the measured phase.
    pub stats: WorkloadStats,
    /// The scheduler's commit accounting.
    pub report: SchedReport,
    /// Simulated duration of the measured phase, µs.
    pub duration_us: Micros,
}

/// Replays every script's setup phase directly on the volume (the
/// volume's own commit daemon is live here), forces, then drives the
/// measured phases interleaved through a [`CommitScheduler`]. Returns
/// the drained volume and the run results.
pub fn drive_clients(
    vol: FsdVolume,
    cfg: SchedConfig,
    scripts: &[ClientScript],
) -> Result<(FsdVolume, MultiClientRun), CedarFsError> {
    let vol = populate_setup(vol, scripts)?;
    let shared = cedar_fsd::SharedScheduler::new(CommitScheduler::new(vol, cfg));
    let base = shared.now();
    let mut cursor = vec![0usize; scripts.len()];
    let mut ready_at: Vec<Micros> = scripts
        .iter()
        .map(|c| base + c.steps.first().map_or(0, |t| t.think_us))
        .collect();
    let mut stats = WorkloadStats::default();
    loop {
        // Earliest-ready unfinished client; ties break to the lowest
        // index, keeping the schedule deterministic.
        let next = (0..scripts.len())
            .filter(|&i| cursor[i] < scripts[i].steps.len())
            .min_by_key(|&i| ready_at[i]);
        let Some(i) = next else { break };
        shared.advance_to(ready_at[i])?;
        run_step(
            &scripts[i].steps[cursor[i]].step,
            &shared.handle(scripts[i].id),
            &mut stats,
        )?;
        cursor[i] += 1;
        if let Some(t) = scripts[i].steps.get(cursor[i]) {
            ready_at[i] = shared.now() + t.think_us;
        }
    }
    shared.drain().map_err(CedarFsError::from)?;
    let report = shared.report();
    let duration_us = shared.now() - base;
    Ok((
        shared.into_volume().map_err(CedarFsError::from)?,
        MultiClientRun {
            stats,
            report,
            duration_us,
        },
    ))
}

/// Replays every script's setup phase on the raw volume and forces, so
/// a measured phase starts from a populated, committed state.
pub fn populate_setup(vol: FsdVolume, scripts: &[ClientScript]) -> Result<FsdVolume, CedarFsError> {
    let fs = SyncFs::new(vol);
    let mut setup_stats = WorkloadStats::default();
    for c in scripts {
        for s in &c.setup {
            run_step(s, &fs, &mut setup_stats)?;
        }
    }
    let mut vol = fs.into_inner();
    vol.force().map_err(CedarFsError::from)?;
    Ok(vol)
}

/// Results of one threaded run against the engine.
#[derive(Clone, Debug)]
pub struct ThreadedRun {
    /// Workload totals, merged across threads.
    pub stats: WorkloadStats,
    /// Engine counters at the end of the run.
    pub engine: EngineStats,
    /// Volume stats when the measured phase started.
    pub fs_before: FsStats,
    /// Volume stats when the measured phase ended.
    pub fs_after: FsStats,
    /// Wall-clock duration of the measured phase.
    pub wall: Duration,
    /// Operations retried after a retryable error.
    pub retries: u64,
}

impl ThreadedRun {
    /// Simulated disk busy time during the run, µs.
    pub fn disk_busy_us(&self) -> Micros {
        self.fs_after
            .disk
            .busy_us()
            .saturating_sub(self.fs_before.disk.busy_us())
    }

    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.stats.steps as f64 / s
        } else {
            0.0
        }
    }

    /// Fraction of wall time the (paced) simulated disk was busy — the
    /// saturation signal. Only meaningful when the engine runs with a
    /// pacer; `pace_scale` converts busy µs of simulated time into wall
    /// time.
    pub fn disk_busy_fraction(&self, pace_scale: f64) -> f64 {
        let wall_s = self.wall.as_secs_f64();
        if wall_s > 0.0 {
            (self.disk_busy_us() as f64 * pace_scale / 1e6) / wall_s
        } else {
            0.0
        }
    }
}

/// How many times a retryable error is retried before surfacing.
const MAX_RETRIES: u32 = 8;

/// Runs one step with bounded retry on [`CedarFsError::is_retryable`]
/// failures (the concurrent path can see transient `Busy`/`NoSpace`).
fn run_step_retrying(
    step: &Step,
    fs: &dyn FileSystem,
    stats: &mut WorkloadStats,
    retries: &mut u64,
) -> Result<(), CedarFsError> {
    let mut attempt = 0;
    loop {
        match run_step(step, fs, stats) {
            Ok(()) => return Ok(()),
            Err(e) if e.is_retryable() && attempt < MAX_RETRIES => {
                attempt += 1;
                *retries += 1;
                std::thread::sleep(Duration::from_millis(1 << attempt.min(5)));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Spawns one OS thread per script, each replaying its measured phase
/// through an owned [`Session`] on the shared engine. `think_scale`
/// maps simulated think µs to wall time (use the engine's
/// `pace_scale` so client pauses and disk time share one timescale;
/// 0.0 disables think pauses).
pub fn drive_threads(
    engine: &Arc<FsdEngine>,
    scripts: &[ClientScript],
    think_scale: f64,
) -> Result<ThreadedRun, CedarFsError> {
    let fs_before = engine.stats();
    let started = Instant::now();
    let mut threads = Vec::with_capacity(scripts.len());
    for script in scripts.iter().cloned() {
        let session = Session::new(Arc::clone(engine) as Arc<dyn FileSystem>, script.id);
        threads.push(std::thread::spawn(move || {
            let mut stats = WorkloadStats::default();
            let mut retries = 0u64;
            for t in &script.steps {
                if think_scale > 0.0 && t.think_us > 0 {
                    std::thread::sleep(Duration::from_secs_f64(
                        t.think_us as f64 * think_scale / 1e6,
                    ));
                }
                run_step_retrying(&t.step, &session, &mut stats, &mut retries)?;
            }
            Ok::<(WorkloadStats, u64), CedarFsError>((stats, retries))
        }));
    }
    let mut stats = WorkloadStats::default();
    let mut retries = 0u64;
    for t in threads {
        let (s, r) = t
            .join()
            .map_err(|_| CedarFsError::Corrupt("client thread panicked".into()))??;
        stats.absorb(&s);
        retries += r;
    }
    // One epoch-wait so the tail batch is committed and counted before
    // the clock stops.
    engine.sync()?;
    let wall = started.elapsed();
    Ok(ThreadedRun {
        stats,
        engine: engine.engine_stats(),
        fs_before,
        fs_after: engine.stats(),
        wall,
        retries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_disk::{CpuModel, SimClock, SimDisk};
    use cedar_fsd::{EngineConfig, FsdConfig};
    use cedar_workload::{multi_client_workload, MultiClientParams};

    fn vol() -> FsdVolume {
        FsdVolume::format(
            SimDisk::trident_t300(SimClock::new()),
            FsdConfig {
                log_sectors: 4096,
                cpu: CpuModel::DORADO,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn run_is_deterministic() {
        let scripts = multi_client_workload(MultiClientParams {
            clients: 3,
            ..Default::default()
        });
        let (_, a) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
        let (_, b) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.report, b.report);
        assert_eq!(a.duration_us, b.duration_us);
        assert_eq!(
            a.stats.steps,
            scripts.iter().map(|c| c.steps.len() as u64).sum()
        );
    }

    #[test]
    fn more_clients_need_fewer_forces_per_op() {
        let per_op = |n: usize| {
            let scripts = multi_client_workload(MultiClientParams {
                clients: n,
                ..Default::default()
            });
            let (_, run) = drive_clients(vol(), SchedConfig::default(), &scripts).unwrap();
            assert!(run.report.ops > 0);
            run.report.forces_per_op
        };
        let (solo, grouped) = (per_op(1), per_op(8));
        assert!(
            grouped < solo,
            "8 clients {grouped}/op should beat 1 client {solo}/op"
        );
    }

    #[test]
    fn threaded_driver_completes_every_step() {
        let scripts = multi_client_workload(MultiClientParams {
            clients: 4,
            makedo: cedar_workload::MakeDoParams {
                sources: 2,
                interfaces: 3,
                rounds: 1,
                seed: 0,
            },
            ..Default::default()
        });
        let vol = populate_setup(vol(), &scripts).unwrap();
        let engine = Arc::new(FsdEngine::start(vol, EngineConfig::default()).unwrap());
        let run = drive_threads(&engine, &scripts, 0.0).unwrap();
        assert_eq!(
            run.stats.steps,
            scripts.iter().map(|c| c.steps.len() as u64).sum::<u64>()
        );
        assert!(run.engine.epochs > 0);
        assert!(run.disk_busy_us() > 0);
        let mut vol = FsdEngine::shutdown_arc(engine).unwrap();
        assert!(vol.verify().is_ok());
    }
}
