//! Criterion micro-benchmarks: real-time (not simulated-time) performance
//! of the library itself — the costs a host application pays.

use cedar_btree::{BTree, MemStore};
use cedar_disk::{CpuModel, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn tiny_fsd() -> FsdVolume {
    FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_fsd_ops(c: &mut Criterion) {
    c.bench_function("fsd_create_small_x50", |b| {
        b.iter_batched_ref(
            tiny_fsd,
            |vol| {
                for i in 0..50 {
                    vol.create(&format!("f{i}"), b"payload").unwrap();
                }
            },
            BatchSize::LargeInput,
        )
    });

    c.bench_function("fsd_open", |b| {
        let mut vol = tiny_fsd();
        for i in 0..100 {
            vol.create(&format!("f{i:03}"), b"payload").unwrap();
        }
        let mut i = 0u32;
        b.iter(|| {
            let f = vol.open(&format!("f{:03}", i % 100), None).unwrap();
            i += 1;
            std::hint::black_box(f);
        })
    });

    c.bench_function("fsd_crash_recovery", |b| {
        b.iter_batched(
            || {
                let mut vol = tiny_fsd();
                for i in 0..100 {
                    vol.create(&format!("f{i:03}"), b"payload").unwrap();
                }
                vol.force().unwrap();
                let mut disk = vol.into_disk();
                disk.crash_now();
                disk.reboot();
                disk
            },
            |disk| {
                let (vol, report) = FsdVolume::boot(
                    disk,
                    FsdConfig {
                        nt_pages: 64,
                        log_sectors: 256,
                        cpu: CpuModel::FREE,
                        ..Default::default()
                    },
                )
                .unwrap();
                std::hint::black_box((vol.free_sectors(), report));
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("btree_insert_1000", |b| {
        b.iter_batched_ref(
            || MemStore::new(1024),
            |store| {
                let mut t = BTree::create(store).unwrap();
                for i in 0..1000u32 {
                    t.insert(store, format!("key{i:06}").as_bytes(), b"value")
                        .unwrap();
                }
                std::hint::black_box(t.root());
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("btree_get", |b| {
        let mut store = MemStore::new(1024);
        let mut t = BTree::create(&mut store).unwrap();
        for i in 0..1000u32 {
            t.insert(&mut store, format!("key{i:06}").as_bytes(), b"value")
                .unwrap();
        }
        let mut i = 0u32;
        b.iter(|| {
            let k = format!("key{:06}", i % 1000);
            i += 1;
            std::hint::black_box(t.get(&mut store, k.as_bytes()).unwrap());
        })
    });
}

fn bench_log(c: &mut Criterion) {
    use cedar_fsd::log::{encode_record, PageTarget};
    c.bench_function("log_encode_record_14_pages", |b| {
        let images: Vec<(PageTarget, Vec<u8>)> = (0..14)
            .map(|i| {
                (
                    PageTarget::NtSector { page: i, sector: 0 },
                    vec![i as u8; 512],
                )
            })
            .collect();
        b.iter(|| std::hint::black_box(encode_record(&images, 1, 1, true)));
    });
}

criterion_group!(benches, bench_fsd_ops, bench_btree, bench_log);
criterion_main!(benches);
