//! Micro-benchmarks: real-time (not simulated-time) performance of the
//! library itself — the costs a host application pays.
//!
//! Hand-rolled harness (the build environment has no crates.io access,
//! so Criterion is out): each benchmark runs a warm-up, then reports the
//! median per-iteration wall time over a fixed number of timed batches.

use cedar_btree::{BTree, MemStore};
use cedar_disk::{CpuModel, SimDisk};
use cedar_fsd::{FsdConfig, FsdVolume};
use std::time::Instant;

/// Times `iters`-iteration batches of `f`, printing the median batch.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    const BATCHES: usize = 15;
    // Warm-up.
    for _ in 0..iters.max(1) / 2 + 1 {
        f();
    }
    let mut per_iter_ns: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[BATCHES / 2];
    let (value, unit) = if median >= 1e6 {
        (median / 1e6, "ms")
    } else if median >= 1e3 {
        (median / 1e3, "us")
    } else {
        (median, "ns")
    };
    println!("{name:<32} {value:>10.2} {unit}/iter  ({iters} iters x {BATCHES} batches)");
}

fn tiny_fsd() -> FsdVolume {
    FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

fn bench_fsd_ops() {
    bench("fsd_create_small_x50", 20, || {
        let mut vol = tiny_fsd();
        for i in 0..50 {
            vol.create(&format!("f{i}"), b"payload").unwrap();
        }
        std::hint::black_box(vol.free_sectors());
    });

    {
        let mut vol = tiny_fsd();
        for i in 0..100 {
            vol.create(&format!("f{i:03}"), b"payload").unwrap();
        }
        let mut i = 0u32;
        bench("fsd_open", 5000, || {
            let f = vol.open(&format!("f{:03}", i % 100), None).unwrap();
            i += 1;
            std::hint::black_box(f);
        });
    }

    bench("fsd_crash_recovery", 10, || {
        let mut vol = tiny_fsd();
        for i in 0..100 {
            vol.create(&format!("f{i:03}"), b"payload").unwrap();
        }
        vol.force().unwrap();
        let mut disk = vol.into_disk();
        disk.crash_now();
        disk.reboot();
        let (vol, report) = FsdVolume::boot(
            disk,
            FsdConfig {
                nt_pages: 64,
                log_sectors: 256,
                cpu: CpuModel::FREE,
                ..Default::default()
            },
        )
        .unwrap();
        std::hint::black_box((vol.free_sectors(), report));
    });
}

fn bench_btree() {
    bench("btree_insert_1000", 50, || {
        let mut store = MemStore::new(1024);
        let mut t = BTree::create(&mut store).unwrap();
        for i in 0..1000u32 {
            t.insert(&mut store, format!("key{i:06}").as_bytes(), b"value")
                .unwrap();
        }
        std::hint::black_box(t.root());
    });

    {
        let mut store = MemStore::new(1024);
        let mut t = BTree::create(&mut store).unwrap();
        for i in 0..1000u32 {
            t.insert(&mut store, format!("key{i:06}").as_bytes(), b"value")
                .unwrap();
        }
        let mut i = 0u32;
        bench("btree_get", 10_000, || {
            let k = format!("key{:06}", i % 1000);
            i += 1;
            std::hint::black_box(t.get(&mut store, k.as_bytes()).unwrap());
        });
    }
}

fn bench_log() {
    use cedar_fsd::log::{encode_record, PageTarget};
    let images: Vec<(PageTarget, Vec<u8>)> = (0..14)
        .map(|i| {
            (
                PageTarget::NtSector { page: i, sector: 0 },
                vec![i as u8; 512],
            )
        })
        .collect();
    bench("log_encode_record_14_pages", 5000, || {
        std::hint::black_box(encode_record(&images, 1, 1, true).unwrap());
    });
}

fn main() {
    bench_fsd_ops();
    bench_btree();
    bench_log();
}
