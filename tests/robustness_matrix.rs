//! The §5.8 robustness matrix, end to end: "FSD when compared to CFS is
//! robust against six additional types of errors." Each test injects one
//! error class through the public API and shows FSD surviving it — and,
//! where the paper says so, CFS failing the same way it originally did.

use cedar_fs_repro::cfs::{CfsConfig, CfsError, CfsVolume};
use cedar_fs_repro::disk::{CrashPlan, FaultPlan, SimDisk};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume, RecoveryRung};

fn fsd_config() -> FsdConfig {
    FsdConfig {
        nt_pages: 64,
        log_sectors: 256,
        ..Default::default()
    }
}

fn tiny_fsd() -> FsdVolume {
    FsdVolume::format(SimDisk::tiny(), fsd_config()).unwrap()
}

/// Class 1: "multi-page B-tree updates were not atomic" — in CFS a crash
/// mid-split corrupts the name table; in FSD logging makes it atomic.
#[test]
fn class1_multi_page_tree_update() {
    // CFS: force a leaf split, crashing between the page writes.
    let mut cfs = CfsVolume::format(
        SimDisk::tiny(),
        CfsConfig {
            nt_pages: 16,
            ..Default::default()
        },
    )
    .unwrap();
    // Fill one leaf to the brink.
    for i in 0..36 {
        cfs.create(&format!("split/file-{i:02}"), b"x").unwrap();
    }
    // The next create splits; crash after the first sector of the split's
    // multi-page writes.
    cfs.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 2,
        damaged_tail: 1,
    });
    let mut broke_cfs = false;
    for i in 36..60 {
        match cfs.create(&format!("split/file-{i:02}"), b"x") {
            Ok(_) => continue,
            Err(e) => {
                assert!(e.is_crash());
                broke_cfs = true;
                break;
            }
        }
    }
    assert!(broke_cfs, "the crash never fired");
    let mut d = cfs.into_disk();
    d.reboot();
    let (mut cfs, _) = CfsVolume::boot(
        d,
        CfsConfig {
            nt_pages: 16,
            ..Default::default()
        },
    )
    .unwrap();
    // CFS is now either corrupt or silently missing files; the scavenge
    // is the only repair. (Either symptom counts as the class-1 failure.)
    let damaged = cfs.verify().is_err()
        || (0..36).any(|i| cfs.open(&format!("split/file-{i:02}"), None).is_err());
    // Whether or not this particular crash landed mid-split, the scavenge
    // must restore full consistency.
    cfs.scavenge().unwrap();
    cfs.verify().unwrap();
    let _ = damaged;

    // FSD: the same pattern, crashing inside the force that carries the
    // split pages. Recovery must restore a structurally intact tree with
    // all committed files.
    let mut fsd = tiny_fsd();
    for i in 0..36 {
        fsd.create(&format!("split/file-{i:02}"), b"x").unwrap();
    }
    fsd.force().unwrap();
    for i in 36..48 {
        fsd.create(&format!("split/file-{i:02}"), b"x").unwrap();
    }
    fsd.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 4,
        damaged_tail: 1,
    });
    let _ = fsd.force();
    let mut d = fsd.into_disk();
    d.reboot();
    let (mut fsd, _) = FsdVolume::boot(d, fsd_config()).unwrap();
    fsd.verify().unwrap();
    for i in 0..36 {
        assert!(fsd.open(&format!("split/file-{i:02}"), None).is_ok(), "{i}");
    }
}

/// Class 2: "a partial write of the file name table could produce an
/// inconsistent page" — FSD's home writes are protected by the log.
#[test]
fn class2_torn_name_table_write() {
    let mut fsd = tiny_fsd();
    for round in 0..30 {
        for i in 0..6 {
            fsd.create(&format!("r{round:02}f{i}"), b"d").unwrap();
        }
        if fsd.force().is_err() {
            break;
        }
    }
    // Schedule a crash that will land in some multi-sector home write as
    // the log laps its thirds.
    fsd.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 2,
        damaged_tail: 2,
    });
    let mut round = 30;
    loop {
        let mut crashed = false;
        for i in 0..6 {
            if fsd.create(&format!("r{round:02}f{i}"), b"d").is_err() {
                crashed = true;
                break;
            }
        }
        if crashed || fsd.force().is_err() {
            break;
        }
        round += 1;
        assert!(round < 200, "crash never fired");
    }
    let mut d = fsd.into_disk();
    d.reboot();
    let (mut fsd, _) = FsdVolume::boot(d, fsd_config()).unwrap();
    fsd.verify().unwrap();
    for r in 0..30 {
        for i in 0..6 {
            assert!(
                fsd.open(&format!("r{r:02}f{i}"), None).is_ok(),
                "committed file r{r:02}f{i} lost"
            );
        }
    }
}

/// Class 3: "the file name table could have bad pages; it now is
/// replicated."
#[test]
fn class3_bad_name_table_page() {
    let mut fsd = tiny_fsd();
    for i in 0..40 {
        fsd.create(&format!("f{i:02}"), b"data").unwrap();
    }
    fsd.shutdown().unwrap();
    let layout = *fsd.layout();
    let mut d = fsd.into_disk();
    // Kill two consecutive sectors (the failure model's worst case) in
    // name-table copy A.
    d.damage_sector(layout.nt_a_sector(1));
    d.damage_sector(layout.nt_a_sector(1) + 1);
    let (mut fsd, _) = FsdVolume::boot(d, fsd_config()).unwrap();
    fsd.verify().unwrap();
    assert_eq!(fsd.list("").unwrap().len(), 40);
}

/// Class 4: "the VAM can have disk errors; these are recovered by
/// reconstructing the VAM."
#[test]
fn class4_vam_disk_errors() {
    let mut fsd = tiny_fsd();
    fsd.create("keeper", &vec![3u8; 2048]).unwrap();
    fsd.shutdown().unwrap();
    let layout = *fsd.layout();
    let free = fsd.free_sectors();
    let mut d = fsd.into_disk();
    // Both VAM save copies die: recovery must fall back to rebuilding
    // from the name table.
    d.damage_sector(layout.vam_a);
    d.damage_sector(layout.vam_b);
    let (mut fsd, report) = FsdVolume::boot(d, fsd_config()).unwrap();
    assert!(report.vam_reconstructed);
    assert_eq!(fsd.free_sectors(), free);
    let mut f = fsd.open("keeper", None).unwrap();
    assert_eq!(fsd.read_file(&mut f).unwrap(), vec![3u8; 2048]);
}

/// Class 5: "two kinds of pages needed in booting could become bad: they
/// are now replicated" — the boot page and the log meta page.
#[test]
fn class5_boot_critical_pages() {
    let mut fsd = tiny_fsd();
    fsd.create("f", b"x").unwrap();
    fsd.shutdown().unwrap();
    let layout = *fsd.layout();
    let mut d = fsd.into_disk();
    d.damage_sector(layout.boot_a);
    d.damage_sector(layout.log_start); // Log meta copy A.
    let (mut fsd, _) = FsdVolume::boot(d, fsd_config()).unwrap();
    assert!(fsd.open("f", None).is_ok());
}

/// Class 6: log records survive single and double consecutive sector
/// damage thanks to the duplicated, never-adjacent copies.
#[test]
fn class6_log_record_damage() {
    let mut fsd = tiny_fsd();
    fsd.create("committed", b"precious").unwrap();
    fsd.force().unwrap();
    let layout = *fsd.layout();
    let mut d = fsd.into_disk();
    d.crash_now();
    d.reboot();
    // Damage two consecutive sectors inside the log's record area.
    d.damage_sector(layout.log_start + 5);
    d.damage_sector(layout.log_start + 6);
    let (mut fsd, report) = FsdVolume::boot(d, fsd_config()).unwrap();
    assert!(
        report.records_replayed >= 1,
        "the damaged record still replays"
    );
    let mut f = fsd.open("committed", None).unwrap();
    assert_eq!(fsd.read_file(&mut f).unwrap(), b"precious");
}

/// Scrub-on-read: a latent bad sector discovered under a name-table read
/// is not just tolerated via the replica — the damaged copy is rewritten
/// from the survivor, so the page is back to two good copies afterwards.
#[test]
fn latent_nt_sector_is_scrubbed_on_read() {
    let mut fsd = tiny_fsd();
    for i in 0..40 {
        fsd.create(&format!("f{i:02}"), b"data").unwrap();
    }
    fsd.shutdown().unwrap();
    let layout = *fsd.layout();
    let bad = layout.nt_a_sector(1);
    let mut d = fsd.into_disk();
    d.reboot();
    let (mut fsd, _) = FsdVolume::boot(d, fsd_config()).unwrap();
    // The flaw develops after boot, on a page not yet in cache.
    fsd.disk_mut()
        .set_fault_plan(&FaultPlan::none().with_latent(bad));
    // Touching the table discovers the flaw; every file stays readable.
    assert_eq!(fsd.list("").unwrap().len(), 40);
    fsd.verify().unwrap();
    let (scrubbed, _) = fsd.media_stats();
    assert!(
        scrubbed >= 1,
        "the bad copy was rewritten, not just skipped"
    );
    // The scrub stuck: the once-bad sector reads clean again.
    assert!(fsd.disk_mut().read(bad, 1).is_ok());
}

/// Last rung of the ladder: with *both* log-meta replicas gone the redo
/// scan cannot even start, and recovery escalates to a scavenge that
/// rebuilds the name table and VAM from leader pages.
#[test]
fn lost_log_meta_replicas_escalate_to_scavenge() {
    let mut fsd = tiny_fsd();
    for i in 0..12 {
        fsd.create(&format!("sc/f{i:02}"), &vec![i as u8; 1024])
            .unwrap();
    }
    fsd.shutdown().unwrap();
    let layout = *fsd.layout();
    let mut d = fsd.into_disk();
    d.damage_sector(layout.log_start); // Meta copy A.
    d.damage_sector(layout.log_start + 2); // Meta copy B.
    let (mut fsd, report) = FsdVolume::boot(d, fsd_config()).unwrap();
    assert_eq!(report.rung, RecoveryRung::Scavenge);
    let summary = report.scavenge.expect("scavenge summary");
    assert_eq!(summary.files_rebuilt, 12);
    fsd.verify().unwrap();
    for i in 0..12 {
        let mut f = fsd.open(&format!("sc/f{i:02}"), None).unwrap();
        assert_eq!(fsd.read_file(&mut f).unwrap(), vec![i as u8; 1024]);
    }
    // The rebuilt volume is a normal volume: the next boot is rung one.
    fsd.shutdown().unwrap();
    let (_, report2) = FsdVolume::boot(fsd.into_disk(), fsd_config()).unwrap();
    assert_eq!(report2.rung, RecoveryRung::Redo);
}

/// Grown defect under the log force itself: the append retries, remaps
/// the dead sector into the spare region, and the commit still succeeds —
/// and the remap table survives reboot so recovery replays through it.
#[test]
fn grown_defect_during_force_is_remapped_and_commit_succeeds() {
    let mut fsd = tiny_fsd();
    // Permanently kill the sector the next record's header will land on.
    let bad = fsd.next_log_sector();
    fsd.disk_mut().hard_damage_sector(bad);
    fsd.create("survivor", b"still here").unwrap();
    fsd.force().unwrap();
    let (_, remapped) = fsd.media_stats();
    assert!(remapped >= 1, "the dead log sector was remapped");
    assert!(!fsd.spare_entries().is_empty());
    // The commit is real: it replays through the remap table after a crash.
    let mut d = fsd.into_disk();
    d.crash_now();
    d.reboot();
    let (mut fsd, report) = FsdVolume::boot(d, fsd_config()).unwrap();
    assert!(report.records_replayed >= 1);
    let mut f = fsd.open("survivor", None).unwrap();
    assert_eq!(fsd.read_file(&mut f).unwrap(), b"still here");
}

/// The CFS contrast for class 3: a bad page in its *unreplicated* name
/// table loses data until a scavenge.
#[test]
fn cfs_unreplicated_name_table_loses_reads() {
    let mut cfs = CfsVolume::format(
        SimDisk::tiny(),
        CfsConfig {
            nt_pages: 16,
            ..Default::default()
        },
    )
    .unwrap();
    for i in 0..30 {
        cfs.create(&format!("f{i:02}"), b"data").unwrap();
    }
    let nt_sector = cfs.layout().nt_start;
    let nt_pages = cfs.layout().nt_pages;
    let mut d = cfs.into_disk();
    for p in 0..nt_pages {
        d.damage_sector(nt_sector + p * 4);
    }
    let (mut cfs, _) = CfsVolume::boot(
        d,
        CfsConfig {
            nt_pages: 16,
            ..Default::default()
        },
    )
    .unwrap();
    // Every lookup that needs a damaged page fails...
    let lost = (0..30)
        .filter(|i| {
            matches!(
                cfs.open(&format!("f{i:02}"), None),
                Err(CfsError::Disk(_) | CfsError::Corrupt(_))
            )
        })
        .count();
    assert!(lost > 0, "the unreplicated table must lose something");
    // ...until the scavenger rebuilds the table from labels and headers.
    let report = cfs.scavenge().unwrap();
    assert_eq!(report.files_recovered, 30);
    for i in 0..30 {
        assert!(cfs.open(&format!("f{i:02}"), None).is_ok());
    }
}
