//! End-to-end test of the `cedarfs` CLI: a volume image on the host
//! filesystem survives process boundaries, and a `--crash` invocation
//! leaves an image the next invocation recovers.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_cedarfs")
}

struct Dir(PathBuf);

impl Dir {
    fn new(tag: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("cedarfs-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        Dir(p)
    }
    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Dir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("spawn cedarfs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn put_get_ls_rm_roundtrip() {
    let dir = Dir::new("roundtrip");
    let img = dir.path("vol.img");
    let src = dir.path("src.txt");
    let dst = dir.path("dst.txt");
    std::fs::write(&src, b"bytes through the cli").unwrap();

    assert!(run(&["format", &img, "--tiny"]).0);
    assert!(run(&["put", &img, "docs/file.txt", &src]).0);
    let (ok, stdout, _) = run(&["ls", &img]);
    assert!(ok);
    // Trait-driven `ls`: "<bytes>  v<version>  <name>".
    assert!(stdout.contains("v1"), "{stdout}");
    assert!(stdout.contains("docs/file.txt"), "{stdout}");
    assert!(run(&["get", &img, "docs/file.txt", &dst]).0);
    assert_eq!(
        std::fs::read(&dst).unwrap(),
        b"bytes through the cli".to_vec()
    );
    assert!(run(&["rm", &img, "docs/file.txt"]).0);
    let (ok, stdout, _) = run(&["ls", &img]);
    assert!(ok);
    assert!(!stdout.contains("docs/file.txt"));
}

#[test]
fn crash_flag_forces_recovery_on_next_run() {
    let dir = Dir::new("crash");
    let img = dir.path("vol.img");
    let src = dir.path("src.txt");
    std::fs::write(&src, b"survives the crash").unwrap();

    assert!(run(&["format", &img, "--tiny"]).0);
    let (ok, _, stderr) = run(&["put", &img, "f", &src, "--crash"]);
    assert!(ok);
    assert!(stderr.contains("simulating a crash"), "{stderr}");
    // The next invocation must report VAM reconstruction and still see
    // the committed file.
    let (ok, stdout, stderr) = run(&["ls", &img]);
    assert!(ok);
    assert!(
        stderr.contains("reconstructed from the name table"),
        "{stderr}"
    );
    assert!(
        stdout.contains("v1") && stdout.contains("  f\n"),
        "{stdout}"
    );
}

#[test]
fn stat_reports_layout() {
    let dir = Dir::new("stat");
    let img = dir.path("vol.img");
    assert!(run(&["format", &img, "--tiny"]).0);
    let (ok, stdout, _) = run(&["stat", &img]);
    assert!(ok);
    assert!(stdout.contains("geometry:"));
    assert!(stdout.contains("name table"));
    assert!(stdout.contains("free:"));
}

#[test]
fn bad_usage_exits_nonzero() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
    let (ok, _, _) = run(&["get", "/definitely/not/an/image", "x"]);
    assert!(!ok);
}
