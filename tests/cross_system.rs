//! Cross-system equivalence: one workload, three file systems, the same
//! observable contents — the file systems differ in cost and robustness,
//! never in semantics.

use cedar_fs_repro::cfs::{CfsConfig, CfsVolume};
use cedar_fs_repro::disk::{CpuModel, SimClock, SimDisk};
use cedar_fs_repro::ffs::{Ffs, FfsConfig};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};
use cedar_workload::makedo::MakeDoParams;
use cedar_workload::steps::{content_for, run, Step};
use cedar_workload::{makedo_workload, Workbench};

/// Minimal local adapters (the full ones live in `cedar-bench`; the
/// facade tests exercise the raw public APIs directly).
struct C(CfsVolume);
impl Workbench for C {
    fn create(&mut self, n: &str, d: &[u8]) -> Result<(), String> {
        self.0.create(n, d).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, n: &str) -> Result<Vec<u8>, String> {
        let f = self.0.open(n, None).map_err(|e| e.to_string())?;
        self.0.read_file(&f).map_err(|e| e.to_string())
    }
    fn touch(&mut self, n: &str) -> Result<(), String> {
        self.0.open(n, None).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, n: &str) -> Result<(), String> {
        self.0.delete(n, None).map_err(|e| e.to_string())
    }
    fn list(&mut self, p: &str) -> Result<usize, String> {
        self.0.list(p).map(|l| l.len()).map_err(|e| e.to_string())
    }
}

struct F(FsdVolume);
impl Workbench for F {
    fn create(&mut self, n: &str, d: &[u8]) -> Result<(), String> {
        self.0.create(n, d).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, n: &str) -> Result<Vec<u8>, String> {
        let mut f = self.0.open(n, None).map_err(|e| e.to_string())?;
        self.0.read_file(&mut f).map_err(|e| e.to_string())
    }
    fn touch(&mut self, n: &str) -> Result<(), String> {
        self.0.open(n, None).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, n: &str) -> Result<(), String> {
        self.0.delete(n, None).map_err(|e| e.to_string())
    }
    fn list(&mut self, p: &str) -> Result<usize, String> {
        self.0.list(p).map(|l| l.len()).map_err(|e| e.to_string())
    }
}

struct U(Ffs);
impl Workbench for U {
    fn create(&mut self, n: &str, d: &[u8]) -> Result<(), String> {
        // Auto-mkdir parents.
        let mut at = String::new();
        let parts: Vec<&str> = n.split('/').collect();
        for comp in &parts[..parts.len() - 1] {
            if !at.is_empty() {
                at.push('/');
            }
            at.push_str(comp);
            if self.0.lookup(&at).is_err() {
                self.0.mkdir(&at).map_err(|e| e.to_string())?;
            }
        }
        self.0.create(n, d).map(|_| ()).map_err(|e| e.to_string())
    }
    fn read(&mut self, n: &str) -> Result<Vec<u8>, String> {
        let f = self.0.open(n).map_err(|e| e.to_string())?;
        self.0.read_file(&f).map_err(|e| e.to_string())
    }
    fn touch(&mut self, n: &str) -> Result<(), String> {
        self.0.open(n).map(|_| ()).map_err(|e| e.to_string())
    }
    fn delete(&mut self, n: &str) -> Result<(), String> {
        self.0.unlink(n).map_err(|e| e.to_string())
    }
    fn list(&mut self, p: &str) -> Result<usize, String> {
        self.0
            .list(p.trim_end_matches('/'))
            .map(|l| l.len())
            .map_err(|e| e.to_string())
    }
}

#[test]
fn makedo_final_state_identical_across_systems() {
    let params = MakeDoParams {
        sources: 8,
        interfaces: 12,
        rounds: 1,
        seed: 4,
    };
    let (setup, measured) = makedo_workload(params);

    let mut cfs = C(CfsVolume::format(
        SimDisk::tiny(),
        CfsConfig {
            nt_pages: 64,
            cpu: CpuModel::FREE,
        },
    )
    .unwrap());
    let mut fsd = F(FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap());
    let mut ffs = U(Ffs::format(
        SimDisk::tiny(),
        FfsConfig {
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap());

    for bench in [&mut cfs as &mut dyn Workbench, &mut fsd, &mut ffs] {
        run(&setup, bench).unwrap();
        run(&measured, bench).unwrap();
    }

    // The same files exist everywhere with the same contents.
    for i in 0..8 {
        let name = format!("pkg/Source{i:03}.bcd");
        let a = cfs.read(&name).unwrap();
        let b = fsd.read(&name).unwrap();
        let c = ffs.read(&name).unwrap();
        assert_eq!(a, b, "{name}: CFS vs FSD");
        assert_eq!(b, c, "{name}: FSD vs FFS");
    }
    assert_eq!(cfs.list("pkg/").unwrap(), 16); // Sources + outputs.
    // FSD accumulated versions: the *newest* set matches; names count
    // includes versions, so compare via the latest reads above instead.
    assert_eq!(ffs.list("pkg/").unwrap(), 16);
}

#[test]
fn contents_survive_any_systems_full_cycle() {
    // Write → shutdown/sync → reboot → read, each system through its own
    // persistence path, all yielding the written bytes.
    let data = content_for("cycle", 7000);

    let mut cfs =
        CfsVolume::format(SimDisk::tiny(), CfsConfig::default()).unwrap();
    cfs.create("cycle", &data).unwrap();
    cfs.shutdown().unwrap();
    let (mut cfs, _) = CfsVolume::boot(cfs.into_disk(), CfsConfig::default()).unwrap();
    let f = cfs.open("cycle", None).unwrap();
    assert_eq!(cfs.read_file(&f).unwrap(), data);

    let mut fsd =
        FsdVolume::format(SimDisk::tiny(), FsdConfig { nt_pages: 64, log_sectors: 256, ..Default::default() }).unwrap();
    fsd.create("cycle", &data).unwrap();
    fsd.shutdown().unwrap();
    let (mut fsd, _) = FsdVolume::boot(
        fsd.into_disk(),
        FsdConfig {
            nt_pages: 64,
            log_sectors: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let mut f = fsd.open("cycle", None).unwrap();
    assert_eq!(fsd.read_file(&mut f).unwrap(), data);

    let mut ffs = Ffs::format(SimDisk::tiny(), FfsConfig::default()).unwrap();
    ffs.create("cycle", &data).unwrap();
    ffs.sync().unwrap();
    let mut ffs = Ffs::mount(ffs.into_disk(), FfsConfig::default()).unwrap();
    let f = ffs.open("cycle").unwrap();
    assert_eq!(ffs.read_file(&f).unwrap(), data);
}

#[test]
fn workload_steps_replay_deterministically() {
    // Two identical FSD volumes fed the same steps end in identical disk
    // states (the foundation of every measurement in this repo).
    let build = || {
        let mut vol = FsdVolume::format(
            SimDisk::tiny(),
            FsdConfig {
                nt_pages: 64,
                log_sectors: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let steps = vec![
            Step::Create {
                name: "a/x".into(),
                bytes: 900,
            },
            Step::Create {
                name: "a/y".into(),
                bytes: 3000,
            },
            Step::Delete { name: "a/x".into() },
            Step::List { prefix: "a/".into() },
        ];
        let mut b = F(vol);
        run(&steps, &mut b).unwrap();
        vol = b.0;
        vol.force().unwrap();
        (vol.disk_stats(), vol.clock().now(), vol.free_sectors())
    };
    assert_eq!(build(), build());
}
