//! Cross-system equivalence through the unified `FileSystem` trait: one
//! workload, every backend, the same observable contents — the file
//! systems differ in cost and robustness, never in semantics.
//!
//! The conformance harness replays a script against the in-memory model
//! (`cedar_workload::MemFs`) and against CFS, FSD, FFS, the FSD
//! group-commit scheduler, and the threaded FSD engine, then compares
//! the *visible state*: the sorted (name, length, contents) of every
//! live file. All backends are driven through the shared-reference
//! service trait — raw volumes ride behind a `SyncFs` mutex adapter.

use cedar_fs_repro::cfs::{CfsConfig, CfsVolume};
use cedar_fs_repro::disk::{CpuModel, SimDisk};
use cedar_fs_repro::ffs::{Ffs, FfsConfig};
use cedar_fs_repro::fsd::{
    CommitScheduler, EngineConfig, FsdConfig, FsdEngine, FsdVolume, SchedConfig, SharedScheduler,
};
use cedar_vol::fs::{CedarFsError, FileSystem, FsBackend, SyncFs};
use cedar_workload::steps::{content_for, run, Step};
use cedar_workload::{makedo_workload, MakeDoParams, MemFs};
use std::sync::Arc;

fn cfs() -> CfsVolume {
    CfsVolume::format(
        SimDisk::tiny(),
        CfsConfig {
            nt_pages: 64,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

fn fsd() -> FsdVolume {
    FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

fn ffs() -> Ffs {
    Ffs::format(
        SimDisk::tiny(),
        FfsConfig {
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Everything a client can observe: each live file's name, logical
/// length, and full contents, sorted by name. (Version numbers are
/// excluded — FFS has none.)
fn visible_state(fs: &dyn FileSystem) -> Vec<(String, u64, Vec<u8>)> {
    let infos = fs.list("").unwrap();
    infos
        .into_iter()
        .map(|i| {
            let data = fs.read(&i.name).unwrap();
            assert_eq!(data.len() as u64, i.bytes, "{}: length vs contents", i.name);
            (i.name, i.bytes, data)
        })
        .collect()
}

/// A script touching every trait verb, shaped so versioned and
/// version-less backends agree on the outcome (no delete of a
/// multi-version name).
fn conformance_script() -> Vec<Step> {
    let c = |name: &str, bytes: u64| Step::Create {
        name: name.into(),
        bytes,
    };
    vec![
        c("pkg/a.mesa", 700),
        c("pkg/b.mesa", 3000),
        c("etc/conf", 40),
        Step::Read {
            name: "pkg/a.mesa".into(),
        },
        Step::Touch {
            name: "pkg/b.mesa".into(),
        },
        // Overwrite: a new version on Cedar, a replacement on FFS —
        // either way the newest contents win.
        c("pkg/a.mesa", 900),
        Step::List {
            prefix: "pkg/".into(),
        },
        Step::Delete {
            name: "etc/conf".into(),
        },
        c("pkg/sub/c.bcd", 5000),
        Step::List { prefix: "".into() },
    ]
}

#[test]
fn conformance_script_equivalent_on_all_backends() {
    let script = conformance_script();

    let model = SyncFs::new(MemFs::default());
    run(&script, &model).unwrap();
    let want = visible_state(&model);
    assert_eq!(want.len(), 3, "a.mesa, b.mesa, sub/c.bcd");

    let cfs = SyncFs::new(cfs());
    let fsd = SyncFs::new(fsd());
    let ffs = SyncFs::new(ffs());
    let backends: [&dyn FileSystem; 3] = [&cfs, &fsd, &ffs];
    for fs in backends {
        let kind = fs.kind();
        run(&script, fs).unwrap();
        fs.sync().unwrap();
        assert_eq!(visible_state(fs), want, "visible state on {kind}");
        // The deleted single-version name is gone on every backend.
        assert!(
            matches!(fs.read("etc/conf"), Err(CedarFsError::NotFound(_))),
            "etc/conf must be deleted on {kind}"
        );
        // Contents equal the deterministic generator output.
        assert_eq!(
            fs.read("pkg/a.mesa").unwrap(),
            content_for("pkg/a.mesa", 900)
        );
    }

    // The scheduler is a fourth backend: same script through an owned
    // client handle, batch-committed, same visible state.
    let shared = SharedScheduler::new(CommitScheduler::new(fsd2(), SchedConfig::default()));
    run(&script, &shared.handle(0)).unwrap();
    let vol = SyncFs::new(shared.into_volume().unwrap());
    assert_eq!(visible_state(&vol), want, "visible state via scheduler");

    // And the threaded engine is a fifth: same script through the
    // log-writer pipeline, then read back from the raw volume it
    // returns.
    let engine = Arc::new(FsdEngine::start(fsd2(), EngineConfig::default()).unwrap());
    run(&script, engine.as_ref()).unwrap();
    assert_eq!(
        visible_state(engine.as_ref()),
        want,
        "visible state via engine"
    );
    let vol = SyncFs::new(FsdEngine::shutdown_arc(engine).unwrap());
    assert_eq!(visible_state(&vol), want, "visible state after engine");
}

/// A second FSD volume for the scheduler leg (fresh disk, same config).
fn fsd2() -> FsdVolume {
    fsd()
}

#[test]
fn makedo_final_state_identical_across_systems() {
    let params = MakeDoParams {
        sources: 8,
        interfaces: 12,
        rounds: 1,
        seed: 4,
    };
    let (setup, measured) = makedo_workload(params);

    let model = SyncFs::new(MemFs::default());
    run(&setup, &model).unwrap();
    run(&measured, &model).unwrap();
    let want = visible_state(&model);

    let cfs = SyncFs::new(cfs());
    let fsd = SyncFs::new(fsd());
    let ffs = SyncFs::new(ffs());
    let backends: [&dyn FileSystem; 3] = [&cfs, &fsd, &ffs];
    for fs in backends {
        let kind = fs.kind();
        run(&setup, fs).unwrap();
        run(&measured, fs).unwrap();
        assert_eq!(visible_state(fs), want, "final state on {kind}");
        assert_eq!(fs.list("pkg/").unwrap().len(), 16, "{kind}"); // Sources + outputs.
    }
}

#[test]
fn contents_survive_any_systems_full_cycle() {
    // Write → shutdown/sync → reboot → read, each system through its own
    // persistence path, all yielding the written bytes. (Boot and mount
    // are backend-specific, so this test uses the raw backend APIs.)
    let data = content_for("cycle", 7000);

    let mut cfs = CfsVolume::format(SimDisk::tiny(), CfsConfig::default()).unwrap();
    FsBackend::create(&mut cfs, "cycle", &data).unwrap();
    cfs.shutdown().unwrap();
    let (mut cfs, _) = CfsVolume::boot(cfs.into_disk(), CfsConfig::default()).unwrap();
    assert_eq!(FsBackend::read(&mut cfs, "cycle").unwrap(), data);

    let fsd_config = || FsdConfig {
        nt_pages: 64,
        log_sectors: 256,
        ..Default::default()
    };
    let mut fsd = FsdVolume::format(SimDisk::tiny(), fsd_config()).unwrap();
    FsBackend::create(&mut fsd, "cycle", &data).unwrap();
    fsd.shutdown().unwrap();
    let (mut fsd, _) = FsdVolume::boot(fsd.into_disk(), fsd_config()).unwrap();
    assert_eq!(FsBackend::read(&mut fsd, "cycle").unwrap(), data);

    let mut ffs = Ffs::format(SimDisk::tiny(), FfsConfig::default()).unwrap();
    FsBackend::create(&mut ffs, "cycle", &data).unwrap();
    FsBackend::sync(&mut ffs).unwrap();
    let mut ffs = Ffs::mount(ffs.into_disk(), FfsConfig::default()).unwrap();
    assert_eq!(FsBackend::read(&mut ffs, "cycle").unwrap(), data);
}

#[test]
fn workload_steps_replay_deterministically() {
    // Two identical FSD volumes fed the same steps end in identical disk
    // states (the foundation of every measurement in this repo).
    let build = || {
        let vol = SyncFs::new(
            FsdVolume::format(
                SimDisk::tiny(),
                FsdConfig {
                    nt_pages: 64,
                    log_sectors: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let steps = vec![
            Step::Create {
                name: "a/x".into(),
                bytes: 900,
            },
            Step::Create {
                name: "a/y".into(),
                bytes: 3000,
            },
            Step::Delete { name: "a/x".into() },
            Step::List {
                prefix: "a/".into(),
            },
        ];
        run(&steps, &vol).unwrap();
        let mut vol = vol.into_inner();
        vol.force().unwrap();
        (vol.disk_stats(), vol.clock().now(), vol.free_sectors())
    };
    assert_eq!(build(), build());
}
