//! Cross-crate integration tests asserting the *shape* of the paper's
//! headline results at test scale: who wins each comparison and by
//! roughly what kind of factor. The full-scale numbers come from the
//! `cedar-bench` binaries; these tests keep the shapes from regressing.

use cedar_fs_repro::cfs::{CfsConfig, CfsVolume};
use cedar_fs_repro::disk::{SimClock, SimDisk};
use cedar_fs_repro::ffs::{Ffs, FfsConfig};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};

fn t300() -> SimDisk {
    SimDisk::trident_t300(SimClock::new())
}

#[test]
fn table3_shape_creates_and_list() {
    // CFS needs several times the I/Os of FSD for creates, and far more
    // for a property listing (Table 3).
    let mut cfs = CfsVolume::format(t300(), CfsConfig::default()).unwrap();
    let mut fsd = FsdVolume::format(t300(), FsdConfig::default()).unwrap();

    let cfs0 = cfs.disk_stats().total_ops();
    let fsd0 = fsd.disk_stats().total_ops();
    for i in 0..50 {
        cfs.create(&format!("d/f{i:02}"), b"x").unwrap();
        fsd.create(&format!("d/f{i:02}"), b"x").unwrap();
    }
    fsd.force().unwrap();
    let cfs_creates = cfs.disk_stats().total_ops() - cfs0;
    let fsd_creates = fsd.disk_stats().total_ops() - fsd0;
    assert!(
        cfs_creates > 3 * fsd_creates,
        "creates: CFS {cfs_creates} vs FSD {fsd_creates} (paper: 874 vs 149)"
    );

    let cfs0 = cfs.disk_stats().total_ops();
    let fsd0 = fsd.disk_stats().total_ops();
    assert_eq!(cfs.list("d/").unwrap().len(), 50);
    assert_eq!(fsd.list("d/").unwrap().len(), 50);
    let cfs_list = cfs.disk_stats().total_ops() - cfs0;
    let fsd_list = fsd.disk_stats().total_ops() - fsd0;
    assert!(
        cfs_list >= 50 && fsd_list <= 5,
        "list: CFS {cfs_list} (one header read per file) vs FSD {fsd_list} (paper: 146 vs 3)"
    );
}

#[test]
fn table4_shape_fsd_vs_ffs_creates() {
    // FSD creates cost about half the I/Os of the synchronous-metadata
    // FFS (Table 4: 149 vs 308).
    let mut fsd = FsdVolume::format(t300(), FsdConfig::default()).unwrap();
    let mut ffs = Ffs::format(t300(), FfsConfig::default()).unwrap();
    ffs.mkdir("d").unwrap();

    let fsd0 = fsd.disk_stats().total_ops();
    let ffs0 = ffs.disk_stats().total_ops();
    for i in 0..50 {
        fsd.create(&format!("d/f{i:02}"), b"one page").unwrap();
        ffs.create(&format!("d/f{i:02}"), b"one page").unwrap();
    }
    fsd.force().unwrap();
    ffs.sync().unwrap();
    let fsd_ops = fsd.disk_stats().total_ops() - fsd0;
    let ffs_ops = ffs.disk_stats().total_ops() - ffs0;
    assert!(
        ffs_ops as f64 > 1.5 * fsd_ops as f64,
        "creates: FFS {ffs_ops} vs FSD {fsd_ops} (paper ratio 2.07)"
    );
}

#[test]
fn table2_shape_recovery_ratio() {
    // FSD recovery must beat the CFS scavenge by a wide margin (Table 2:
    // 3600+ s vs 25 s).
    let mut fsd = FsdVolume::format(t300(), FsdConfig::default()).unwrap();
    let mut cfs = CfsVolume::format(t300(), CfsConfig::default()).unwrap();
    for i in 0..150 {
        fsd.create(&format!("f{i:03}"), &vec![1u8; 2000]).unwrap();
        cfs.create(&format!("f{i:03}"), &vec![1u8; 2000]).unwrap();
    }
    fsd.force().unwrap();

    let mut d = fsd.into_disk();
    d.crash_now();
    d.reboot();
    let (_, report) = FsdVolume::boot(d, FsdConfig::default()).unwrap();
    let fsd_time = report.total_us();

    let mut d = cfs.into_disk();
    d.crash_now();
    d.reboot();
    let (mut cfs, loaded) = CfsVolume::boot(d, CfsConfig::default()).unwrap();
    assert!(!loaded);
    let scavenge = cfs.scavenge().unwrap();

    assert!(
        scavenge.duration_us > 20 * fsd_time,
        "scavenge {} s vs FSD recovery {} s",
        scavenge.duration_us / 1_000_000,
        fsd_time / 1_000_000
    );
}

#[test]
fn fsck_sits_between_fsd_and_scavenge() {
    // §7: fsck ≈ 7 minutes, between FSD's seconds and the scavenge's hour.
    let mut fsd = FsdVolume::format(t300(), FsdConfig::default()).unwrap();
    let mut ffs = Ffs::format(t300(), FfsConfig::default()).unwrap();
    let mut cfs = CfsVolume::format(t300(), CfsConfig::default()).unwrap();
    ffs.mkdir("d").unwrap();
    for i in 0..100 {
        fsd.create(&format!("d/f{i:03}"), &vec![1u8; 2000]).unwrap();
        ffs.create(&format!("d/f{i:03}"), &vec![1u8; 2000]).unwrap();
        cfs.create(&format!("d/f{i:03}"), &vec![1u8; 2000]).unwrap();
    }
    fsd.force().unwrap();
    ffs.sync().unwrap();

    let mut d = fsd.into_disk();
    d.crash_now();
    d.reboot();
    let (_, report) = FsdVolume::boot(d, FsdConfig::default()).unwrap();
    let fsd_time = report.total_us();

    let mut d = ffs.into_disk();
    d.crash_now();
    d.reboot();
    let mut ffs = Ffs::mount(d, FfsConfig::default()).unwrap();
    let fsck = ffs.fsck().unwrap();

    let mut d = cfs.into_disk();
    d.crash_now();
    d.reboot();
    let (mut cfs, _) = CfsVolume::boot(d, CfsConfig::default()).unwrap();
    let scavenge = cfs.scavenge().unwrap();

    assert!(
        fsd_time < fsck.duration_us && fsck.duration_us < scavenge.duration_us,
        "ordering: FSD {}s < fsck {}s < scavenge {}s",
        fsd_time / 1_000_000,
        fsck.duration_us / 1_000_000,
        scavenge.duration_us / 1_000_000
    );
}

#[test]
fn group_commit_reduces_metadata_io() {
    // §5.4 in miniature: the same updates cost several times more I/O
    // when every operation commits alone.
    let run = |interval: u64| -> u64 {
        let mut vol = FsdVolume::format(
            t300(),
            FsdConfig {
                commit_interval_us: interval,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..60 {
            vol.create_cached(&format!("c/f{i:02}"), b"cached").unwrap();
        }
        vol.force().unwrap();
        vol.disk_mut().reset_stats();
        for i in 0..60 {
            vol.open(&format!("c/f{i:02}"), None).unwrap();
            vol.advance_time(50_000).unwrap();
        }
        vol.force().unwrap();
        vol.disk_stats().total_ops()
    };
    let grouped = run(500_000);
    let solo = run(0);
    assert!(
        solo > 2 * grouped,
        "bulk touches: {solo} solo vs {grouped} grouped (paper factor 2.98)"
    );
}

#[test]
fn fsd_open_and_delete_do_no_io_where_cfs_must() {
    let mut cfs = CfsVolume::format(t300(), CfsConfig::default()).unwrap();
    let mut fsd = FsdVolume::format(t300(), FsdConfig::default()).unwrap();
    for i in 0..20 {
        cfs.create(&format!("f{i}"), b"data").unwrap();
        fsd.create(&format!("f{i}"), b"data").unwrap();
    }
    let cfs0 = cfs.disk_stats().total_ops();
    let fsd0 = fsd.disk_stats().total_ops();
    for i in 0..20 {
        cfs.open(&format!("f{i}"), None).unwrap();
        fsd.open(&format!("f{i}"), None).unwrap();
    }
    assert!(
        cfs.disk_stats().total_ops() - cfs0 >= 20,
        "CFS reads a header per open"
    );
    assert_eq!(fsd.disk_stats().total_ops() - fsd0, 0, "FSD opens are free");
}
