//! Concurrency conformance for the threaded FSD engine.
//!
//! Two obligations the single-threaded conformance suite cannot check:
//!
//! * **Equivalence under real interleaving** — N OS threads, each an
//!   owned `Session` on one shared engine, replay disjoint-namespace
//!   MakeDo scripts while mirroring every step into a mutex-wrapped
//!   in-memory model. Because namespaces are disjoint, any
//!   linearization of the two histories must agree file-by-file; the
//!   visible state (every live file's name, length, contents) is
//!   compared at group-commit boundaries — after the final `sync` and
//!   again on the raw volume the engine hands back at shutdown.
//!
//! * **Crash honesty** — group commit may *delay* durability but must
//!   never lie about it. With a machine crash scheduled mid-run, an
//!   operation the engine acknowledged (returned `Ok` — which happens
//!   only after its epoch's log force) must still be there after
//!   reboot + recovery; unacknowledged operations may vanish, and the
//!   recovered tree must verify clean.

use cedar_fs_repro::disk::{CpuModel, CrashPlan, SimClock, SimDisk};
use cedar_fs_repro::fsd::{EngineConfig, FsdConfig, FsdEngine, FsdVolume};
use cedar_vol::fs::{FileSystem, FsBackend, Session, SyncFs};
use cedar_workload::steps::{content_for, run_step, WorkloadStats};
use cedar_workload::{multi_client_workload, MakeDoParams, MemFs, MultiClientParams};
use std::sync::Arc;

/// Everything a client can observe: each live file's name, logical
/// length, and full contents, sorted by name.
fn visible_state(fs: &dyn FileSystem) -> Vec<(String, u64, Vec<u8>)> {
    let infos = fs.list("").unwrap();
    infos
        .into_iter()
        .map(|i| {
            let data = fs.read(&i.name).unwrap();
            (i.name, i.bytes, data)
        })
        .collect()
}

#[test]
fn threaded_engine_matches_model_at_commit_boundaries() {
    let scripts = multi_client_workload(MultiClientParams {
        clients: 8,
        makedo: MakeDoParams {
            sources: 2,
            interfaces: 3,
            rounds: 1,
            seed: 7,
        },
        ..Default::default()
    });

    // Replay every setup phase on both trees, sequentially, so the
    // measured phase starts from one agreed state.
    let mut vol = FsdVolume::format(
        SimDisk::trident_t300(SimClock::new()),
        FsdConfig {
            log_sectors: 4096,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap();
    let model = Arc::new(SyncFs::new(MemFs::default()));
    let mut setup_stats = WorkloadStats::default();
    for c in &scripts {
        for s in &c.setup {
            run_step(s, model.as_ref(), &mut setup_stats).unwrap();
            let mut ignored = WorkloadStats::default();
            let sync = SyncFs::new(vol);
            run_step(s, &sync, &mut ignored).unwrap();
            vol = sync.into_inner();
        }
    }
    vol.force().unwrap();

    // One OS thread per client, each mirroring its steps into the
    // model as it drives the engine. Namespaces are disjoint, so the
    // mirrored history is a valid linearization of the threaded one.
    let engine = Arc::new(FsdEngine::start(vol, EngineConfig::default()).unwrap());
    let threads: Vec<_> = scripts
        .iter()
        .cloned()
        .map(|script| {
            let session = Session::new(Arc::clone(&engine) as Arc<dyn FileSystem>, script.id);
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let mut stats = WorkloadStats::default();
                let mut mirror = WorkloadStats::default();
                for t in &script.steps {
                    run_step(&t.step, &session, &mut stats).unwrap();
                    run_step(&t.step, model.as_ref(), &mut mirror).unwrap();
                }
                // Read-your-writes inside the session, before any
                // global barrier: this thread's namespace must already
                // be visible to it.
                let mine = session.list(&script.prefix).unwrap();
                let want = model.list(&script.prefix).unwrap();
                assert_eq!(mine.len(), want.len(), "{}", script.prefix);
                stats.steps
            })
        })
        .collect();
    let total: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(
        total,
        scripts.iter().map(|c| c.steps.len() as u64).sum::<u64>()
    );

    // Group-commit boundary #1: after a sync epoch, the engine's view
    // equals the model's.
    engine.sync().unwrap();
    assert!(engine.engine_stats().epochs > 0);
    let want = visible_state(model.as_ref());
    assert_eq!(visible_state(engine.as_ref()), want, "engine vs model");

    // Boundary #2: the raw volume the engine hands back — and hence
    // what a reboot would recover — shows the same state.
    let vol = FsdEngine::shutdown_arc(engine).unwrap();
    let after = SyncFs::new(vol);
    assert_eq!(visible_state(&after), want, "volume after shutdown");
    let mut vol = after.into_inner();
    vol.verify().unwrap();
}

#[test]
fn acknowledged_writes_survive_log_writer_crash() {
    let mut vol = FsdVolume::format(
        SimDisk::tiny(),
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap();
    // The machine dies mid-run: after 30 more durable sector writes the
    // next write crashes the disk, leaving one damaged trailing sector
    // (the paper's failure model).
    vol.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 30,
        damaged_tail: 1,
    });

    let engine = Arc::new(FsdEngine::start(vol, EngineConfig::default()).unwrap());
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let session = Session::new(Arc::clone(&engine) as Arc<dyn FileSystem>, t);
            std::thread::spawn(move || {
                let mut acked = Vec::new();
                for i in 0..10 {
                    let name = format!("t{t}/f{i:02}");
                    match session.create(&name, &content_for(&name, 120)) {
                        Ok(_) => acked.push(name),
                        // First crash error: the epoch never committed;
                        // every later submission fails fast on poison.
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();
    let acked: Vec<String> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    assert!(
        engine.poisoned().is_some(),
        "the scheduled crash must poison the engine"
    );
    assert!(!acked.is_empty(), "some epochs commit before the crash");
    assert!(acked.len() < 40, "the crash fires mid-run, not after");
    // Poisoned engines refuse new work with the original crash error.
    assert!(engine.create("late", b"x").is_err());

    // The writer thread survives the crash (it reports errors, it does
    // not panic), so shutdown still hands the volume back.
    let vol = FsdEngine::shutdown_arc(engine).unwrap();
    let mut disk = vol.into_disk();
    disk.reboot();
    let (mut vol, _report) = FsdVolume::boot(
        disk,
        FsdConfig {
            nt_pages: 96,
            log_sectors: 256,
            cpu: CpuModel::FREE,
            ..Default::default()
        },
    )
    .unwrap();
    vol.verify().unwrap();
    // Every acknowledged create was group-committed before its `Ok`,
    // so recovery must replay it to a commit boundary that includes it.
    for name in &acked {
        assert_eq!(
            FsBackend::read(&mut vol, name).unwrap(),
            content_for(name, 120),
            "acknowledged {name} must survive crash + recovery"
        );
    }
}
