#!/usr/bin/env sh
# The CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
cargo run --release -p cedar-analyze --bin cedar-lint -- --workspace
# The taint family alone (disk-taint / decode-coverage / taint-arith)
# re-run for a per-family timing line; the full run above already
# gates on it.
cargo run --release -p cedar-analyze --bin cedar-lint -- --workspace --rule taint
# Corrupted-image fuzz: random byte flips and label smashes over a live
# image must end in repair or a typed error — serial and 8-way
# parallel scavenge alike, never a panic.
cargo test -q -p cedar-fsd --test fuzz_corrupt
# Model-checked epoch hand-off: the engine built against the in-tree
# loom shims, every interleaving within the preemption bound explored.
cargo test --release -p cedar-fsd --features loom --test loom_engine
# Model-checked log-writer -> shipper hand-off: a replication ack never
# precedes the mode's durability point, in every explored schedule.
cargo test --release -p cedar-fsd --features loom --test loom_repl
# Model-checked scan hand-off: the bounded reader/worker channel behind
# the parallel scavenger, explored under the in-tree loom shims.
cargo test --release -p cedar-disk --features loom --test loom_scan
# ThreadSanitizer lane over the concurrent conformance suite. Needs a
# nightly toolchain with rust-src (for -Zbuild-std); skipped when the
# host has neither, since the container cannot install components.
if command -v rustup >/dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q nightly \
    && [ -d "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library" ]; then
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target x86_64-unknown-linux-gnu \
        --release --test concurrent_conformance
else
    echo "tsan lane skipped: no nightly toolchain with rust-src"
fi
# Saturation (smoke): the full simulated §5.4 curve plus a reduced
# threaded sweep — throughput must climb and forces/op must fall.
cargo run --release -p cedar-bench --bin saturation -- --smoke
# Asserts scheduled submission never regresses above the in-order baseline.
cargo run --release -p cedar-bench --bin io_sched -- --smoke
# Fault-injection campaign (reduced grid): every scenario must recover
# to a commit boundary, every escalation rung must be exercised, and
# the corrupt-block's rotten images must scavenge to a verifying tree.
cargo run --release -p cedar-bench --bin fault_campaign -- --smoke
# Scavenge & VAM-rebuild scaling (smoke): parallel and serial recovery
# scans must agree exactly on a small population.
cargo run --release -p cedar-bench --bin scavenge_scale -- --smoke
# Log-shipping replication (smoke): per-mode ack/loss contracts — sync
# and semi-sync failovers lose nothing acknowledged, async stays within
# its lag bound, and both resync paths converge.
cargo run --release -p cedar-bench --bin replication -- --smoke
