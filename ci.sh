#!/usr/bin/env sh
# The CI gate, runnable locally. Mirrors .github/workflows/ci.yml.
set -eux

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
cargo run --release -p cedar-analyze --bin cedar-lint -- --workspace
# Saturation (smoke): the full simulated §5.4 curve plus a reduced
# threaded sweep — throughput must climb and forces/op must fall.
cargo run --release -p cedar-bench --bin saturation -- --smoke
# Asserts scheduled submission never regresses above the in-order baseline.
cargo run --release -p cedar-bench --bin io_sched -- --smoke
# Fault-injection campaign (reduced grid): every scenario must recover
# to a commit boundary and every escalation rung must be exercised.
cargo run --release -p cedar-bench --bin fault_campaign -- --smoke
