//! `cedarfs` — a command-line tool around the FSD library.
//!
//! The volume lives in a host-file disk image; every invocation boots it
//! (running FSD's log-redo recovery), performs the operation, and — by
//! default — shuts down cleanly. `--crash` skips the shutdown, leaving
//! the image exactly as a power failure would, so the next invocation
//! demonstrates recovery.
//!
//! ```text
//! cedarfs format  vol.img [--tiny] [--log-vam]
//! cedarfs put     vol.img <name> <host-file> [--crash]
//! cedarfs get     vol.img <name> [host-file]
//! cedarfs ls      vol.img [prefix]
//! cedarfs rm      vol.img <name> [--crash]
//! cedarfs stat    vol.img
//! ```

use cedar_fs_repro::disk::{SimClock, SimDisk, SECTOR_BYTES_U64};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume, RecoveryReport};
use cedar_fs_repro::vol::fs::FsBackend;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  cedarfs format  <image> [--tiny] [--log-vam]\n  \
         cedarfs put     <image> <name> <host-file> [--crash]\n  \
         cedarfs get     <image> <name> [host-file]\n  \
         cedarfs ls      <image> [prefix]\n  \
         cedarfs rm      <image> <name> [--crash]\n  \
         cedarfs stat    <image>\n\n\
         --crash skips the clean shutdown, leaving the image as a power\n\
         failure would; the next invocation runs FSD crash recovery."
    );
    ExitCode::from(2)
}

fn boot(image: &str) -> Result<(FsdVolume, RecoveryReport), String> {
    let disk =
        SimDisk::load_image(image, SimClock::new()).map_err(|e| format!("open {image}: {e}"))?;
    FsdVolume::boot(disk, FsdConfig::default()).map_err(|e| format!("boot: {e}"))
}

fn finish(mut vol: FsdVolume, image: &str, crash: bool) -> Result<(), String> {
    if crash {
        vol.force().map_err(|e| format!("force: {e}"))?;
        eprintln!("(simulating a crash: no clean shutdown)");
        let mut disk = vol.into_disk();
        disk.crash_now();
        disk.reboot();
        disk.save_image(image)
            .map_err(|e| format!("save {image}: {e}"))
    } else {
        vol.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        vol.into_disk()
            .save_image(image)
            .map_err(|e| format!("save {image}: {e}"))
    }
}

fn report_recovery(r: &RecoveryReport) {
    if r.records_replayed > 0 || r.vam_reconstructed {
        eprintln!(
            "recovery: {} log records replayed, VAM {} ({:.2} s simulated)",
            r.records_replayed,
            if r.vam_reconstructed {
                "reconstructed from the name table"
            } else {
                "loaded"
            },
            r.total_us() as f64 / 1e6
        );
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| a.starts_with("--"))
        .collect();
    let pos: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .collect();
    let crash = flags.contains(&"--crash");

    match pos.as_slice() {
        ["format", image] => {
            let disk = if flags.contains(&"--tiny") {
                SimDisk::tiny()
            } else {
                SimDisk::trident_t300(SimClock::new())
            };
            let config = FsdConfig {
                log_vam: flags.contains(&"--log-vam"),
                ..FsdConfig::default()
            };
            let mut vol = FsdVolume::format(disk, config).map_err(|e| format!("format: {e}"))?;
            vol.shutdown().map_err(|e| format!("shutdown: {e}"))?;
            vol.into_disk()
                .save_image(image)
                .map_err(|e| format!("save {image}: {e}"))?;
            println!("formatted {image}");
            Ok(())
        }
        ["put", image, name, host] => {
            let data = std::fs::read(host).map_err(|e| format!("read {host}: {e}"))?;
            let (mut vol, r) = boot(image)?;
            report_recovery(&r);
            // File operations go through the unified `FsBackend` trait —
            // the same interface the benches and conformance tests use.
            let f = FsBackend::create(&mut vol, name, &data).map_err(|e| format!("create: {e}"))?;
            println!("{} <- {} ({} bytes)", f.name, host, data.len());
            finish(vol, image, crash)
        }
        ["get", image, name] | ["get", image, name, _] => {
            let (mut vol, r) = boot(image)?;
            report_recovery(&r);
            let data = FsBackend::read(&mut vol, name).map_err(|e| format!("read {name}: {e}"))?;
            match pos.get(3) {
                Some(host) => {
                    std::fs::write(host, &data).map_err(|e| format!("write {host}: {e}"))?;
                    println!("{name} -> {host} ({} bytes)", data.len());
                }
                None => {
                    use std::io::Write;
                    std::io::stdout()
                        .write_all(&data)
                        .map_err(|e| e.to_string())?;
                }
            }
            finish(vol, image, false)
        }
        ["ls", image] | ["ls", image, _] => {
            let prefix = pos.get(2).copied().unwrap_or("");
            let (mut vol, r) = boot(image)?;
            report_recovery(&r);
            let listing = FsBackend::list(&mut vol, prefix).map_err(|e| format!("list: {e}"))?;
            for f in &listing {
                println!("{:>10}  v{:<3}  {}", f.bytes, f.version, f.name);
            }
            eprintln!("{} entries", listing.len());
            finish(vol, image, false)
        }
        ["rm", image, name] => {
            let (mut vol, r) = boot(image)?;
            report_recovery(&r);
            FsBackend::delete(&mut vol, name).map_err(|e| format!("delete: {e}"))?;
            println!("removed {name}");
            finish(vol, image, crash)
        }
        ["stat", image] => {
            let (vol, r) = boot(image)?;
            report_recovery(&r);
            let l = vol.layout();
            let g = *SimDisk::load_image(image, SimClock::new())
                .map_err(|e| e.to_string())?
                .geometry();
            println!(
                "geometry: {} cylinders x {} heads x {} sectors ({} MB)",
                g.cylinders,
                g.heads,
                g.sectors_per_track,
                g.total_sectors() as u64 * SECTOR_BYTES_U64 / 1_000_000
            );
            println!(
                "layout: log {} sectors @ {}, name table {} pages x2 (@ {} and {})",
                l.log_sectors, l.log_start, l.nt_pages, l.nt_a_start, l.nt_b_start
            );
            println!(
                "free: {} sectors ({} MB)",
                vol.free_sectors(),
                vol.free_sectors() as u64 * SECTOR_BYTES_U64 / 1_000_000
            );
            finish(vol, image, false)
        }
        _ => Err("bad arguments".into()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            if e == "bad arguments" {
                return usage();
            }
            eprintln!("cedarfs: {e}");
            ExitCode::FAILURE
        }
    }
}
