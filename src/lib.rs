//! # cedar-fs-repro
//!
//! A reproduction of Robert Hagmann's **"Reimplementing the Cedar File
//! System Using Logging and Group Commit"** (SOSP 1987) as a Rust
//! workspace: the paper's file system (**FSD**), the old label-based
//! system it replaced (**CFS**), a 4.2/4.3-BSD-style **FFS** baseline,
//! the §6 analytic disk model, and a deterministic simulated disk that
//! stands in for the Dorado's Trident drive.
//!
//! This crate is the facade: it re-exports every workspace crate and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! All three systems implement the unified [`FileSystem`]
//! (`cedar_vol::fs::FileSystem`) trait — one interface, one
//! `CedarFsError`, identical visible semantics (a conformance test
//! holds them to it) — and FSD additionally offers the §5.4
//! multi-client [`CommitScheduler`](cedar_fsd::CommitScheduler), which
//! batches operations from many clients into one log force per commit
//! window.
//!
//! [`FileSystem`]: cedar_vol::fs::FileSystem
//!
//! ## Quick start
//!
//! ```
//! use cedar_fs_repro::disk::{SimClock, SimDisk};
//! use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};
//! use cedar_fs_repro::vol::fs::FileSystem; // the unified trait
//!
//! // A simulated 300 MB Trident-class drive, formatted as an FSD volume.
//! let disk = SimDisk::trident_t300(SimClock::new());
//! let mut vol = FsdVolume::format(disk, FsdConfig::default()).unwrap();
//!
//! // Create, read, list — through the same trait CFS and FFS implement
//! // (a `&mut dyn FileSystem` works identically on every backend).
//! let fs: &mut dyn FileSystem = &mut vol;
//! fs.create("docs/memo.tioga", b"group commit!").unwrap();
//! assert_eq!(fs.read("docs/memo.tioga").unwrap(), b"group commit!");
//! assert_eq!(fs.list("docs/").unwrap()[0].name, "docs/memo.tioga");
//!
//! // Make everything durable, then survive a crash.
//! fs.sync().unwrap();
//! let mut platters = vol.into_disk();
//! platters.crash_now();
//! platters.reboot();
//! let (mut vol, report) = FsdVolume::boot(platters, FsdConfig::default()).unwrap();
//! let fs: &mut dyn FileSystem = &mut vol;
//! assert!(fs.open("docs/memo.tioga").is_ok());
//! assert!(report.total_us() < 30_000_000, "recovery in seconds, not hours");
//! ```
//!
//! ## Group commit across clients (§5.4)
//!
//! ```
//! use cedar_fs_repro::disk::SimDisk;
//! use cedar_fs_repro::fsd::{CommitScheduler, FsdConfig, FsdVolume, SchedConfig};
//! use cedar_fs_repro::vol::fs::FileSystem;
//!
//! let vol = FsdVolume::format(SimDisk::tiny(), FsdConfig::default()).unwrap();
//! let mut sched = CommitScheduler::new(vol, SchedConfig::default());
//!
//! // Eight clients, each a `FileSystem` handle over the shared batch.
//! for client in 0..8 {
//!     sched
//!         .client(client)
//!         .create(&format!("c{client}/out.bcd"), b"compiled")
//!         .unwrap();
//! }
//! let deadline = sched.now() + 500_000;
//! sched.advance_to(deadline).unwrap(); // the window expires...
//! let report = sched.report();
//! assert_eq!(report.ops, 8);
//! assert_eq!(report.log_forces, 1); // ...and ONE force commits all eight.
//! ```
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table.

#![deny(unsafe_code)]

/// The simulated Trident-class disk: geometry, timing, labels, faults.
pub use cedar_disk as disk;

/// The page-oriented B-tree both name tables are built on.
pub use cedar_btree as btree;

/// Shared volume vocabulary: run tables, the VAM, allocation policies.
pub use cedar_vol as vol;

/// The old Cedar File System (labels + headers + scavenger) — baseline.
pub use cedar_cfs as cfs;

/// FSD, the paper's contribution: logging + group commit.
pub use cedar_fsd as fsd;

/// The BSD FFS-style baseline for Tables 4 and 5.
pub use cedar_ffs as ffs;

/// The §6 analytic performance model.
pub use cedar_model as model;

/// Deterministic workload generators (sizes, MakeDo).
pub use cedar_workload as workload;
