//! # cedar-fs-repro
//!
//! A reproduction of Robert Hagmann's **"Reimplementing the Cedar File
//! System Using Logging and Group Commit"** (SOSP 1987) as a Rust
//! workspace: the paper's file system (**FSD**), the old label-based
//! system it replaced (**CFS**), a 4.2/4.3-BSD-style **FFS** baseline,
//! the §6 analytic disk model, and a deterministic simulated disk that
//! stands in for the Dorado's Trident drive.
//!
//! This crate is the facade: it re-exports every workspace crate and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use cedar_fs_repro::disk::{SimClock, SimDisk};
//! use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};
//!
//! // A simulated 300 MB Trident-class drive, formatted as an FSD volume.
//! let disk = SimDisk::trident_t300(SimClock::new());
//! let mut vol = FsdVolume::format(disk, FsdConfig::default()).unwrap();
//!
//! // Create, open, read — creates cost one synchronous I/O; opens none.
//! vol.create("docs/memo.tioga", b"group commit!").unwrap();
//! let mut file = vol.open("docs/memo.tioga", None).unwrap();
//! assert_eq!(vol.read_file(&mut file).unwrap(), b"group commit!");
//!
//! // Make everything durable, then survive a crash.
//! vol.force().unwrap();
//! let mut platters = vol.into_disk();
//! platters.crash_now();
//! platters.reboot();
//! let (mut vol, report) = FsdVolume::boot(platters, FsdConfig::default()).unwrap();
//! assert!(vol.open("docs/memo.tioga", None).is_ok());
//! assert!(report.total_us() < 30_000_000, "recovery in seconds, not hours");
//! ```
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table.

/// The simulated Trident-class disk: geometry, timing, labels, faults.
pub use cedar_disk as disk;

/// The page-oriented B-tree both name tables are built on.
pub use cedar_btree as btree;

/// Shared volume vocabulary: run tables, the VAM, allocation policies.
pub use cedar_vol as vol;

/// The old Cedar File System (labels + headers + scavenger) — baseline.
pub use cedar_cfs as cfs;

/// FSD, the paper's contribution: logging + group commit.
pub use cedar_fsd as fsd;

/// The BSD FFS-style baseline for Tables 4 and 5.
pub use cedar_ffs as ffs;

/// The §6 analytic performance model.
pub use cedar_model as model;

/// Deterministic workload generators (sizes, MakeDo).
pub use cedar_workload as workload;
