//! # cedar-fs-repro
//!
//! A reproduction of Robert Hagmann's **"Reimplementing the Cedar File
//! System Using Logging and Group Commit"** (SOSP 1987) as a Rust
//! workspace: the paper's file system (**FSD**), the old label-based
//! system it replaced (**CFS**), a 4.2/4.3-BSD-style **FFS** baseline,
//! the §6 analytic disk model, and a deterministic simulated disk that
//! stands in for the Dorado's Trident drive.
//!
//! This crate is the facade: it re-exports every workspace crate and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! All three systems speak one two-level API (`cedar_vol::fs`): the
//! exclusive-borrow [`FsBackend`] trait every volume implements, and
//! the shared-reference, `Send + Sync` [`FileSystem`] service trait
//! that sessions and threads drive — one interface, one
//! `CedarFsError`, identical visible semantics (a conformance test
//! holds them to it). FSD additionally offers two concurrent services:
//! the §5.4 deterministic [`CommitScheduler`](cedar_fsd::CommitScheduler)
//! (simulated clients, one force per commit window) and the threaded
//! [`FsdEngine`](cedar_fsd::FsdEngine) (real OS threads feeding a
//! dedicated log-writer that forms group-commit epochs).
//!
//! [`FileSystem`]: cedar_vol::fs::FileSystem
//! [`FsBackend`]: cedar_vol::fs::FsBackend
//!
//! ## Quick start
//!
//! ```
//! use cedar_fs_repro::disk::{SimClock, SimDisk};
//! use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};
//! use cedar_fs_repro::vol::fs::{FsBackend, SyncFs, FileSystem};
//!
//! // A simulated 300 MB Trident-class drive, formatted as an FSD volume.
//! let disk = SimDisk::trident_t300(SimClock::new());
//! let mut vol = FsdVolume::format(disk, FsdConfig::default()).unwrap();
//!
//! // Single-owner callers use the exclusive-borrow backend trait —
//! // the same verbs CFS and FFS implement.
//! let fs: &mut dyn FsBackend = &mut vol;
//! fs.create("docs/memo.tioga", b"group commit!").unwrap();
//! assert_eq!(fs.read("docs/memo.tioga").unwrap(), b"group commit!");
//! assert_eq!(fs.list("docs/").unwrap()[0].name, "docs/memo.tioga");
//!
//! // Make everything durable, then survive a crash.
//! fs.sync().unwrap();
//! let mut platters = vol.into_disk();
//! platters.crash_now();
//! platters.reboot();
//! let (vol, report) = FsdVolume::boot(platters, FsdConfig::default()).unwrap();
//! assert!(report.total_us() < 30_000_000, "recovery in seconds, not hours");
//!
//! // Shared-reference service over any backend: wrap it in `SyncFs`
//! // and every method takes `&self` — ready for `Arc` + threads.
//! let fs = SyncFs::new(vol);
//! assert!(fs.open("docs/memo.tioga").is_ok());
//! ```
//!
//! ## Group commit across threads (§5.4)
//!
//! ```
//! use std::sync::Arc;
//! use cedar_fs_repro::disk::SimDisk;
//! use cedar_fs_repro::fsd::{EngineConfig, FsdConfig, FsdEngine, FsdVolume};
//! use cedar_fs_repro::vol::fs::{FileSystem, Session};
//!
//! let vol = FsdVolume::format(SimDisk::tiny(), FsdConfig::default()).unwrap();
//! let engine = Arc::new(FsdEngine::start(vol, EngineConfig::default()).unwrap());
//!
//! // Eight OS threads, each an owned `Session` on the shared engine;
//! // the log-writer thread batches their creates into shared forces.
//! let threads: Vec<_> = (0..8)
//!     .map(|client| {
//!         let s = Session::new(Arc::clone(&engine) as Arc<dyn FileSystem>, client);
//!         std::thread::spawn(move || {
//!             s.create(&format!("c{}/out.bcd", s.id()), b"compiled")
//!         })
//!     })
//!     .collect();
//! for t in threads {
//!     t.join().unwrap().unwrap();
//! }
//! let stats = engine.engine_stats();
//! assert_eq!(stats.ops, 8);
//! assert!(stats.log_forces <= stats.ops); // batching shares forces
//! let vol = FsdEngine::shutdown_arc(engine).unwrap();
//! assert_eq!(FsdEngine::start(vol, EngineConfig::default()).unwrap().list("").unwrap().len(), 8);
//! ```
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results of every table.

#![deny(unsafe_code)]

/// The simulated Trident-class disk: geometry, timing, labels, faults.
pub use cedar_disk as disk;

/// The page-oriented B-tree both name tables are built on.
pub use cedar_btree as btree;

/// Shared volume vocabulary: run tables, the VAM, allocation policies.
pub use cedar_vol as vol;

/// The old Cedar File System (labels + headers + scavenger) — baseline.
pub use cedar_cfs as cfs;

/// FSD, the paper's contribution: logging + group commit.
pub use cedar_fsd as fsd;

/// The BSD FFS-style baseline for Tables 4 and 5.
pub use cedar_ffs as ffs;

/// The §6 analytic performance model.
pub use cedar_model as model;

/// Deterministic workload generators (sizes, MakeDo).
pub use cedar_workload as workload;
