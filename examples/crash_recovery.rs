//! Crash recovery, side by side: the same crash hits an FSD volume and a
//! CFS volume; FSD recovers by log redo in seconds while CFS must
//! scavenge every label on the disk.
//!
//! Run with `cargo run --release --example crash_recovery`.

use cedar_fs_repro::cfs::{CfsConfig, CfsVolume};
use cedar_fs_repro::disk::{CrashPlan, SimClock, SimDisk};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};

const FILES: usize = 800;

fn main() {
    println!("=== FSD: crash in the middle of a burst of creates ===");
    let disk = SimDisk::trident_t300(SimClock::new());
    let mut fsd = FsdVolume::format(disk, FsdConfig::default()).expect("format");
    for i in 0..FILES {
        fsd.create(&format!("work/file{i:04}"), &vec![7u8; 1500])
            .unwrap();
    }
    fsd.force().expect("commit the burst");
    // Ten more files after the last commit — then the machine dies with a
    // torn write (two damaged sectors, the paper's worst failure).
    for i in 0..10 {
        fsd.create(&format!("work/late{i}"), b"uncommitted")
            .unwrap();
    }
    fsd.disk_mut().schedule_crash(CrashPlan {
        after_sector_writes: 3,
        damaged_tail: 2,
    });
    let err = loop {
        // Keep working until the crash fires (it lands in a log force or
        // a data write — wherever the next sectors go).
        match fsd.create("work/doomed", b"x") {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    println!("crash: {err}");

    let mut platters = fsd.into_disk();
    platters.reboot();
    let t0 = std::time::Instant::now();
    let (mut fsd, report) = FsdVolume::boot(platters, FsdConfig::default()).expect("boot");
    println!(
        "FSD recovery: {} log records replayed, {} sector images redone,",
        report.records_replayed, report.images_redone
    );
    println!(
        "  simulated {:.2} s redo + {:.1} s VAM rebuild = {:.1} s total (paper: 1-25 s)",
        report.redo_us as f64 / 1e6,
        report.vam_us as f64 / 1e6,
        report.total_us() as f64 / 1e6
    );
    println!("  (host wall-clock: {:?})", t0.elapsed());
    fsd.verify().expect("name table intact");
    let survivors = fsd.list("work/").expect("list").len();
    println!(
        "  {survivors} files survive (the {FILES} committed ones; the post-commit burst is gone)"
    );
    assert!(survivors >= FILES);

    println!("\n=== CFS: the same crash forces a scavenge ===");
    let disk = SimDisk::trident_t300(SimClock::new());
    let mut cfs = CfsVolume::format(disk, CfsConfig::default()).expect("format");
    for i in 0..FILES {
        cfs.create(&format!("work/file{i:04}"), &vec![7u8; 1500])
            .unwrap();
    }
    let mut platters = cfs.into_disk();
    platters.crash_now();
    platters.reboot();
    let (mut cfs, vam_ok) = CfsVolume::boot(platters, CfsConfig::default()).expect("boot");
    println!(
        "CFS boots, but the VAM hint is {}",
        if vam_ok { "valid" } else { "stale" }
    );
    println!("  (no allocation is possible until the scavenger runs)");
    let report = cfs.scavenge().expect("scavenge");
    println!(
        "CFS scavenge: {} files recovered in simulated {:.0} s ({:.0}x slower than FSD)",
        report.files_recovered,
        report.duration_us as f64 / 1e6,
        report.duration_us as f64 / 1e6 / 25.0_f64.max(1.0)
    );
}
