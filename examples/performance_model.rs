//! The §6 analytic model, shown working: print the scripts for the CFS
//! and FSD operations in the paper's own style, with the predicted times
//! for the Dorado/Trident constants.
//!
//! Run with `cargo run --example performance_model`.

use cedar_fs_repro::model::ops::ModelParams;
use cedar_fs_repro::model::{cfs_ops, fsd_ops};

fn main() {
    let params = ModelParams::dorado_t300();
    println!(
        "The §6 method: \"analyze the algorithm to find out where it will do\n\
         I/O's... take this rotational and radial position into account\".\n\
         Scripts for the Dorado + Trident T-300 constants:\n"
    );
    for p in cfs_ops(&params) {
        println!("{}", p.script.render(&params.timing, params.cylinders));
    }
    for p in fsd_ops(&params) {
        println!("{}", p.script.render(&params.timing, params.cylinders));
    }
    println!(
        "Compare against the simulator with:\n  cargo run -p cedar-bench --bin model_validation --release"
    );
}
