//! Quickstart: format an FSD volume on the simulated Trident drive,
//! create and read files, watch the group commit work, shut down and
//! boot again.
//!
//! Run with `cargo run --example quickstart`.

use cedar_fs_repro::disk::{SimClock, SimDisk};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};

fn main() {
    // A ~300 MB Trident-T300-class drive on a fresh simulated clock.
    let disk = SimDisk::trident_t300(SimClock::new());
    let mut vol = FsdVolume::format(disk, FsdConfig::default()).expect("format");
    println!(
        "formatted: {} free sectors, log of {} sectors near the central cylinders",
        vol.free_sectors(),
        vol.layout().log_sectors
    );

    // Create a few files. Each create costs ONE synchronous disk write
    // (leader + data together); the name-table updates sit in the cache
    // until the next half-second group commit.
    let before = vol.disk_stats();
    for i in 0..10 {
        vol.create(
            &format!("docs/note{i}.tioga"),
            format!("note {i}").as_bytes(),
        )
        .expect("create");
    }
    let delta = vol.disk_stats().since(&before);
    println!(
        "10 creates: {} disk ops ({} sectors written) — metadata is in the cache",
        delta.total_ops(),
        delta.sectors_written
    );

    // Open + list do no I/O at all: every property lives in the name table.
    let before = vol.disk_stats();
    let listing = vol.list("docs/").expect("list");
    println!(
        "list docs/: {} files, {} disk ops",
        listing.len(),
        vol.disk_stats().since(&before).total_ops()
    );
    for (name, entry) in listing.iter().take(3) {
        println!("  {name}  {} bytes  uid {:x}", entry.byte_size, entry.uid);
    }

    // Read a file back; the leader page check piggybacks on the transfer.
    let mut f = vol.open("docs/note3.tioga", None).expect("open");
    let data = vol.read_file(&mut f).expect("read");
    println!("note3 contains {:?}", String::from_utf8_lossy(&data));

    // Versions: creating the same name again makes version 2.
    vol.create("docs/note3.tioga", b"note 3, revised")
        .expect("create v2");
    let newest = vol.open("docs/note3.tioga", None).expect("open newest");
    println!(
        "newest version of note3 is !{} ({} bytes)",
        newest.name.version,
        newest.byte_size()
    );

    // The commit daemon: half a second of simulated time passes, the log
    // is forced, and the deletes below become reusable space.
    vol.delete("docs/note9.tioga", None).expect("delete");
    let free_before = vol.free_sectors();
    vol.advance_time(600_000).expect("idle tick");
    println!(
        "after the 0.5 s group commit: {} sectors freed by the delete",
        vol.free_sectors() - free_before
    );

    // Controlled shutdown saves the VAM; boot is then instant.
    vol.shutdown().expect("shutdown");
    let disk = vol.into_disk();
    let (mut vol, report) = FsdVolume::boot(disk, FsdConfig::default()).expect("boot");
    println!(
        "rebooted: replayed {} log records, VAM {} ({} ms total)",
        report.records_replayed,
        if report.vam_reconstructed {
            "reconstructed"
        } else {
            "loaded from the save area"
        },
        report.total_us() / 1000
    );
    assert!(vol.open("docs/note3.tioga", None).is_ok());
    println!("all files intact.");
}
