//! The FS caching layer: remote files fetched once, consulted from the
//! local cache, their last-used-times maintained lazily by group commit,
//! and flushed least-recently-used under space pressure.
//!
//! Run with `cargo run --example remote_cache`.

use cedar_fs_repro::disk::{SimClock, SimDisk};
use cedar_fs_repro::fsd::{CachingFs, FsdConfig, FsdVolume, MemServer};

fn main() {
    // The "file server" on the other end of the Ethernet.
    let mut server = MemServer::new();
    for i in 0..8 {
        server.publish(
            &format!("[Ivy]<Cedar>Interface{i}.bcd"),
            &vec![i as u8; 20_000],
        );
    }
    server.publish("[Ivy]<Cedar>Compiler.bcd", &vec![0xC0; 150_000]);

    let vol = FsdVolume::format(SimDisk::trident_t300(SimClock::new()), FsdConfig::default())
        .expect("format");
    let mut fs = CachingFs::new(vol, server);

    // A build consults the compiler and every interface: first round
    // fetches, later rounds hit the cache.
    for round in 0..3 {
        let before = fs.server.fetches;
        fs.read_remote("[Ivy]<Cedar>Compiler.bcd")
            .expect("compiler");
        for i in 0..8 {
            fs.read_remote(&format!("[Ivy]<Cedar>Interface{i}.bcd"))
                .expect("interface");
            fs.volume.clock().advance(200_000); // Compile work between files.
        }
        println!(
            "round {round}: {} server fetches ({} total cached copies)",
            fs.server.fetches - before,
            fs.cached_copies().expect("count"),
        );
    }

    // A new compiler release: only that file is refetched.
    fs.server
        .publish("[Ivy]<Cedar>Compiler.bcd", &vec![0xC1; 160_000]);
    let before = fs.server.fetches;
    fs.read_remote("[Ivy]<Cedar>Compiler.bcd")
        .expect("compiler v2");
    println!(
        "after a new release: {} fetch (old version still cached, immutable)",
        fs.server.fetches - before
    );

    // Space pressure: flush the least recently used copies.
    let free = fs.volume.free_sectors();
    let flushed = fs.flush_lru(free + 400).expect("flush");
    println!(
        "flushed {flushed} LRU copies to free {} more sectors; {} copies remain",
        400,
        fs.cached_copies().expect("count"),
    );

    // The lazily-updated last-used-times are exactly the §5.4 story:
    // force the log and look at how little it cost.
    fs.volume.force().expect("force");
    let stats = fs.volume.commit_stats();
    println!(
        "group commit so far: {} forces, {} records, {} sectors of log",
        stats.forces, stats.records, stats.log_sectors_written
    );
}
