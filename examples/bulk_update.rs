//! The §5.4 hot-spot story: a bulk property update over a subdirectory,
//! batched by group commit.
//!
//! Opening a cached remote file refreshes its last-used-time — a one-
//! sector name-table change. Without grouping, every open would force a
//! seven-sector log record; with the half-second group commit, dozens of
//! updates (often hitting the *same* hot name-table pages) ride in one
//! record.
//!
//! Run with `cargo run --release --example bulk_update`.

use cedar_fs_repro::disk::{SimClock, SimDisk};
use cedar_fs_repro::fsd::{FsdConfig, FsdVolume};

const CACHED_FILES: usize = 120;

fn run(commit_interval_us: u64) -> (u64, u64) {
    let disk = SimDisk::trident_t300(SimClock::new());
    let mut vol = FsdVolume::format(
        disk,
        FsdConfig {
            commit_interval_us,
            ..Default::default()
        },
    )
    .expect("format");

    // The cache directory: copies of remote files, as FS kept them.
    for i in 0..CACHED_FILES {
        vol.create_cached(&format!("cache/Compiler{i:03}.bcd"), &vec![0u8; 3000])
            .expect("create cached");
    }
    vol.force().expect("settle");
    vol.disk_mut().reset_stats();
    let stats0 = vol.commit_stats();

    // The bulk update: a build consults every cached interface. Each
    // open refreshes a last-used-time; the client "computes" ~50 ms
    // between opens.
    for i in 0..CACHED_FILES {
        vol.open(&format!("cache/Compiler{i:03}.bcd"), None)
            .expect("open");
        vol.advance_time(50_000).expect("tick");
    }
    vol.force().expect("final commit");

    let ops = vol.disk_stats().total_ops();
    let records = vol.commit_stats().records - stats0.records;
    (ops, records)
}

fn main() {
    println!(
        "Bulk update: {CACHED_FILES} cached-file opens, each refreshing a \
         last-used-time\n"
    );
    let (grouped_ops, grouped_records) = run(500_000);
    let (solo_ops, solo_records) = run(0);

    println!(
        "group commit every 0.5 s:   {grouped_ops:4} disk ops, {grouped_records:3} log records"
    );
    println!("commit after every open:    {solo_ops:4} disk ops, {solo_records:3} log records");
    println!(
        "\ngroup commit reduction: {:.2}x fewer I/Os (the paper's bulk runs saw 2.98x\n\
         for metadata; \"the log is consumed more slowly and written less often\")",
        solo_ops as f64 / grouped_ops as f64
    );
    assert!(solo_ops > grouped_ops * 2);
}
